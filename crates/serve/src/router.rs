//! Request routing: map parsed HTTP requests onto the engine's
//! request-based search API.
//!
//! The wire format *is* [`SearchRequest`]'s serde form — there is no
//! parallel DTO layer. Incoming JSON is validated (object, known keys,
//! required `"query"`), merged over a default request, and handed to the
//! derived `Deserialize` impl, so clients may omit any optional field
//! and the engine's defaults apply.
//!
//! Deadlines are anchored at *accept* time: the server's default budget
//! starts counting the moment the connection is accepted, so time spent
//! queued behind the worker pool eats into it. A request that also
//! carries its own `timeout_ms` gets the tighter of the two.
//!
//! When the server runs with a data directory, `/docs` mutations are
//! write-ahead logged before they are acknowledged: inserts apply to the
//! in-memory index first (that mints the id), then append; a failed
//! append rolls the insert back and answers `500`, so the client's
//! error means "not durable, not applied". Deletes log *before*
//! applying, so an acknowledged delete is always on disk; a logged
//! delete of a document that turns out not to exist is a harmless no-op
//! on replay.

use std::time::{Duration, Instant};

use newslink_core::{
    CollectionStats, DocId, Explanation, NewsLink, NewsLinkIndex, SearchRequest, Side, SideOverlay,
};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize, Value};

use crate::cluster::proto::{
    f64_bits, f64_from_bits, HitWire, OverlayWire, ShardSearchRequest, ShardSearchResponse,
    SideStatsWire, StatsRequest, StatsResponse, Top1Request, Top1Response,
};
use crate::durable::DurableState;
use crate::metrics::{Route, ServerMetrics};
use crate::protocol::HttpRequest;
use crate::server::ServeConfig;

/// Caps on request knobs, enforced at the protocol boundary so a single
/// request cannot ask for unbounded work.
pub const MAX_K: usize = 10_000;
/// Longest connecting path an `explain` may request.
pub const MAX_EXPLAIN_LEN: usize = 32;
/// Most paths an `explain` may request per hit.
pub const MAX_EXPLAIN_PATHS: usize = 1_000;

/// Everything a worker needs to answer one request.
pub struct RequestContext<'a, 'g> {
    /// The shared engine.
    pub engine: &'a NewsLink<'g>,
    /// The corpus index being served. Searches take the read lock and
    /// fan out over its segments; `/docs` mutations take the write lock
    /// for the (short) seal-and-compact window.
    pub index: &'a RwLock<NewsLinkIndex>,
    /// Server configuration (default deadline budget).
    pub config: &'a ServeConfig,
    /// Server counters, for the `/metrics` document.
    pub metrics: &'a ServerMetrics,
    /// When the connection was accepted (deadline anchor).
    pub accepted: Instant,
    /// Current admission gauge, for the `/metrics` document.
    pub in_flight: usize,
    /// Durability wiring, present when the server was started with a
    /// data directory. Lock order: `index` first, then the store.
    pub durable: Option<&'a DurableState>,
}

/// The routing outcome: which route matched, the status, and the body.
pub struct Routed {
    /// Route label for metrics.
    pub route: Route,
    /// HTTP status code.
    pub status: u16,
    /// JSON response body.
    pub body: String,
    /// The request arrived on a legacy unversioned path (`/search`
    /// instead of `/v1/search`); the response carries a
    /// `Deprecation: true` header.
    pub deprecated: bool,
}

pub(crate) fn routed(route: Route, status: u16, body: String) -> Routed {
    Routed {
        route,
        status,
        body,
        deprecated: false,
    }
}

/// Why a request could not be served. Replaces in-handler panics: a
/// malformed request is the client's fault (`400`), an invariant that
/// failed to hold is ours (`500`, counted under `responses.error`).
#[derive(Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The client sent something invalid; the message names the field.
    BadRequest(String),
    /// The server could not uphold its own invariants.
    Internal(String),
}

impl RequestError {
    fn status(&self) -> u16 {
        match self {
            Self::BadRequest(_) => 400,
            Self::Internal(_) => 500,
        }
    }

    fn message(&self) -> &str {
        match self {
            Self::BadRequest(msg) | Self::Internal(msg) => msg,
        }
    }

    /// Render as a routed error response.
    pub(crate) fn into_routed(self, route: Route) -> Routed {
        routed(route, self.status(), error_body(self.status(), self.message()))
    }
}

fn bad(msg: impl Into<String>) -> RequestError {
    RequestError::BadRequest(msg.into())
}

/// The machine-readable error code for a status: part of the typed
/// error envelope, stable across message-wording changes.
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        413 => "payload_too_large",
        429 => "too_many_requests",
        500 => "internal",
        503 => "service_unavailable",
        _ => "error",
    }
}

/// The typed JSON error envelope:
/// `{"error": {"code": "...", "message": "..."}}` with proper escaping.
/// Every non-2xx body the service emits has this shape.
pub fn error_body(status: u16, msg: &str) -> String {
    Value::Object(vec![(
        "error".into(),
        Value::Object(vec![
            ("code".into(), Value::String(error_code(status).into())),
            ("message".into(), Value::String(msg.into())),
        ]),
    )])
    .to_compact_string()
}

/// Whether `path` (canonical, un-prefixed form) names an endpoint this
/// service serves — used to decide if a legacy alias deserves the
/// deprecation header.
pub(crate) fn is_api_path(path: &str) -> bool {
    matches!(
        path,
        "/healthz" | "/metrics" | "/search" | "/search/batch" | "/docs" | "/admin/snapshot"
    ) || path.strip_prefix("/docs/").is_some()
}

/// Dispatch one parsed request to its handler.
///
/// The wire surface is versioned under `/v1/`; the bare, unprefixed
/// paths remain as aliases for one release and answer identically but
/// with [`Routed::deprecated`] set (the server turns that into a
/// `Deprecation: true` response header).
pub fn dispatch(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let (path, legacy) = match req.path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, false),
        _ => (req.path.as_str(), true),
    };
    let mut r = dispatch_path(req, path, ctx);
    r.deprecated = legacy && is_api_path(path);
    r
}

/// Route a canonical (version-stripped) path.
fn dispatch_path(req: &HttpRequest, path: &str, ctx: &RequestContext<'_, '_>) -> Routed {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(ctx),
        ("GET", "/metrics") => {
            let index_stats = ctx.index.read().stats();
            let durability = ctx.durable.map(DurableState::gauges);
            let snap = ctx.metrics.snapshot(
                ctx.in_flight,
                &ctx.engine.cache_stats(),
                index_stats,
                crate::metrics::KgStats::of(ctx.engine.graph(), ctx.engine.label_index()),
                durability,
                None,
            );
            routed(Route::Metrics, 200, snap.to_compact_string())
        }
        ("POST", "/search") => handle_search(req, ctx),
        ("POST", "/search/batch") => handle_batch(req, ctx),
        ("POST", "/docs") => handle_insert(req, ctx),
        ("POST", "/admin/snapshot") => handle_snapshot(ctx),
        ("POST", "/internal/stats") => handle_internal_stats(req, ctx),
        ("POST", "/internal/top1") => handle_internal_top1(req, ctx),
        ("POST", "/internal/search") => handle_internal_search(req, ctx),
        ("DELETE", path) if path.strip_prefix("/docs/").is_some() => handle_delete(path, ctx),
        (_, path) if is_api_path(path) => routed(
            Route::Other,
            405,
            error_body(405, &format!("method {} not allowed here", req.method)),
        ),
        (_, path) => routed(Route::Other, 404, error_body(404, &format!("no route {path}"))),
    }
}

/// `GET /healthz`: a small operational summary — liveness (`status`),
/// a `degraded` flag (recovery quarantined segments: up, but serving a
/// subset), the storage backend, the live doc/segment gauges and the
/// crate version. Always `200` with `"status": "ok"` unless degraded:
/// degraded is an operator signal, not an outage, and the bare-200
/// contract is what load balancers probe.
fn handle_healthz(ctx: &RequestContext<'_, '_>) -> Routed {
    let num = |n: u64| Value::Number(serde::Number::from_i128(n as i128));
    let degraded = ctx.durable.is_some_and(DurableState::degraded);
    let stats = ctx.index.read().stats();
    let mut pairs = vec![
        (
            "status".into(),
            Value::String(if degraded { "degraded" } else { "ok" }.into()),
        ),
        ("degraded".into(), Value::Bool(degraded)),
        (
            "backend".into(),
            Value::String(
                ctx.durable
                    .map(DurableState::backend_name)
                    .unwrap_or("memory")
                    .into(),
            ),
        ),
        ("docs".into(), num(stats.docs as u64)),
        ("segments".into(), num(stats.segments as u64)),
        (
            "version".into(),
            Value::String(env!("CARGO_PKG_VERSION").into()),
        ),
    ];
    if degraded {
        if let Some(durable) = ctx.durable {
            pairs.push((
                "quarantined_segments".into(),
                num(durable.report().quarantined_segments as u64),
            ));
        }
    }
    routed(Route::Healthz, 200, Value::Object(pairs).to_compact_string())
}

/// `POST /search`: one [`SearchRequest`] in, one serialized
/// `SearchResponse` out. A response whose deadline expired mid-pipeline
/// comes back as `503` but still carries the partial timer report.
fn handle_search(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let request = match parse_body(&req.body).and_then(|v| request_from_value(&v)) {
        Ok(r) => apply_deadline(r, ctx.config.default_timeout_ms, ctx.accepted),
        Err(e) => return e.into_routed(Route::Search),
    };
    let response = ctx.engine.execute(&ctx.index.read(), &request);
    ctx.metrics.observe_pruning(&response.prune);
    ctx.metrics.observe_parallel(&response.parallel);
    let status = if response.timed_out { 503 } else { 200 };
    routed(Route::Search, status, response.serialize_value().to_compact_string())
}

/// `POST /search/batch`: `{"requests": [...]}` in, a serialized
/// `BatchResponse` out. Individual deadline expiries are reported per
/// response; the batch itself is `200` as long as it parsed.
fn handle_batch(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let requests = match parse_batch(&req.body, ctx) {
        Ok(r) => r,
        Err(e) => return e.into_routed(Route::Batch),
    };
    let response = ctx.engine.execute_batch(&ctx.index.read(), &requests);
    for r in &response.responses {
        ctx.metrics.observe_pruning(&r.prune);
        ctx.metrics.observe_parallel(&r.parallel);
    }
    routed(Route::Batch, 200, response.serialize_value().to_compact_string())
}

/// `POST /docs`: `{"text": "..."}` in, `{"id": n, "index": {...}}` out.
/// The new document lands in its own sealed segment; if that pushes the
/// segment count past the engine's `max_segments`, the insert also runs
/// compaction before the write lock is released.
///
/// With durability on, the insert is applied first (minting the id),
/// then WAL-logged and fsynced while the write lock is still held. A
/// failed append rolls the insert back (tombstone) and answers `500`:
/// the mutation was neither acknowledged nor made durable.
fn handle_insert(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let text = match parse_insert_body(&req.body) {
        Ok(t) => t,
        Err(e) => return e.into_routed(Route::Docs),
    };
    let mut index = ctx.index.write();
    let id = ctx.engine.insert_document(&mut index, &text);
    if let Some(durable) = ctx.durable {
        if let Err(e) = durable.store().log_insert(id, &text) {
            ctx.engine.delete_document(&mut index, id);
            drop(index);
            return routed(
                Route::Docs,
                500,
                error_body(500, &format!("wal append failed, insert rolled back: {e}")),
            );
        }
        durable.note_append();
    }
    let stats = index.stats();
    drop(index);
    let body = Value::Object(vec![
        ("id".into(), Value::Number(serde::Number::from_i128(id.0 as i128))),
        ("index".into(), index_stats_value(stats)),
    ]);
    routed(Route::Docs, 200, body.to_compact_string())
}

/// `DELETE /docs/<id>`: tombstone a live document. Unknown or already
/// deleted ids answer `404`; the id itself must be a decimal integer.
///
/// With durability on, liveness is verified first — still under the
/// write lock, so the answer cannot race another mutation — and a `404`
/// returns without touching the log: a miss must not pay an fsync or
/// grow the WAL. A live document is then WAL-logged *before* it is
/// tombstoned: if the append fails nothing changes (`500`), and once it
/// succeeds the acknowledgement can never outrun the disk.
fn handle_delete(path: &str, ctx: &RequestContext<'_, '_>) -> Routed {
    let raw = path.strip_prefix("/docs/").unwrap_or_default();
    let Ok(id) = raw.parse::<u32>() else {
        return routed(Route::Docs, 400, error_body(400, &format!("bad document id {raw:?}")));
    };
    let mut index = ctx.index.write();
    if !index.is_live(DocId(id)) {
        drop(index);
        return routed(Route::Docs, 404, error_body(404, &format!("no live document {id}")));
    }
    if let Some(durable) = ctx.durable {
        if let Err(e) = durable.store().log_delete(DocId(id)) {
            drop(index);
            return routed(
                Route::Docs,
                500,
                error_body(500, &format!("wal append failed, delete not applied: {e}")),
            );
        }
        durable.note_append();
    }
    let deleted = ctx.engine.delete_document(&mut index, DocId(id));
    let stats = index.stats();
    drop(index);
    debug_assert!(deleted, "liveness was checked under the same write lock");
    let body = Value::Object(vec![
        ("deleted".into(), Value::Number(serde::Number::from_i128(id as i128))),
        ("index".into(), index_stats_value(stats)),
    ]);
    routed(Route::Docs, 200, body.to_compact_string())
}

/// `POST /admin/snapshot`: checkpoint the index — write a crash-atomic
/// snapshot under the index read lock (mutations wait, searches don't),
/// then reset the WAL. Answers `400` when the server runs without a
/// data directory.
fn handle_snapshot(ctx: &RequestContext<'_, '_>) -> Routed {
    let Some(durable) = ctx.durable else {
        return routed(
            Route::Admin,
            400,
            error_body(400, "durability not enabled (start the server with --data-dir)"),
        );
    };
    let index = ctx.index.read();
    let mut store = durable.store();
    match store.checkpoint(&index, ctx.engine.graph()) {
        Ok(()) => {
            durable.note_snapshot();
            let num = |n: u64| Value::Number(serde::Number::from_i128(n as i128));
            let body = Value::Object(vec![
                ("checkpointed".into(), Value::Bool(true)),
                ("docs".into(), num(index.doc_count() as u64)),
                ("wal_bytes".into(), num(store.wal_len())),
                ("snapshots".into(), num(durable.snapshots_total())),
            ]);
            routed(Route::Admin, 200, body.to_compact_string())
        }
        Err(e) => routed(
            Route::Admin,
            500,
            error_body(500, &format!("checkpoint failed: {e}")),
        ),
    }
}

/// Parse an internal-protocol body, or answer `400` with the typed
/// envelope. Internal endpoints are router-to-shard only, so a parse
/// failure here means a version skew or a stray client — either way a
/// clear `400` beats a panic.
fn parse_internal<T: Deserialize>(body: &str) -> Result<T, RequestError> {
    serde_json::from_str(body).map_err(|e| bad(format!("invalid internal request: {e}")))
}

/// Rebuild a [`SideOverlay`] from its wire form. The wire arrays must
/// stay aligned — a df list of the wrong length would silently score
/// under garbage frequencies.
fn overlay_from_wire(wire: &OverlayWire) -> Result<SideOverlay<'_>, RequestError> {
    if wire.df.len() != wire.terms.len() {
        return Err(bad(format!(
            "overlay df length {} does not match {} terms",
            wire.df.len(),
            wire.terms.len()
        )));
    }
    Ok(SideOverlay {
        terms: &wire.terms,
        stats: CollectionStats {
            docs: wire.docs as usize,
            total_len: wire.total_len,
        },
        df: &wire.df,
        norm: f64_from_bits(wire.norm_bits),
    })
}

/// `POST /internal/stats` (phase 1): this shard's live collection
/// statistics and per-term document frequencies, both sides. The
/// router sums these across shards — exact integer sums, so the totals
/// equal the monolithic values.
fn handle_internal_stats(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let r: StatsRequest = match parse_internal(&req.body) {
        Ok(r) => r,
        Err(e) => return e.into_routed(Route::Internal),
    };
    let index = ctx.index.read();
    let side = |side: Side, terms: &[String]| {
        let (stats, df) = index.side_overlay_stats(side, terms);
        SideStatsWire {
            docs: stats.docs as u64,
            total_len: stats.total_len,
            df,
        }
    };
    let response = StatsResponse {
        bow: side(Side::Bow, &r.bow_terms),
        bon: side(Side::Bon, &r.bon_terms),
    };
    routed(
        Route::Internal,
        200,
        response.serialize_value().to_compact_string(),
    )
}

/// `POST /internal/top1` (phase 2): this shard's maximum raw score per
/// side under the router's summed overlay. Only sides the blend
/// actually uses are scanned (BOW at β < 1, BON at β > 0) — the same
/// gating the in-process normalizer applies, so an inactive side
/// reports 0.0 and the router's fold leaves its divisor at 1.0.
fn handle_internal_top1(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let r: Top1Request = match parse_internal(&req.body) {
        Ok(r) => r,
        Err(e) => return e.into_routed(Route::Internal),
    };
    let (bow_ov, bon_ov) = match (overlay_from_wire(&r.bow), overlay_from_wire(&r.bon)) {
        (Ok(bow), Ok(bon)) => (bow, bon),
        (Err(e), _) | (_, Err(e)) => return e.into_routed(Route::Internal),
    };
    let beta = f64_from_bits(r.beta_bits);
    let index = ctx.index.read();
    let threads = ctx.engine.config().effective_search_threads(index.segment_count());
    let mut prune = newslink_core::PruneStats::default();
    let mut parallel = newslink_core::ParallelStats::default();
    let bow_max = if beta < 1.0 {
        index.side_top1_overlay(Side::Bow, &bow_ov, threads, &mut prune, &mut parallel)
    } else {
        0.0
    };
    let bon_max = if beta > 0.0 {
        index.side_top1_overlay(Side::Bon, &bon_ov, threads, &mut prune, &mut parallel)
    } else {
        0.0
    };
    ctx.metrics.observe_parallel(&parallel);
    let response = Top1Response {
        bow_max_bits: f64_bits(bow_max),
        bon_max_bits: f64_bits(bon_max),
        prune,
    };
    routed(
        Route::Internal,
        200,
        response.serialize_value().to_compact_string(),
    )
}

/// `POST /internal/search` (phase 3): the shard-side half of the
/// scatter-gather search — the pruned blended top-k under the router's
/// cluster-wide overlays, plus explanations when requested. Always
/// `200`: a deadline expiry is reported in-band (`timed_out`), because
/// the router folds partial shard answers into one response.
fn handle_internal_search(req: &HttpRequest, ctx: &RequestContext<'_, '_>) -> Routed {
    let r: ShardSearchRequest = match parse_internal(&req.body) {
        Ok(r) => r,
        Err(e) => return e.into_routed(Route::Internal),
    };
    if r.k > MAX_K {
        return bad(format!("k must be at most {MAX_K}, got {}", r.k)).into_routed(Route::Internal);
    }
    let (bow_ov, bon_ov) = match (overlay_from_wire(&r.bow), overlay_from_wire(&r.bon)) {
        (Ok(bow), Ok(bon)) => (bow, bon),
        (Err(e), _) | (_, Err(e)) => return e.into_routed(Route::Internal),
    };
    let answer = |response: ShardSearchResponse| {
        routed(
            Route::Internal,
            200,
            response.serialize_value().to_compact_string(),
        )
    };
    // The budget is anchored at this shard's own request arrival: the
    // router already subtracted its elapsed share before scattering.
    let deadline = r
        .budget_ms
        .map(|ms| ctx.accepted + Duration::from_millis(ms));
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return answer(ShardSearchResponse {
            hits: Vec::new(),
            explanations: Vec::new(),
            prune: newslink_core::PruneStats::default(),
            timed_out: true,
        });
    }
    let beta = f64_from_bits(r.beta_bits);
    let index = ctx.index.read();
    let threads = ctx.engine.config().effective_search_threads(index.segment_count());
    let (ranked, prune, parallel) = index.blended_topk_overlay(
        beta,
        &bow_ov,
        &bon_ov,
        r.k,
        f64_from_bits(r.floor_bits),
        threads,
    );
    ctx.metrics.observe_pruning(&prune);
    ctx.metrics.observe_parallel(&parallel);
    let mut timed_out = false;
    let mut explanations = Vec::new();
    if let Some(opts) = r.explain {
        // Same gate as the in-process path: explanations are the most
        // expensive optional stage; a spent budget skips them but keeps
        // the ranked hits.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            timed_out = true;
        } else {
            let analysis = ctx.engine.analyze_query(&r.query);
            explanations = ranked
                .iter()
                .map(|&(_, (doc, _, _))| Explanation {
                    doc,
                    paths: ctx.engine.explain(
                        &index,
                        &analysis.embedding,
                        doc,
                        opts.max_len,
                        opts.max_paths,
                    ),
                })
                .collect();
        }
    }
    let hits = ranked
        .into_iter()
        .map(|(score, (doc, bow, bon))| HitWire {
            doc: doc.0,
            score_bits: f64_bits(score),
            bow_bits: f64_bits(bow),
            bon_bits: f64_bits(bon),
        })
        .collect();
    answer(ShardSearchResponse {
        hits,
        explanations,
        prune,
        timed_out,
    })
}

/// Render [`newslink_core::IndexStats`] as a JSON object (shared by the
/// `/docs` responses and sanity-checked against the `/metrics` gauges).
fn index_stats_value(stats: newslink_core::IndexStats) -> Value {
    let num = |n: u64| Value::Number(serde::Number::from_i128(n as i128));
    Value::Object(vec![
        ("docs".into(), num(stats.docs as u64)),
        ("segments".into(), num(stats.segments as u64)),
        ("tombstones".into(), num(stats.tombstones as u64)),
        ("compactions".into(), num(stats.compactions)),
    ])
}

/// Validate a `POST /docs` body: an object whose only field is a string
/// `"text"`.
pub(crate) fn parse_insert_body(body: &str) -> Result<String, RequestError> {
    let v = parse_body(body)?;
    let obj = v
        .as_object()
        .ok_or_else(|| bad("insert body must be a JSON object"))?;
    for (key, _) in obj {
        if key != "text" {
            return Err(bad(format!("unknown field {key:?} (expected \"text\")")));
        }
    }
    v.get("text")
        .and_then(|t| t.as_str())
        .map(str::to_string)
        .ok_or_else(|| bad("missing required string field \"text\""))
}

pub(crate) fn parse_body(body: &str) -> Result<Value, RequestError> {
    serde_json::from_str(body).map_err(|e| bad(format!("invalid JSON: {e}")))
}

fn parse_batch(
    body: &str,
    ctx: &RequestContext<'_, '_>,
) -> Result<Vec<SearchRequest>, RequestError> {
    let v = parse_body(body)?;
    let obj = v
        .as_object()
        .ok_or_else(|| bad("batch body must be a JSON object"))?;
    for (key, _) in obj {
        if key != "requests" {
            return Err(bad(format!("unknown field {key:?} (expected \"requests\")")));
        }
    }
    let items = v
        .get("requests")
        .and_then(|r| r.as_array())
        .ok_or_else(|| bad("missing required array field \"requests\""))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            request_from_value(item)
                .map(|r| apply_deadline(r, ctx.config.default_timeout_ms, ctx.accepted))
                .map_err(|e| match e {
                    RequestError::BadRequest(msg) => bad(format!("requests[{i}]: {msg}")),
                    internal => internal,
                })
        })
        .collect()
}

/// Tighten `request`'s deadline with the server default, both anchored at
/// accept time: `execute` starts its own clock, so hand it only what is
/// left of the accept-anchored budget — time spent queued behind the
/// worker pool counts against the request. A budget that is already gone
/// becomes a zero remainder: the request still runs up to the first
/// inter-stage gate and comes back `timed_out` with its partial timer,
/// the same shape as any other expiry.
pub(crate) fn apply_deadline(
    mut request: SearchRequest,
    default_timeout_ms: Option<u64>,
    accepted: Instant,
) -> SearchRequest {
    let budget_ms = match (request.timeout_ms, default_timeout_ms) {
        (Some(r), Some(s)) => Some(r.min(s)),
        (r, s) => r.or(s),
    };
    if let Some(budget_ms) = budget_ms {
        let elapsed_ms = accepted.elapsed().as_millis() as u64;
        request.timeout_ms = Some(budget_ms.saturating_sub(elapsed_ms));
    }
    request
}

/// Build a [`SearchRequest`] from user JSON: must be an object with a
/// string `"query"`; all other fields are optional and unknown fields
/// are rejected. Omitted fields fall back to [`SearchRequest::new`]'s
/// defaults by merging the user object over the serialized default
/// request, keeping the derived serde impl as the single wire format.
///
/// Numeric fields are validated here, at the protocol boundary, so the
/// engine never sees a non-finite β or an unbounded `k`: the JSON
/// number grammar cannot produce NaN, but it happily produces
/// infinities (`1e999`), and those must die with a clear `400`, not a
/// poisoned score.
pub fn request_from_value(v: &Value) -> Result<SearchRequest, RequestError> {
    const KNOWN: [&str; 6] = ["query", "k", "beta", "explain", "use_cache", "timeout_ms"];
    let obj = v
        .as_object()
        .ok_or_else(|| bad("request must be a JSON object"))?;
    for (key, _) in obj {
        if !KNOWN.contains(&key.as_str()) {
            return Err(bad(format!("unknown field {key:?}")));
        }
    }
    let query = v
        .get("query")
        .and_then(|q| q.as_str())
        .ok_or_else(|| bad("missing required string field \"query\""))?;
    let mut merged = SearchRequest::new(query).serialize_value();
    let Value::Object(pairs) = &mut merged else {
        return Err(RequestError::Internal(
            "default request did not serialize as an object".into(),
        ));
    };
    for (key, user_value) in obj {
        if key == "query" {
            continue;
        }
        let value = if key == "explain" {
            explain_value(user_value)?
        } else {
            user_value.clone()
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        }
    }
    let request = SearchRequest::deserialize_value(&merged).map_err(|e| bad(e.to_string()))?;
    if let Some(beta) = request.beta {
        if !beta.is_finite() {
            return Err(bad(format!("beta must be a finite number, got {beta}")));
        }
        if !(0.0..=1.0).contains(&beta) {
            return Err(bad(format!("beta must be in [0, 1], got {beta}")));
        }
    }
    if request.k > MAX_K {
        return Err(bad(format!("k must be at most {MAX_K}, got {}", request.k)));
    }
    if let Some(explain) = &request.explain {
        if explain.max_len > MAX_EXPLAIN_LEN {
            return Err(bad(format!(
                "explain.max_len must be at most {MAX_EXPLAIN_LEN}, got {}",
                explain.max_len
            )));
        }
        if explain.max_paths > MAX_EXPLAIN_PATHS {
            return Err(bad(format!(
                "explain.max_paths must be at most {MAX_EXPLAIN_PATHS}, got {}",
                explain.max_paths
            )));
        }
    }
    Ok(request)
}

/// Normalize the `"explain"` field: `null`/`false` = off, `true` = on
/// with defaults, an object = merged over the default options.
fn explain_value(v: &Value) -> Result<Value, RequestError> {
    let defaults = newslink_core::ExplainOptions::default();
    match v {
        Value::Null | Value::Bool(false) => Ok(Value::Null),
        Value::Bool(true) => Ok(defaults.serialize_value()),
        Value::Object(pairs) => {
            let mut merged = defaults.serialize_value();
            let Value::Object(slots) = &mut merged else {
                return Err(RequestError::Internal(
                    "ExplainOptions did not serialize as an object".into(),
                ));
            };
            for (key, value) in pairs {
                let Some(slot) = slots.iter_mut().find(|(k, _)| k == key) else {
                    return Err(bad(format!("unknown explain field {key:?}")));
                };
                slot.1 = value.clone();
            }
            Ok(merged)
        }
        _ => Err(bad("explain must be null, a bool, or an options object")),
    }
}

/// Convenience used by tests and the example: parse body text straight
/// into a request.
pub fn parse_search_request(body: &str) -> Result<SearchRequest, String> {
    parse_body(body)
        .and_then(|v| request_from_value(&v))
        .map_err(|e| e.message().to_string())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_gets_defaults() {
        let r = parse_search_request(r#"{"query": "taliban in kunar"}"#).unwrap();
        assert_eq!(r, SearchRequest::new("taliban in kunar"));
    }

    #[test]
    fn full_request_round_trips() {
        let r = parse_search_request(
            r#"{"query": "q", "k": 3, "beta": 0.5, "explain": {"max_len": 2, "max_paths": 1},
               "use_cache": false, "timeout_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(r.k, 3);
        assert_eq!(r.beta, Some(0.5));
        let e = r.explain.unwrap();
        assert_eq!((e.max_len, e.max_paths), (2, 1));
        assert!(!r.use_cache);
        assert_eq!(r.timeout_ms, Some(250));
    }

    #[test]
    fn explain_bool_and_partial_object() {
        let r = parse_search_request(r#"{"query": "q", "explain": true}"#).unwrap();
        assert_eq!(r.explain, Some(newslink_core::ExplainOptions::default()));
        let r = parse_search_request(r#"{"query": "q", "explain": false}"#).unwrap();
        assert!(r.explain.is_none());
        let r = parse_search_request(r#"{"query": "q", "explain": {"max_paths": 2}}"#).unwrap();
        let e = r.explain.unwrap();
        assert_eq!(e.max_paths, 2);
        assert_eq!(e.max_len, newslink_core::ExplainOptions::default().max_len);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_search_request("not json").is_err());
        assert!(parse_search_request(r#"["query"]"#).is_err());
        assert!(parse_search_request(r#"{"k": 3}"#).is_err(), "query is required");
        assert!(parse_search_request(r#"{"query": 7}"#).is_err(), "query must be a string");
        assert!(parse_search_request(r#"{"query": "q", "knn": 3}"#).is_err(), "unknown field");
        assert!(parse_search_request(r#"{"query": "q", "beta": 1.5}"#).is_err(), "beta range");
        assert!(
            parse_search_request(r#"{"query": "q", "explain": {"depth": 3}}"#).is_err(),
            "unknown explain field"
        );
    }

    #[test]
    fn rejects_out_of_range_numeric_fields_with_clear_messages() {
        // The JSON number grammar can produce an infinity; it must be
        // named as non-finite, not swallowed by the range check.
        let err = parse_search_request(r#"{"query": "q", "beta": 1e999}"#).unwrap_err();
        assert!(err.contains("finite"), "names non-finiteness: {err}");
        let err = parse_search_request(r#"{"query": "q", "beta": -1e999}"#).unwrap_err();
        assert!(err.contains("finite"), "{err}");
        let err = parse_search_request(r#"{"query": "q", "beta": -0.25}"#).unwrap_err();
        assert!(err.contains("[0, 1]"), "names the range: {err}");
        let err = parse_search_request(r#"{"query": "q", "k": 1000000}"#).unwrap_err();
        assert!(err.contains("10000"), "names the cap: {err}");
        let err =
            parse_search_request(r#"{"query": "q", "explain": {"max_len": 99}}"#).unwrap_err();
        assert!(err.contains("max_len"), "{err}");
        let err =
            parse_search_request(r#"{"query": "q", "explain": {"max_paths": 5000}}"#).unwrap_err();
        assert!(err.contains("max_paths"), "{err}");
        // The caps themselves are accepted.
        let r = parse_search_request(
            r#"{"query": "q", "k": 10000, "explain": {"max_len": 32, "max_paths": 1000}}"#,
        )
        .unwrap();
        assert_eq!(r.k, MAX_K);
    }

    #[test]
    fn request_error_maps_to_status() {
        assert_eq!(bad("x").status(), 400);
        assert_eq!(RequestError::Internal("x".into()).status(), 500);
        let r = RequestError::Internal("broken invariant".into()).into_routed(Route::Search);
        assert_eq!(r.status, 500);
        assert!(r.body.contains("broken invariant"));
        assert!(r.body.contains(r#""code":"internal""#), "{}", r.body);
    }

    #[test]
    fn error_body_is_a_typed_envelope_with_escaping() {
        assert_eq!(
            error_body(400, "bad \"x\""),
            r#"{"error":{"code":"bad_request","message":"bad \"x\""}}"#
        );
        for (status, code) in [
            (400, "bad_request"),
            (404, "not_found"),
            (405, "method_not_allowed"),
            (413, "payload_too_large"),
            (429, "too_many_requests"),
            (500, "internal"),
            (503, "service_unavailable"),
        ] {
            assert_eq!(error_code(status), code);
        }
    }

    #[test]
    fn api_paths_cover_the_route_table() {
        for p in [
            "/healthz",
            "/metrics",
            "/search",
            "/search/batch",
            "/docs",
            "/docs/17",
            "/admin/snapshot",
        ] {
            assert!(is_api_path(p), "{p}");
        }
        assert!(!is_api_path("/nope"));
        assert!(!is_api_path("/v1/search"), "prefix is stripped before the check");
    }
}
