//! Server observability: request/response counters and a latency
//! histogram, snapshotted as the `GET /metrics` JSON document.
//!
//! Counters are lock-free atomics so the accept loop and every worker
//! can record without contention; only the latency histogram sits behind
//! a mutex (one `record` per finished request). The snapshot folds in
//! the engine's [`EngineCacheStats`] so one endpoint answers both "how
//! is the server doing" and "how warm are the caches".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use newslink_core::{EngineCacheStats, IndexStats};
use newslink_util::Histogram;
use parking_lot::Mutex;
use serde::{Number, Serialize, Value};

/// An integer counter as a JSON value.
fn num(n: u64) -> Value {
    Value::Number(Number::from_i128(n as i128))
}

/// Which endpoint a request resolved to, for per-route counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /search`.
    Search,
    /// `POST /search/batch`.
    Batch,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /docs` and `DELETE /docs/<id>` (live index mutations).
    Docs,
    /// `POST /admin/snapshot` (checkpoint the durable store).
    Admin,
    /// `POST /internal/*` (shard-side scatter-gather endpoints, called
    /// by a router, never by end clients).
    Internal,
    /// Anything else (unknown paths, unparseable requests).
    Other,
}

/// The `/metrics` `kg` section: knowledge-graph shape and label-resolver
/// gauges. Static for a server's lifetime (the graph is immutable), so
/// it is computed once at startup and passed into every snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct KgStats {
    /// Nodes in the knowledge graph.
    pub nodes: usize,
    /// Undirected edges in the knowledge graph.
    pub edges: usize,
    /// Distinct normalized surfaces in the label resolver.
    pub surfaces: usize,
    /// Resolver backend name ("hash" or "fst").
    pub backend: &'static str,
    /// Approximate resident bytes of the resolver structures.
    pub resolver_bytes: usize,
}

impl KgStats {
    /// Gauge the graph and its label index.
    pub fn of(graph: &newslink_kg::KnowledgeGraph, index: &newslink_kg::LabelIndex) -> Self {
        Self {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            surfaces: index.len(),
            backend: index.backend(),
            resolver_bytes: index.resolver_bytes(),
        }
    }

    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("nodes".into(), num(self.nodes as u64)),
            ("edges".into(), num(self.edges as u64)),
            ("surfaces".into(), num(self.surfaces as u64)),
            ("resolver_backend".into(), Value::String(self.backend.into())),
            ("resolver_bytes".into(), num(self.resolver_bytes as u64)),
        ])
    }
}

/// Aggregate counters for one server's lifetime.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    requests_total: AtomicU64,
    search: AtomicU64,
    batch: AtomicU64,
    healthz: AtomicU64,
    metrics: AtomicU64,
    docs: AtomicU64,
    admin: AtomicU64,
    internal: AtomicU64,
    ok: AtomicU64,
    bad_request: AtomicU64,
    not_found: AtomicU64,
    method_not_allowed: AtomicU64,
    payload_too_large: AtomicU64,
    shed: AtomicU64,
    timeout: AtomicU64,
    error: AtomicU64,
    ns_candidates: AtomicU64,
    ns_docs_scored: AtomicU64,
    ns_blocks_skipped: AtomicU64,
    par_workers: AtomicU64,
    par_queries: AtomicU64,
    par_segments: AtomicU64,
    par_floor_raises: AtomicU64,
    par_floor_pruned: AtomicU64,
    par_floor_blocks_skipped: AtomicU64,
    latency_us: Mutex<Histogram>,
}

impl ServerMetrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            search: AtomicU64::new(0),
            batch: AtomicU64::new(0),
            healthz: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            docs: AtomicU64::new(0),
            admin: AtomicU64::new(0),
            internal: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            bad_request: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            method_not_allowed: AtomicU64::new(0),
            payload_too_large: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeout: AtomicU64::new(0),
            error: AtomicU64::new(0),
            ns_candidates: AtomicU64::new(0),
            ns_docs_scored: AtomicU64::new(0),
            ns_blocks_skipped: AtomicU64::new(0),
            par_workers: AtomicU64::new(0),
            par_queries: AtomicU64::new(0),
            par_segments: AtomicU64::new(0),
            par_floor_raises: AtomicU64::new(0),
            par_floor_pruned: AtomicU64::new(0),
            par_floor_blocks_skipped: AtomicU64::new(0),
            latency_us: Mutex::new(Histogram::new()),
        }
    }

    /// Fold one query's pruned-evaluator counters into the server-wide
    /// totals (candidates considered, documents fully scored, posting
    /// blocks skipped without decoding).
    pub fn observe_pruning(&self, prune: &newslink_core::PruneStats) {
        self.ns_candidates.fetch_add(prune.candidates, Ordering::Relaxed);
        self.ns_docs_scored.fetch_add(prune.scored, Ordering::Relaxed);
        self.ns_blocks_skipped
            .fetch_add(prune.blocks_skipped, Ordering::Relaxed);
    }

    /// Fold one query's intra-query fan-out counters into the
    /// server-wide totals. `workers` is a high-water gauge (the widest
    /// fan-out seen); everything else accumulates. Queries whose NS
    /// stage ran sequentially report all-zero stats and leave every
    /// counter untouched.
    pub fn observe_parallel(&self, parallel: &newslink_core::ParallelStats) {
        if parallel.workers == 0 {
            return;
        }
        self.par_workers.fetch_max(parallel.workers, Ordering::Relaxed);
        self.par_queries.fetch_add(1, Ordering::Relaxed);
        self.par_segments.fetch_add(parallel.segments, Ordering::Relaxed);
        self.par_floor_raises
            .fetch_add(parallel.floor_raises, Ordering::Relaxed);
        self.par_floor_pruned
            .fetch_add(parallel.floor_pruned, Ordering::Relaxed);
        self.par_floor_blocks_skipped
            .fetch_add(parallel.floor_blocks_skipped, Ordering::Relaxed);
    }

    /// Record one finished request: which route it hit, the status it got,
    /// and its accept-to-response latency.
    pub fn observe(&self, route: Route, status: u16, latency: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let route_counter = match route {
            Route::Search => Some(&self.search),
            Route::Batch => Some(&self.batch),
            Route::Healthz => Some(&self.healthz),
            Route::Metrics => Some(&self.metrics),
            Route::Docs => Some(&self.docs),
            Route::Admin => Some(&self.admin),
            Route::Internal => Some(&self.internal),
            Route::Other => None,
        };
        if let Some(counter) = route_counter {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let status_counter = match status {
            200 => &self.ok,
            400 => &self.bad_request,
            404 => &self.not_found,
            405 => &self.method_not_allowed,
            413 => &self.payload_too_large,
            429 => &self.shed,
            503 => &self.timeout,
            _ => &self.error,
        };
        status_counter.fetch_add(1, Ordering::Relaxed);
        self.latency_us.lock().record_micros(latency);
    }

    /// A load-shed rejection written straight from the accept loop (the
    /// connection never reached a worker, so there is no latency sample).
    pub fn observe_shed(&self) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests seen (including shed ones).
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Requests rejected by admission control.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests answered `200`.
    pub fn ok_total(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Latency samples recorded so far.
    pub fn latency_count(&self) -> u64 {
        self.latency_us.lock().count()
    }

    /// The full `/metrics` document: uptime, per-route and per-status
    /// counters, the latency histogram, the admission gauge, the
    /// engine's cache counters, the segmented index's gauges, and the
    /// knowledge-graph/resolver gauges (`kg`). When the server runs
    /// durably, `durability` carries the recovery report and
    /// WAL/checkpoint gauges and lands as one more section; in router
    /// mode `cluster` does the same for the shard map (per-group
    /// latency, failovers, probe state).
    pub fn snapshot(
        &self,
        in_flight: usize,
        cache: &EngineCacheStats,
        index: IndexStats,
        kg: KgStats,
        durability: Option<Value>,
        cluster: Option<Value>,
    ) -> Value {
        let load = |c: &AtomicU64| num(c.load(Ordering::Relaxed));
        let mut sections = vec![
            (
                "uptime_ms".into(),
                num(self.started.elapsed().as_millis() as u64),
            ),
            ("requests_total".into(), load(&self.requests_total)),
            (
                "routes".into(),
                Value::Object(vec![
                    ("search".into(), load(&self.search)),
                    ("batch".into(), load(&self.batch)),
                    ("healthz".into(), load(&self.healthz)),
                    ("metrics".into(), load(&self.metrics)),
                    ("docs".into(), load(&self.docs)),
                    ("admin".into(), load(&self.admin)),
                    ("internal".into(), load(&self.internal)),
                ]),
            ),
            (
                "responses".into(),
                Value::Object(vec![
                    ("ok".into(), load(&self.ok)),
                    ("bad_request".into(), load(&self.bad_request)),
                    ("not_found".into(), load(&self.not_found)),
                    ("method_not_allowed".into(), load(&self.method_not_allowed)),
                    ("payload_too_large".into(), load(&self.payload_too_large)),
                    ("shed".into(), load(&self.shed)),
                    ("timeout".into(), load(&self.timeout)),
                    ("error".into(), load(&self.error)),
                ]),
            ),
            ("in_flight".into(), num(in_flight as u64)),
            (
                "pruning".into(),
                Value::Object(vec![
                    ("candidates".into(), load(&self.ns_candidates)),
                    ("docs_scored".into(), load(&self.ns_docs_scored)),
                    ("blocks_skipped".into(), load(&self.ns_blocks_skipped)),
                ]),
            ),
            (
                "search_parallel".into(),
                Value::Object(vec![
                    ("workers".into(), load(&self.par_workers)),
                    ("queries".into(), load(&self.par_queries)),
                    ("segments".into(), load(&self.par_segments)),
                    ("floor_raises".into(), load(&self.par_floor_raises)),
                    ("floor_pruned".into(), load(&self.par_floor_pruned)),
                    (
                        "floor_blocks_skipped".into(),
                        load(&self.par_floor_blocks_skipped),
                    ),
                ]),
            ),
            ("latency_us".into(), self.latency_us.lock().serialize_value()),
            ("cache".into(), cache.serialize_value()),
            (
                "index".into(),
                Value::Object(vec![
                    ("docs".into(), num(index.docs as u64)),
                    ("segments".into(), num(index.segments as u64)),
                    ("tombstones".into(), num(index.tombstones as u64)),
                    ("compactions".into(), num(index.compactions)),
                ]),
            ),
            ("kg".into(), kg.serialize_value()),
        ];
        if let Some(durability) = durability {
            sections.push(("durability".into(), durability));
        }
        if let Some(cluster) = cluster {
            sections.push(("cluster".into(), cluster));
        }
        Value::Object(sections)
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn observes_routes_statuses_and_latency() {
        let m = ServerMetrics::new();
        m.observe(Route::Search, 200, Duration::from_micros(150));
        m.observe(Route::Search, 503, Duration::from_micros(90));
        m.observe(Route::Healthz, 200, Duration::from_micros(5));
        m.observe(Route::Other, 404, Duration::from_micros(3));
        m.observe_shed();
        assert_eq!(m.requests_total(), 5);
        assert_eq!(m.ok_total(), 2);
        assert_eq!(m.shed_total(), 1);
        assert_eq!(m.latency_count(), 4, "shed requests have no latency sample");
    }

    #[test]
    fn snapshot_has_every_section() {
        let m = ServerMetrics::new();
        m.observe(Route::Batch, 200, Duration::from_micros(42));
        m.observe(Route::Docs, 200, Duration::from_micros(7));
        let index = IndexStats {
            docs: 10,
            segments: 3,
            tombstones: 2,
            compactions: 5,
        };
        let kg = KgStats {
            nodes: 100,
            edges: 250,
            surfaces: 97,
            backend: "fst",
            resolver_bytes: 4096,
        };
        let snap = m.snapshot(3, &EngineCacheStats::default(), index, kg, None, None);
        assert_eq!(snap["requests_total"], 2u64);
        assert_eq!(snap["routes"]["batch"], 1u64);
        assert_eq!(snap["routes"]["docs"], 1u64);
        assert_eq!(snap["routes"]["admin"], 0u64);
        assert_eq!(snap["responses"]["ok"], 2u64);
        assert_eq!(snap["in_flight"], 3u64);
        assert_eq!(snap["latency_us"]["count"], 2u64);
        assert!(!snap["cache"]["queries"].is_null());
        assert_eq!(snap["index"]["docs"], 10u64);
        assert_eq!(snap["index"]["segments"], 3u64);
        assert_eq!(snap["index"]["tombstones"], 2u64);
        assert_eq!(snap["index"]["compactions"], 5u64);
        assert_eq!(snap["kg"]["nodes"], 100u64);
        assert_eq!(snap["kg"]["edges"], 250u64);
        assert_eq!(snap["kg"]["surfaces"], 97u64);
        assert_eq!(snap["kg"]["resolver_backend"], "fst");
        assert_eq!(snap["kg"]["resolver_bytes"], 4096u64);
        assert_eq!(snap["pruning"]["candidates"], 0u64);
        assert_eq!(snap["pruning"]["docs_scored"], 0u64);
        assert_eq!(snap["pruning"]["blocks_skipped"], 0u64);
        assert_eq!(snap["search_parallel"]["workers"], 0u64);
        assert_eq!(snap["search_parallel"]["queries"], 0u64);
        assert_eq!(snap["search_parallel"]["floor_raises"], 0u64);
        // Without durability wiring, the section is absent entirely.
        assert!(snap["durability"].is_null());
        // The document renders as valid JSON text.
        let text = serde_json::to_string(&snap).unwrap();
        assert!(text.contains("\"uptime_ms\""));
    }

    #[test]
    fn pruning_counters_accumulate_across_queries() {
        let m = ServerMetrics::new();
        m.observe_pruning(&newslink_core::PruneStats {
            candidates: 10,
            scored: 4,
            blocks_skipped: 3,
        });
        m.observe_pruning(&newslink_core::PruneStats {
            candidates: 5,
            scored: 5,
            blocks_skipped: 0,
        });
        let snap = m.snapshot(
            0,
            &EngineCacheStats::default(),
            IndexStats::default(),
            KgStats::default(),
            None,
            None,
        );
        assert_eq!(snap["pruning"]["candidates"], 15u64);
        assert_eq!(snap["pruning"]["docs_scored"], 9u64);
        assert_eq!(snap["pruning"]["blocks_skipped"], 3u64);
    }

    #[test]
    fn parallel_counters_gauge_workers_and_accumulate_the_rest() {
        let m = ServerMetrics::new();
        // A sequential query reports zeros and is not counted.
        m.observe_parallel(&newslink_core::ParallelStats::default());
        m.observe_parallel(&newslink_core::ParallelStats {
            workers: 4,
            segments: 6,
            floor_raises: 9,
            floor_pruned: 2,
            floor_blocks_skipped: 5,
        });
        m.observe_parallel(&newslink_core::ParallelStats {
            workers: 2,
            segments: 3,
            floor_raises: 1,
            floor_pruned: 0,
            floor_blocks_skipped: 0,
        });
        let snap = m.snapshot(
            0,
            &EngineCacheStats::default(),
            IndexStats::default(),
            KgStats::default(),
            None,
            None,
        );
        assert_eq!(snap["search_parallel"]["workers"], 4u64);
        assert_eq!(snap["search_parallel"]["queries"], 2u64);
        assert_eq!(snap["search_parallel"]["segments"], 9u64);
        assert_eq!(snap["search_parallel"]["floor_raises"], 10u64);
        assert_eq!(snap["search_parallel"]["floor_pruned"], 2u64);
        assert_eq!(snap["search_parallel"]["floor_blocks_skipped"], 5u64);
    }

    #[test]
    fn snapshot_carries_the_durability_section_when_given_one() {
        let m = ServerMetrics::new();
        m.observe(Route::Admin, 200, Duration::from_micros(12));
        let gauges = Value::Object(vec![("quarantined_segments".into(), num(1))]);
        let snap = m.snapshot(
            0,
            &EngineCacheStats::default(),
            IndexStats::default(),
            KgStats::default(),
            Some(gauges),
            None,
        );
        assert_eq!(snap["routes"]["admin"], 1u64);
        assert_eq!(snap["durability"]["quarantined_segments"], 1u64);
    }
}
