//! The router's pooled HTTP/1.1 client for one replica.
//!
//! Plain `std::net`, like everything else in this workspace: each call
//! prefers a parked kept-alive connection (the shard answered
//! `Connection: keep-alive`, so the stream is positioned at the next
//! request), falling back to a fresh connect. A parked connection can
//! have gone stale — the shard's idle read timeout closes it, or the
//! process died — so a pooled-connection failure is retried once on a
//! fresh socket before the error propagates. That retry is *not*
//! failover: failover across replicas is the [`super::Cluster`]'s job.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::protocol::client::{read_response_framed, send_keep_alive, FullResponse};

/// Parked kept-alive connections retained per replica. Kept small on
/// purpose: an idle kept-alive connection pins one of the shard's
/// workers until its read timeout, so hoarding them starves the shard.
const MAX_IDLE: usize = 2;

/// Read/connect budget when the request carries no deadline. Also the
/// hedged read path's overall race deadline when none is supplied.
pub(crate) const DEFAULT_CALL_BUDGET: Duration = Duration::from_secs(5);

/// A [`Read`] adapter that anchors every read to one absolute deadline,
/// re-arming the socket's read timeout with the *remaining* time before
/// each syscall. A plain `set_read_timeout` resets on every byte, so a
/// peer dripping one byte per timeout window (a throttled or slow-loris
/// replica) could hold a "bounded" call forever; through this wrapper
/// the call returns `TimedOut` once the wall-clock deadline passes, no
/// matter how the bytes arrive.
#[derive(Debug)]
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Instant,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"));
        }
        self.stream.set_read_timeout(Some(left))?;
        match self.stream.read(buf) {
            // Map the timeout kinds (platform-dependent) onto TimedOut
            // so callers see one error for "the deadline passed".
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"))
            }
            other => other,
        }
    }
}

/// A blocking, connection-pooling client for a single replica address.
#[derive(Debug)]
pub struct ReplicaClient {
    addr: SocketAddr,
    idle: Mutex<Vec<TcpStream>>,
}

impl ReplicaClient {
    /// A client with an empty pool.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The replica this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Time left until `deadline` (a default budget when there is
    /// none); an already-expired deadline fails without touching the
    /// network.
    fn remaining(deadline: Option<Instant>) -> io::Result<Duration> {
        match deadline {
            None => Ok(DEFAULT_CALL_BUDGET),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired"))
                } else {
                    Ok((d - now).max(Duration::from_millis(1)))
                }
            }
        }
    }

    /// Issue `method path` with `body`, returning `(status, body)`.
    /// The remaining deadline bounds connect and read; responses the
    /// shard kept alive park the connection for the next call.
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> io::Result<(u16, String)> {
        // Take the parked connection in its own statement: an `if let`
        // on `lock().pop()` would hold the pool guard for the whole
        // block, and `park` below re-locks the (non-reentrant) pool.
        let parked = self.idle.lock().pop();
        if let Some(mut stream) = parked {
            // A parked connection may have died since it was parked;
            // treat any failure as staleness and retry on a fresh
            // socket below.
            if let Ok(resp) = self.roundtrip(&mut stream, method, path, body, deadline) {
                self.park(stream, &resp);
                return Ok((resp.0, resp.2));
            }
        }
        let mut stream = TcpStream::connect_timeout(&self.addr, Self::remaining(deadline)?)?;
        // Internal hops are request/response ping-pong; Nagle only adds
        // latency here.
        stream.set_nodelay(true)?;
        let resp = self.roundtrip(&mut stream, method, path, body, deadline)?;
        self.park(stream, &resp);
        Ok((resp.0, resp.2))
    }

    fn roundtrip(
        &self,
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> io::Result<FullResponse> {
        let budget = Self::remaining(deadline)?;
        stream.set_read_timeout(Some(budget))?;
        send_keep_alive(stream, method, path, body)?;
        // Anchor the read to an absolute instant: the per-socket timeout
        // alone restarts on every received byte.
        let mut reader = DeadlineStream {
            stream,
            deadline: deadline.unwrap_or_else(|| Instant::now() + budget),
        };
        read_response_framed(&mut reader)
    }

    /// Park the connection for reuse if the server agreed to keep it.
    fn park(&self, stream: TcpStream, resp: &FullResponse) {
        let kept = resp
            .1
            .iter()
            .any(|(n, v)| n.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("keep-alive"));
        if kept {
            let mut idle = self.idle.lock();
            if idle.len() < MAX_IDLE {
                idle.push(stream);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn remaining_respects_deadlines() {
        assert_eq!(ReplicaClient::remaining(None).unwrap(), DEFAULT_CALL_BUDGET);
        let soon = Instant::now() + Duration::from_secs(1);
        let left = ReplicaClient::remaining(Some(soon)).unwrap();
        assert!(left <= Duration::from_secs(1));
        assert!(left >= Duration::from_millis(1));
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            ReplicaClient::remaining(Some(past)).unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn pooled_connection_is_reused_without_deadlock() {
        // A one-connection server: if the client opened a second socket
        // for the second call, that call would fail — so passing proves
        // the parked connection was popped, reused, and re-parked.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let req = crate::protocol::read_request(&mut s, 1 << 20).unwrap();
                assert!(req.keep_alive, "client asks to keep the connection");
                crate::protocol::write_response_conn(&mut s, 200, &[], "{}", true).unwrap();
            }
        });
        let client = ReplicaClient::new(addr);
        let deadline = Instant::now() + Duration::from_secs(5);
        let (status, _) = client.call("GET", "/healthz", "", Some(deadline)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(client.idle.lock().len(), 1, "kept-alive response parked");
        // The reuse path once self-deadlocked re-locking the pool.
        let (status, _) = client.call("GET", "/healthz", "", Some(deadline)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(client.idle.lock().len(), 1, "re-parked after reuse");
        server.join().unwrap();
    }

    #[test]
    fn connect_failure_surfaces_as_io_error() {
        // A port nothing listens on: the call must fail, not hang.
        let client = ReplicaClient::new("127.0.0.1:1".parse().unwrap());
        let deadline = Instant::now() + Duration::from_millis(200);
        assert!(client.call("GET", "/healthz", "", Some(deadline)).is_err());
    }
}
