//! The cluster's resilience policy: circuit breakers, a token-bucket
//! retry budget with decorrelated-jitter backoff, and the knobs that
//! tune them (plus the health prober's cadence).
//!
//! Three mechanisms, one goal — a sick replica must cost the cluster a
//! bounded amount of work, never a storm:
//!
//! - A per-replica [`CircuitBreaker`] watches a rolling window of call
//!   outcomes. Too many failures trips it **open**: the replica is
//!   skipped outright (no connect, no timeout spent). After a cooldown
//!   it admits exactly one **half-open** trial; success closes it,
//!   failure re-opens and re-arms the cooldown. The health prober's
//!   sweeps feed the same breaker, so a recovered replica is re-admitted
//!   within one probe interval even with no data traffic.
//! - A [`RetryBudget`] token bucket caps *extra* attempts (failovers,
//!   hedges) to a fixed fraction of primary traffic: each primary call
//!   deposits `retry_budget` tokens (bounded by a burst cap), each extra
//!   attempt spends one. When the bucket is dry, the router degrades
//!   honestly instead of multiplying a brown-out — upstream request
//!   amplification is bounded by `1 + ratio` plus the one-off burst cap.
//! - [`DecorrelatedJitter`] spaces sequential failover attempts
//!   (`sleep = min(cap, uniform(base, 3·prev))`, per AWS's analysis) so
//!   a failing group's retries don't arrive in lockstep.
//!
//! All knobs live in [`ResilienceConfig`]; CLI flags parse through
//! [`ResilienceConfig::apply_flag`] with typed [`FlagError`]s mirroring
//! the `--shards` parser's [`super::SpecError`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use newslink_util::rng::DetRng;
use parking_lot::Mutex;

/// Everything tunable about the resilience layer, in one place.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Health-prober sweep cadence, milliseconds (`--probe-interval-ms`).
    pub probe_interval_ms: u64,
    /// Consecutive probe failures before a replica is marked unhealthy
    /// (`--probe-failures`). 1 preserves the pre-knob behaviour.
    pub probe_failures: u32,
    /// Launch a hedge attempt on reads after this many milliseconds
    /// without an answer (`--hedge-after-ms`); `None` = hedging off.
    /// Writes never hedge.
    pub hedge_after_ms: Option<u64>,
    /// Rolling outcome-window size per replica breaker
    /// (`--breaker-window`).
    pub breaker_window: usize,
    /// Failures within the window that trip the breaker open.
    pub breaker_failures: u32,
    /// How long an open breaker rejects before admitting a half-open
    /// trial, milliseconds.
    pub breaker_cooldown_ms: u64,
    /// Retry tokens minted per primary attempt (`--retry-budget`):
    /// extra attempts (failover + hedge) per primary call, amortized.
    pub retry_budget: f64,
    /// Burst cap on banked retry tokens (the bucket also *starts* here,
    /// so a cold cluster can fail over immediately).
    pub retry_budget_cap: f64,
    /// Decorrelated-jitter backoff floor, milliseconds.
    pub backoff_base_ms: u64,
    /// Decorrelated-jitter backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the backoff jitter streams (deterministic per call
    /// index, like every other seeded component in the workspace).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            probe_interval_ms: 500,
            probe_failures: 1,
            hedge_after_ms: None,
            breaker_window: 32,
            breaker_failures: 8,
            breaker_cooldown_ms: 1_000,
            retry_budget: 0.2,
            retry_budget_cap: 16.0,
            backoff_base_ms: 1,
            backoff_cap_ms: 50,
            seed: 0x4e4c_5245_5349_4c01, // "NLRESIL" v1
        }
    }
}

impl ResilienceConfig {
    /// Apply one CLI flag. Returns `Ok(true)` if the flag belongs to
    /// this config, `Ok(false)` if it is not a resilience flag (the
    /// caller keeps parsing), and a typed [`FlagError`] when the value
    /// is malformed or out of range.
    pub fn apply_flag(&mut self, flag: &str, value: &str) -> Result<bool, FlagError> {
        match flag {
            "--probe-interval-ms" => {
                self.probe_interval_ms = parse_ranged("--probe-interval-ms", value, 10, 600_000)?;
            }
            "--probe-failures" => {
                self.probe_failures = parse_ranged("--probe-failures", value, 1, 1_000)? as u32;
            }
            "--hedge-after-ms" => {
                // 0 switches hedging off explicitly.
                let ms = parse_ranged("--hedge-after-ms", value, 0, 60_000)?;
                self.hedge_after_ms = (ms > 0).then_some(ms);
            }
            "--breaker-window" => {
                let window = parse_ranged("--breaker-window", value, 1, 65_536)? as usize;
                self.breaker_window = window;
                // Keep the trip point a quarter of the window so one
                // knob stays one knob; never below a single failure.
                self.breaker_failures = ((window / 4).max(1)) as u32;
            }
            "--retry-budget" => {
                let ratio: f64 = value.parse().map_err(|_| FlagError::BadNumber {
                    flag: "--retry-budget",
                    value: value.to_string(),
                })?;
                if !ratio.is_finite() || !(0.0..=16.0).contains(&ratio) {
                    return Err(FlagError::OutOfRange {
                        flag: "--retry-budget",
                        value: value.to_string(),
                        expected: "a ratio in 0.0..=16.0",
                    });
                }
                self.retry_budget = ratio;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The flags [`apply_flag`](Self::apply_flag) understands, for
    /// usage/error text.
    pub const FLAGS: [&'static str; 5] = [
        "--probe-interval-ms",
        "--probe-failures",
        "--hedge-after-ms",
        "--breaker-window",
        "--retry-budget",
    ];
}

fn parse_ranged(flag: &'static str, value: &str, lo: u64, hi: u64) -> Result<u64, FlagError> {
    let n: u64 = value.parse().map_err(|_| FlagError::BadNumber {
        flag,
        value: value.to_string(),
    })?;
    if n < lo || n > hi {
        return Err(FlagError::OutOfRange {
            flag,
            value: value.to_string(),
            expected: match (lo, hi) {
                (0, 60_000) => "milliseconds in 0..=60000 (0 = off)",
                (10, 600_000) => "milliseconds in 10..=600000",
                (1, 1_000) => "a count in 1..=1000",
                (1, 65_536) => "a window size in 1..=65536",
                _ => "a value in range",
            },
        });
    }
    Ok(n)
}

/// What went wrong parsing a resilience flag — typed, like
/// [`super::SpecError`], so the CLI prints precise one-line messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// The value was not a number at all.
    BadNumber {
        /// The offending flag.
        flag: &'static str,
        /// The raw value given.
        value: String,
    },
    /// The value parsed but is outside the flag's accepted range.
    OutOfRange {
        /// The offending flag.
        flag: &'static str,
        /// The raw value given.
        value: String,
        /// Human description of the accepted range.
        expected: &'static str,
    },
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::BadNumber { flag, value } => {
                write!(f, "{flag}: `{value}` is not a number")
            }
            FlagError::OutOfRange {
                flag,
                value,
                expected,
            } => write!(f, "{flag}: `{value}` out of range (expected {expected})"),
        }
    }
}

impl std::error::Error for FlagError {}

/// A circuit breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; outcomes accumulate in the rolling window.
    Closed,
    /// Calls are rejected until the cooldown elapses.
    Open,
    /// One trial call is in flight; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Lower-snake name for metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Rolling outcome ring: `true` = failure.
    ring: Vec<bool>,
    next: usize,
    filled: usize,
    failures: u32,
    opened_at: Instant,
    trial_started: Instant,
    opens: u64,
}

/// Per-replica rolling-window circuit breaker:
/// closed → (failures ≥ threshold in window) → open → (cooldown) →
/// half-open trial → closed on success / open on failure. Failures
/// observed *while* open (last-resort calls, probe sweeps) re-arm the
/// cooldown, so a dead replica's breaker never flaps.
#[derive(Debug)]
pub struct CircuitBreaker {
    window: usize,
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker over a `window`-outcome ring tripping at
    /// `threshold` failures, rejecting for `cooldown` once open.
    pub fn new(window: usize, threshold: u32, cooldown: Duration) -> Self {
        let window = window.max(1);
        let now = Instant::now();
        Self {
            window,
            threshold: threshold.clamp(1, window as u32),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                ring: vec![false; window],
                next: 0,
                filled: 0,
                failures: 0,
                opened_at: now,
                trial_started: now,
                opens: 0,
            }),
        }
    }

    /// Build from config.
    pub fn from_config(cfg: &ResilienceConfig) -> Self {
        Self::new(
            cfg.breaker_window,
            cfg.breaker_failures,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        )
    }

    /// Current state, for metrics.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Times this breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.inner.lock().opens
    }

    /// May a call proceed right now? An open breaker past its cooldown
    /// transitions to half-open and admits exactly one trial; a
    /// half-open breaker whose trial has been in flight longer than a
    /// cooldown (the caller died) re-admits.
    pub fn admit(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.duration_since(inner.opened_at) >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.trial_started = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if now.duration_since(inner.trial_started) >= self.cooldown {
                    inner.trial_started = now;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a call (or probe) outcome.
    pub fn record(&self, ok: bool, now: Instant) {
        let mut inner = self.inner.lock();
        match (inner.state, ok) {
            (BreakerState::Closed, _) => {
                Self::push(&mut inner, self.window, !ok);
                if !ok && inner.failures >= self.threshold {
                    Self::open(&mut inner, now);
                }
            }
            // A success from anywhere — half-open trial, last-resort
            // call, probe — proves the replica answers; close and start
            // a clean window.
            (BreakerState::HalfOpen | BreakerState::Open, true) => Self::close(&mut inner),
            (BreakerState::HalfOpen, false) => Self::open(&mut inner, now),
            // Still failing while open: re-arm the cooldown so the next
            // trial waits a full cooldown from *this* failure.
            (BreakerState::Open, false) => inner.opened_at = now,
        }
    }

    fn push(inner: &mut BreakerInner, window: usize, failure: bool) {
        let slot = inner.next;
        if inner.filled == window {
            if inner.ring[slot] {
                inner.failures -= 1;
            }
        } else {
            inner.filled += 1;
        }
        inner.ring[slot] = failure;
        if failure {
            inner.failures += 1;
        }
        inner.next = (slot + 1) % window;
    }

    fn open(inner: &mut BreakerInner, now: Instant) {
        inner.state = BreakerState::Open;
        inner.opened_at = now;
        inner.opens += 1;
    }

    fn close(inner: &mut BreakerInner) {
        inner.state = BreakerState::Closed;
        inner.ring.fill(false);
        inner.next = 0;
        inner.filled = 0;
        inner.failures = 0;
    }
}

/// A token bucket denominated in milli-tokens: each primary attempt
/// deposits `ratio`, each extra attempt (failover or hedge) spends 1.
/// The bucket starts — and is capped — at `cap`, so amplification over
/// any interval is at most `ratio × primaries + cap`.
#[derive(Debug)]
pub struct RetryBudget {
    ratio_milli: u64,
    cap_milli: u64,
    tokens_milli: AtomicU64,
    deposits: AtomicU64,
    spent: AtomicU64,
    denied: AtomicU64,
}

impl RetryBudget {
    /// A full bucket minting `ratio` tokens per deposit, holding at
    /// most `cap`.
    pub fn new(ratio: f64, cap: f64) -> Self {
        let ratio_milli = (ratio.clamp(0.0, 1_000.0) * 1_000.0).round() as u64;
        let cap_milli = (cap.clamp(0.0, 1_000_000.0) * 1_000.0).round() as u64;
        Self {
            ratio_milli,
            cap_milli,
            tokens_milli: AtomicU64::new(cap_milli),
            deposits: AtomicU64::new(0),
            spent: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Build from config.
    pub fn from_config(cfg: &ResilienceConfig) -> Self {
        Self::new(cfg.retry_budget, cfg.retry_budget_cap)
    }

    /// Credit one primary attempt.
    pub fn deposit(&self) {
        self.deposits.fetch_add(1, Ordering::Relaxed);
        if self.ratio_milli == 0 {
            return;
        }
        let _ = self
            .tokens_milli
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some((t + self.ratio_milli).min(self.cap_milli))
            });
    }

    /// Try to pay for one extra attempt; `false` means the budget is
    /// exhausted and the attempt must not happen.
    pub fn try_spend(&self) -> bool {
        let paid = self
            .tokens_milli
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                (t >= 1_000).then(|| t - 1_000)
            })
            .is_ok();
        if paid {
            self.spent.fetch_add(1, Ordering::Relaxed);
        } else {
            self.denied.fetch_add(1, Ordering::Relaxed);
        }
        paid
    }

    /// Milli-tokens currently banked.
    pub fn tokens_milli(&self) -> u64 {
        self.tokens_milli.load(Ordering::Relaxed)
    }

    /// Primary attempts credited.
    pub fn deposits(&self) -> u64 {
        self.deposits.load(Ordering::Relaxed)
    }

    /// Extra attempts paid for.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Extra attempts refused for lack of tokens.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

/// Decorrelated-jitter backoff: `next = min(cap, uniform(base, 3·prev))`.
/// Deterministic given its [`DetRng`], like every seeded component here.
#[derive(Debug)]
pub struct DecorrelatedJitter {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    rng: DetRng,
}

impl DecorrelatedJitter {
    /// A fresh backoff sequence starting at `base_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, rng: DetRng) -> Self {
        let base_ms = base_ms.max(1);
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
            rng,
        }
    }

    /// The next sleep in the sequence.
    pub fn next_delay(&mut self) -> Duration {
        let hi = (self.prev_ms.saturating_mul(3)).max(self.base_ms + 1);
        let span = (hi - self.base_ms) as usize + 1;
        let ms = self.base_ms + self.rng.below(span) as u64;
        self.prev_ms = ms.min(self.cap_ms);
        Duration::from_millis(self.prev_ms)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let b = CircuitBreaker::new(8, 3, ms(100));
        let t0 = Instant::now();
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.admit(t0));
            b.record(false, t0);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.admit(t0 + ms(50)), "rejects during cooldown");
        // Cooldown elapsed: exactly one half-open trial is admitted.
        let t1 = t0 + ms(150);
        assert!(b.admit(t1));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit(t1 + ms(1)), "only one trial in flight");
        b.record(true, t1 + ms(2));
        assert_eq!(b.state(), BreakerState::Closed);
        // The window restarted clean: two failures don't re-trip.
        b.record(false, t1 + ms(3));
        b.record(false, t1 + ms(4));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_trial_reopens_and_rearms() {
        let b = CircuitBreaker::new(4, 2, ms(100));
        let t0 = Instant::now();
        b.record(false, t0);
        b.record(false, t0);
        assert_eq!(b.state(), BreakerState::Open);
        let t1 = t0 + ms(120);
        assert!(b.admit(t1));
        b.record(false, t1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // Cooldown counts from the trial failure, not the first open.
        assert!(!b.admit(t0 + ms(150)));
        assert!(b.admit(t1 + ms(100)));
    }

    #[test]
    fn probe_failures_while_open_keep_it_open() {
        let b = CircuitBreaker::new(4, 2, ms(100));
        let t0 = Instant::now();
        b.record(false, t0);
        b.record(false, t0);
        // Probes keep failing every 60 ms: cooldown never elapses.
        let mut t = t0;
        for _ in 0..5 {
            t += ms(60);
            b.record(false, t);
        }
        assert!(!b.admit(t + ms(60)), "re-armed by the probe failures");
        // One probe success closes it instantly — the prober *is* the
        // half-open trial.
        b.record(true, t + ms(61));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn rolling_window_evicts_old_failures() {
        let b = CircuitBreaker::new(4, 3, ms(100));
        let t = Instant::now();
        // failure, then 3 successes push it out of the window; 2 more
        // failures only make 2-in-window — stays closed.
        b.record(false, t);
        for _ in 0..3 {
            b.record(true, t);
        }
        b.record(false, t);
        b.record(false, t);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, t);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn retry_budget_bounds_amplification() {
        let budget = RetryBudget::new(0.5, 2.0);
        // Starts full: 2 immediate spends allowed, 3rd denied.
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
        assert_eq!(budget.spent(), 2);
        assert_eq!(budget.denied(), 1);
        // 2 deposits at 0.5 = 1 token.
        budget.deposit();
        budget.deposit();
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
        // Over any run: spends ≤ ratio × deposits + cap.
        let bound = (0.5 * budget.deposits() as f64 + 2.0).floor() as u64;
        assert!(budget.spent() <= bound);
    }

    #[test]
    fn zero_ratio_budget_never_refills() {
        let budget = RetryBudget::new(0.0, 1.0);
        assert!(budget.try_spend());
        for _ in 0..10 {
            budget.deposit();
        }
        assert!(!budget.try_spend(), "ratio 0 mints nothing");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mk = || DecorrelatedJitter::new(2, 40, DetRng::new(7));
        let (mut a, mut b) = (mk(), mk());
        let mut prev = 2u64;
        for _ in 0..50 {
            let d = a.next_delay();
            assert_eq!(d, b.next_delay(), "same seed, same sequence");
            let ms = d.as_millis() as u64;
            assert!((2..=40).contains(&ms), "bounded: {ms}");
            assert!(ms <= (prev * 3).clamp(3, 40), "decorrelated growth: {ms}");
            prev = ms;
        }
    }

    #[test]
    fn apply_flag_parses_and_rejects_with_typed_errors() {
        let mut cfg = ResilienceConfig::default();
        assert_eq!(cfg.apply_flag("--probe-interval-ms", "200"), Ok(true));
        assert_eq!(cfg.probe_interval_ms, 200);
        assert_eq!(cfg.apply_flag("--probe-failures", "3"), Ok(true));
        assert_eq!(cfg.probe_failures, 3);
        assert_eq!(cfg.apply_flag("--hedge-after-ms", "5"), Ok(true));
        assert_eq!(cfg.hedge_after_ms, Some(5));
        assert_eq!(cfg.apply_flag("--hedge-after-ms", "0"), Ok(true));
        assert_eq!(cfg.hedge_after_ms, None, "0 means off");
        assert_eq!(cfg.apply_flag("--breaker-window", "64"), Ok(true));
        assert_eq!((cfg.breaker_window, cfg.breaker_failures), (64, 16));
        assert_eq!(cfg.apply_flag("--retry-budget", "1.5"), Ok(true));
        assert!((cfg.retry_budget - 1.5).abs() < 1e-9);
        assert_eq!(cfg.apply_flag("--workers", "4"), Ok(false), "not ours");
        let bad = cfg.apply_flag("--probe-interval-ms", "fast").unwrap_err();
        assert!(bad.to_string().contains("not a number"), "{bad}");
        let oor = cfg.apply_flag("--probe-interval-ms", "1").unwrap_err();
        assert!(oor.to_string().contains("out of range"), "{oor}");
        let neg = cfg.apply_flag("--retry-budget", "-1").unwrap_err();
        assert!(matches!(neg, FlagError::OutOfRange { .. }), "{neg}");
    }
}
