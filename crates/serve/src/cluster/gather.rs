//! Router-mode request dispatch: scatter each search across the shard
//! groups, gather and merge.
//!
//! The merge reproduces the in-process multi-segment search bit for
//! bit. Three invariants carry the proof:
//!
//! 1. **Exact overlay** — collection statistics and per-term document
//!    frequencies are integer sums over shards, so the totals the
//!    shards score under equal the monolithic values; normalization
//!    divisors are maxima over shard maxima, and `max` over a set is
//!    feed-order independent.
//! 2. **Exact selection** — each shard returns its k best under the
//!    total order (score desc, global id asc); the union of shard
//!    lists therefore contains the global k best.
//! 3. **Canonical merge order** — the gathered union is sorted by
//!    ascending global id before being pushed through one
//!    `newslink_util::TopK`, which resolves score ties toward earlier
//!    pushes — i.e. lower ids, exactly like the in-process
//!    per-segment-then-merge structure.
//!
//! Failures degrade instead of failing: a group whose every replica is
//! unreachable is dropped from later phases and the response comes back
//! `503` with `"degraded": true` plus whatever the healthy groups
//! found.

use std::time::{Duration, Instant};

use newslink_core::{
    DocId, Explanation, IndexStats, NewsLink, ParallelStats, PruneStats, SearchRequest, SearchResponse,
    SearchResult,
};
use newslink_util::TopK;
use serde::{Deserialize, Number, Serialize, Value};

use super::proto::{
    f64_bits, f64_from_bits, OverlayWire, ShardSearchRequest, ShardSearchResponse, StatsRequest,
    StatsResponse, Top1Request, Top1Response,
};
use super::Cluster;
use crate::metrics::{Route, ServerMetrics};
use crate::protocol::HttpRequest;
use crate::router::{
    apply_deadline, error_body, is_api_path, parse_body, parse_insert_body, request_from_value,
    routed, Routed,
};
use crate::server::ServeConfig;

/// Everything a router worker needs to answer one request.
pub struct ClusterContext<'a, 'g> {
    /// Cluster topology and health state.
    pub cluster: &'a Cluster,
    /// The router's engine — it analyzes queries (NLP + NE) and owns
    /// the caches; it holds no corpus index.
    pub engine: &'a NewsLink<'g>,
    /// Server configuration (default deadline budget).
    pub config: &'a ServeConfig,
    /// Server counters, for the `/metrics` document.
    pub metrics: &'a ServerMetrics,
    /// Deadline anchor (accept or keep-alive arrival).
    pub accepted: Instant,
    /// Current admission gauge.
    pub in_flight: usize,
}

/// Dispatch one parsed request in router mode. Same `/v1` versioning
/// and legacy-alias deprecation as the standalone
/// [`dispatch`](crate::router::dispatch).
pub fn dispatch_cluster(req: &HttpRequest, ctx: &ClusterContext<'_, '_>) -> Routed {
    let (path, legacy) = match req.path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, false),
        _ => (req.path.as_str(), true),
    };
    let mut r = dispatch_path(req, path, ctx);
    r.deprecated = legacy && is_api_path(path);
    r
}

fn dispatch_path(req: &HttpRequest, path: &str, ctx: &ClusterContext<'_, '_>) -> Routed {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(ctx),
        ("GET", "/metrics") => {
            let snap = ctx.metrics.snapshot(
                ctx.in_flight,
                &ctx.engine.cache_stats(),
                IndexStats::default(),
                crate::metrics::KgStats::of(ctx.engine.graph(), ctx.engine.label_index()),
                None,
                Some(ctx.cluster.metrics_value()),
            );
            routed(Route::Metrics, 200, snap.to_compact_string())
        }
        ("POST", "/search") => handle_search(req, ctx),
        ("POST", "/search/batch") => handle_batch(req, ctx),
        ("POST", "/docs") => handle_insert(req, ctx),
        ("POST", "/admin/snapshot") => routed(
            Route::Admin,
            400,
            error_body(400, "snapshots are per-shard; POST /v1/admin/snapshot to a shard directly"),
        ),
        ("DELETE", path) if path.strip_prefix("/docs/").is_some() => handle_delete(path, ctx),
        (_, path) if is_api_path(path) => routed(
            Route::Other,
            405,
            error_body(405, &format!("method {} not allowed here", req.method)),
        ),
        (_, path) => routed(Route::Other, 404, error_body(404, &format!("no route {path}"))),
    }
}

/// Router `/healthz`: up as long as the router itself runs, `degraded`
/// when any shard group has no healthy replica. Always `200` with
/// `"status": "ok"` unless degraded — same contract as the standalone
/// server, with the topology view replacing the index gauges.
fn handle_healthz(ctx: &ClusterContext<'_, '_>) -> Routed {
    let num = |n: u64| Value::Number(Number::from_i128(n as i128));
    let down = ctx.cluster.groups_down();
    let degraded = !down.is_empty();
    let status = if degraded { "degraded" } else { "ok" };
    let body = Value::Object(vec![
        ("status".into(), Value::String(status.into())),
        ("degraded".into(), Value::Bool(degraded)),
        ("backend".into(), Value::String("router".into())),
        ("groups".into(), num(ctx.cluster.groups().len() as u64)),
        ("groups_down".into(), num(down.len() as u64)),
        (
            "version".into(),
            Value::String(env!("CARGO_PKG_VERSION").into()),
        ),
    ]);
    routed(Route::Healthz, 200, body.to_compact_string())
}

fn handle_search(req: &HttpRequest, ctx: &ClusterContext<'_, '_>) -> Routed {
    let request = match parse_body(&req.body).and_then(|v| request_from_value(&v)) {
        Ok(r) => apply_deadline(r, ctx.config.default_timeout_ms, ctx.accepted),
        Err(e) => return e.into_routed(Route::Search),
    };
    let (value, status) = cluster_execute(&request, ctx);
    routed(Route::Search, status, value.to_compact_string())
}

/// `POST /search/batch` in router mode: requests run sequentially, each
/// through the full scatter-gather; the batch answers `200` as long as
/// it parsed (per-response `degraded` / `timed_out` flags tell the
/// rest), matching the standalone batch contract.
fn handle_batch(req: &HttpRequest, ctx: &ClusterContext<'_, '_>) -> Routed {
    let v = match parse_body(&req.body) {
        Ok(v) => v,
        Err(e) => return e.into_routed(Route::Batch),
    };
    let Some(items) = v.as_object().and_then(|obj| {
        (obj.len() == 1).then_some(())?;
        v.get("requests").and_then(|r| r.as_array())
    }) else {
        return routed(
            Route::Batch,
            400,
            error_body(400, "batch body must be {\"requests\": [...]}"),
        );
    };
    let start = Instant::now();
    let mut responses = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let request = match request_from_value(item) {
            Ok(r) => apply_deadline(r, ctx.config.default_timeout_ms, ctx.accepted),
            Err(e) => {
                return routed(
                    Route::Batch,
                    400,
                    error_body(400, &format!("requests[{i}]: {}", match e {
                        crate::router::RequestError::BadRequest(m)
                        | crate::router::RequestError::Internal(m) => m,
                    })),
                )
            }
        };
        let (value, _status) = cluster_execute(&request, ctx);
        responses.push(value);
    }
    let mut timer = newslink_util::ComponentTimer::new();
    timer.record("batch", start.elapsed());
    let body = Value::Object(vec![
        ("responses".into(), Value::Array(responses)),
        ("timer".into(), timer.serialize_value()),
    ]);
    routed(Route::Batch, 200, body.to_compact_string())
}

/// `POST /docs` in router mode: hash the text to its owning group and
/// relay to that group's *primary* — the only replica with the group's
/// WAL. A dead primary is a `503` (writes do not fail over; see
/// [`Cluster::call_primary`]).
fn handle_insert(req: &HttpRequest, ctx: &ClusterContext<'_, '_>) -> Routed {
    let text = match parse_insert_body(&req.body) {
        Ok(t) => t,
        Err(e) => return e.into_routed(Route::Docs),
    };
    let group = ctx.cluster.route_insert(&text);
    relay_write(ctx, group, "POST", "/v1/docs", &req.body)
}

/// `DELETE /docs/<id>` in router mode: the id names its owning group
/// (`id % groups`); relay to that group's primary. A `404` from the
/// shard passes through — it is an answer, not a failure.
fn handle_delete(path: &str, ctx: &ClusterContext<'_, '_>) -> Routed {
    let raw = path.strip_prefix("/docs/").unwrap_or_default();
    let Ok(id) = raw.parse::<u32>() else {
        return routed(Route::Docs, 400, error_body(400, &format!("bad document id {raw:?}")));
    };
    let group = ctx.cluster.route_doc(id);
    relay_write(ctx, group, "DELETE", &format!("/v1/docs/{id}"), "")
}

fn relay_write(
    ctx: &ClusterContext<'_, '_>,
    group: usize,
    method: &str,
    path: &str,
    body: &str,
) -> Routed {
    let deadline = write_deadline(ctx);
    match ctx.cluster.call_primary(group, method, path, body, deadline) {
        Ok((status, body)) => routed(Route::Docs, status, annotate_group(body, group)),
        Err(_) => routed(
            Route::Docs,
            503,
            error_body(
                503,
                &format!("shard group {group} primary unreachable; write not applied"),
            ),
        ),
    }
}

/// Tag a relayed JSON-object response with the group that served it.
fn annotate_group(body: String, group: usize) -> String {
    match serde_json::from_str::<Value>(&body) {
        Ok(Value::Object(mut pairs)) => {
            pairs.push((
                "shard_group".into(),
                Value::Number(Number::from_i128(group as i128)),
            ));
            Value::Object(pairs).to_compact_string()
        }
        _ => body,
    }
}

/// The deadline a relayed write propagates: the request's remaining
/// accept-anchored budget when the server has one.
fn write_deadline(ctx: &ClusterContext<'_, '_>) -> Option<Instant> {
    ctx.config
        .default_timeout_ms
        .map(|ms| ctx.accepted + Duration::from_millis(ms))
}

/// What the gather produced, before it becomes a response body.
struct GatherOutcome {
    results: Vec<SearchResult>,
    explanations: Vec<Explanation>,
    prune: PruneStats,
    timed_out: bool,
    groups_down: usize,
}

/// Scatter the same body to every still-alive group concurrently (one
/// thread per group — the calls are blocking I/O), parse each `200`
/// answer, and mark groups that failed any step as dead.
fn scatter<T: Deserialize>(
    cluster: &Cluster,
    alive: &mut [bool],
    path: &str,
    body: &str,
    deadline: Option<Instant>,
) -> Vec<Option<T>> {
    let n = cluster.groups().len();
    let mut raw: Vec<Option<String>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<(usize, _)> = (0..n)
            .filter(|&i| alive[i])
            .map(|i| {
                let handle =
                    scope.spawn(move || cluster.call_group(i, "POST", path, body, deadline).ok());
                (i, handle)
            })
            .collect();
        for (i, handle) in handles {
            raw[i] = handle.join().ok().flatten().map(|(_, body)| body);
        }
    });
    raw.into_iter()
        .enumerate()
        .map(|(i, body)| {
            let parsed = body.and_then(|b| serde_json::from_str::<T>(&b).ok());
            if parsed.is_none() {
                alive[i] = false;
            }
            parsed
        })
        .collect()
}

/// Execute one search request across the cluster: analyze locally,
/// scatter the three protocol phases, merge. Returns the response body
/// and its status (`503` when degraded or timed out, else `200`).
fn cluster_execute(request: &SearchRequest, ctx: &ClusterContext<'_, '_>) -> (Value, u16) {
    let config = ctx.engine.config();
    let deadline = request
        .timeout_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let gather_start = Instant::now();
    let analysis = ctx.engine.analyze_query(&request.query);
    let beta = request.beta.unwrap_or(config.beta).clamp(0.0, 1.0);
    let beta_bits = f64_bits(beta);
    let n = ctx.cluster.groups().len();
    let mut alive = vec![true; n];
    let mut prune = PruneStats::default();

    // Deadline gate between analysis and the scatter, mirroring the
    // in-process gate between NLP/NE and NS.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        let outcome = GatherOutcome {
            results: Vec::new(),
            explanations: Vec::new(),
            prune,
            timed_out: true,
            groups_down: 0,
        };
        return respond(ctx, analysis, outcome, gather_start);
    }

    // Phase 1: shard-local statistics, summed into the global overlay.
    let stats_request = StatsRequest {
        bow_terms: analysis.terms.clone(),
        bon_terms: analysis.bon_terms.clone(),
    };
    // `to_string` is infallible for these plain internal-protocol
    // structs (string keys, no fallible Serialize impls); the
    // `unwrap_or_default` here and below keeps the socket path free of
    // panics without introducing an error branch that cannot fire — an
    // empty body would 400 at the shard and count as a failed call.
    let body = serde_json::to_string(&stats_request).unwrap_or_default();
    let stats: Vec<Option<StatsResponse>> =
        scatter(ctx.cluster, &mut alive, "/internal/stats", &body, deadline);

    let mut bow = OverlayWire {
        terms: analysis.terms.clone(),
        docs: 0,
        total_len: 0,
        df: vec![0; analysis.terms.len()],
        norm_bits: f64_bits(1.0),
    };
    let mut bon = OverlayWire {
        terms: analysis.bon_terms.clone(),
        docs: 0,
        total_len: 0,
        df: vec![0; analysis.bon_terms.len()],
        norm_bits: f64_bits(1.0),
    };
    for s in stats.into_iter().flatten() {
        for (side, wire) in [(&mut bow, s.bow), (&mut bon, s.bon)] {
            side.docs += wire.docs;
            side.total_len += wire.total_len;
            if wire.df.len() == side.df.len() {
                for (slot, df) in side.df.iter_mut().zip(&wire.df) {
                    *slot += df;
                }
            }
        }
    }

    if alive.iter().all(|a| !a) {
        let outcome = GatherOutcome {
            results: Vec::new(),
            explanations: Vec::new(),
            prune,
            timed_out: false,
            groups_down: n,
        };
        return respond(ctx, analysis, outcome, gather_start);
    }

    // Phase 2: normalization divisors — each side's global maximum raw
    // score is the max over shard maxima.
    if config.normalize_scores {
        let top1_request = Top1Request {
            beta_bits,
            bow: bow.clone(),
            bon: bon.clone(),
        };
        let body = serde_json::to_string(&top1_request).unwrap_or_default();
        let tops: Vec<Option<Top1Response>> =
            scatter(ctx.cluster, &mut alive, "/internal/top1", &body, deadline);
        let (mut bow_max, mut bon_max) = (0.0f64, 0.0f64);
        for t in tops.into_iter().flatten() {
            bow_max = bow_max.max(f64_from_bits(t.bow_max_bits));
            bon_max = bon_max.max(f64_from_bits(t.bon_max_bits));
            prune.add(&t.prune);
        }
        if bow_max > 0.0 {
            bow.norm_bits = f64_bits(bow_max);
        }
        if bon_max > 0.0 {
            bon.norm_bits = f64_bits(bon_max);
        }
    }

    // Phase 3: the pruned blended top-k under the full overlay.
    let remaining_ms =
        deadline.map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64);
    let search_request = ShardSearchRequest {
        query: request.query.clone(),
        k: request.k,
        beta_bits,
        floor_bits: f64_bits(f64::NEG_INFINITY),
        budget_ms: remaining_ms,
        explain: request.explain,
        bow,
        bon,
    };
    let body = serde_json::to_string(&search_request).unwrap_or_default();
    let parts: Vec<Option<ShardSearchResponse>> =
        scatter(ctx.cluster, &mut alive, "/internal/search", &body, deadline);

    // Merge: sort the union by ascending global id, then push through
    // one TopK — ties resolve toward lower ids, exactly like the
    // in-process per-segment-then-merge structure.
    let mut union: Vec<(f64, (DocId, f64, f64))> = Vec::new();
    let mut shard_explanations: Vec<Explanation> = Vec::new();
    let mut timed_out = false;
    for part in parts.into_iter().flatten() {
        prune.add(&part.prune);
        timed_out |= part.timed_out;
        shard_explanations.extend(part.explanations);
        for h in part.hits {
            union.push((
                f64_from_bits(h.score_bits),
                (
                    DocId(h.doc),
                    f64_from_bits(h.bow_bits),
                    f64_from_bits(h.bon_bits),
                ),
            ));
        }
    }
    union.sort_by_key(|&(_, (doc, _, _))| doc.0);
    let mut merged: TopK<(DocId, f64, f64)> = TopK::new(request.k);
    for (score, item) in union {
        merged.push(score, item);
    }
    let results: Vec<SearchResult> = merged
        .into_sorted()
        .into_iter()
        .map(|(score, (doc, bow, bon))| SearchResult { doc, score, bow, bon })
        .collect();
    let explanations = if request.explain.is_some() && !timed_out {
        results
            .iter()
            .filter_map(|r| shard_explanations.iter().find(|e| e.doc == r.doc).cloned())
            .collect()
    } else {
        Vec::new()
    };

    ctx.metrics.observe_pruning(&prune);
    let outcome = GatherOutcome {
        results,
        explanations,
        prune,
        timed_out,
        groups_down: alive.iter().filter(|a| !**a).count(),
    };
    respond(ctx, analysis, outcome, gather_start)
}

/// Assemble the wire response: the standalone `SearchResponse` shape
/// plus the router's `degraded` / `groups_down` fields.
fn respond(
    ctx: &ClusterContext<'_, '_>,
    analysis: newslink_core::QueryAnalysis,
    outcome: GatherOutcome,
    gather_start: Instant,
) -> (Value, u16) {
    let degraded = outcome.groups_down > 0;
    if degraded {
        ctx.cluster.note_degraded();
    }
    let mut timer = analysis.timer;
    timer.record("gather", gather_start.elapsed());
    let response = SearchResponse {
        results: outcome.results,
        embedding: analysis.embedding,
        timer,
        cache: analysis.cache,
        explanations: outcome.explanations,
        timed_out: outcome.timed_out,
        prune: outcome.prune,
        parallel: ParallelStats::default(),
    };
    let mut value = response.serialize_value();
    if let Value::Object(pairs) = &mut value {
        pairs.push(("degraded".into(), Value::Bool(degraded)));
        pairs.push((
            "groups_down".into(),
            Value::Number(Number::from_i128(outcome.groups_down as i128)),
        ));
    }
    let status = if degraded || outcome.timed_out { 503 } else { 200 };
    (value, status)
}
