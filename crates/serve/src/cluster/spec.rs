//! Parsing and validation of the `--shards` topology spec.
//!
//! The spec is a comma-separated list of shard groups; within a group,
//! `|` separates replicas: `"a:7001|a:7002,b:7003|b:7004"` is two
//! groups of two replicas each. The first replica of a group is its
//! *primary* — the only member that accepts writes. Validation is
//! strict and typed: an empty group, an unresolvable address or a
//! duplicate address is a configuration bug the operator should see at
//! startup, not a runtime surprise.

use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};

/// Why a `--shards` spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec contains no groups at all.
    Empty,
    /// Group `group` (zero-based) has no replicas.
    EmptyGroup {
        /// Zero-based group position in the spec.
        group: usize,
    },
    /// A replica address failed to parse or resolve.
    BadAddress {
        /// Zero-based group position in the spec.
        group: usize,
        /// The offending address text.
        addr: String,
    },
    /// The same address appears more than once (within or across
    /// groups) — a replica cannot serve two shards.
    DuplicateAddress {
        /// The repeated (resolved) address.
        addr: SocketAddr,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "--shards spec is empty"),
            Self::EmptyGroup { group } => {
                write!(f, "shard group {group} has no replicas")
            }
            Self::BadAddress { group, addr } => {
                write!(f, "shard group {group}: bad replica address {addr:?}")
            }
            Self::DuplicateAddress { addr } => {
                write!(f, "replica address {addr} listed more than once")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Resolve one replica address: a literal `host:port` first, then a
/// hostname lookup (`localhost:7001`).
fn resolve(text: &str) -> Option<SocketAddr> {
    if let Ok(addr) = text.parse::<SocketAddr>() {
        return Some(addr);
    }
    text.to_socket_addrs().ok()?.next()
}

/// Parse a `--shards` spec into replica sets, one `Vec<SocketAddr>` per
/// shard group (primary first, in listed order).
pub fn parse_shards(spec: &str) -> Result<Vec<Vec<SocketAddr>>, SpecError> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Err(SpecError::Empty);
    }
    let mut seen: Vec<SocketAddr> = Vec::new();
    let mut groups = Vec::new();
    for (gi, group_text) in spec.split(',').enumerate() {
        let mut replicas = Vec::new();
        for addr_text in group_text.split('|') {
            let addr_text = addr_text.trim();
            if addr_text.is_empty() {
                continue;
            }
            let addr = resolve(addr_text).ok_or_else(|| SpecError::BadAddress {
                group: gi,
                addr: addr_text.to_string(),
            })?;
            if seen.contains(&addr) {
                return Err(SpecError::DuplicateAddress { addr });
            }
            seen.push(addr);
            replicas.push(addr);
        }
        if replicas.is_empty() {
            return Err(SpecError::EmptyGroup { group: gi });
        }
        groups.push(replicas);
    }
    Ok(groups)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_groups_and_replicas() {
        let groups = parse_shards("127.0.0.1:7001|127.0.0.1:7002,127.0.0.1:7003").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2, "two replicas in group 0");
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[0][0], "127.0.0.1:7001".parse().unwrap(), "primary first");
    }

    #[test]
    fn resolves_hostnames() {
        let groups = parse_shards("localhost:7001").unwrap();
        assert_eq!(groups[0][0].port(), 7001);
    }

    #[test]
    fn tolerates_whitespace() {
        let groups = parse_shards(" 127.0.0.1:7001 | 127.0.0.1:7002 , 127.0.0.1:7003 ").unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn rejects_empty_specs_and_groups() {
        assert_eq!(parse_shards(""), Err(SpecError::Empty));
        assert_eq!(parse_shards("   "), Err(SpecError::Empty));
        assert_eq!(
            parse_shards("127.0.0.1:7001,,127.0.0.1:7002"),
            Err(SpecError::EmptyGroup { group: 1 })
        );
        assert_eq!(
            parse_shards("127.0.0.1:7001,|"),
            Err(SpecError::EmptyGroup { group: 1 })
        );
    }

    #[test]
    fn rejects_unparsable_addresses() {
        let err = parse_shards("127.0.0.1:7001,not an address").unwrap_err();
        assert_eq!(
            err,
            SpecError::BadAddress {
                group: 1,
                addr: "not an address".into()
            }
        );
        assert!(matches!(
            parse_shards("127.0.0.1:notaport"),
            Err(SpecError::BadAddress { group: 0, .. })
        ));
        // The error names the group and the text.
        assert!(err.to_string().contains("group 1"));
        assert!(err.to_string().contains("not an address"));
    }

    #[test]
    fn rejects_duplicate_addresses() {
        assert!(matches!(
            parse_shards("127.0.0.1:7001|127.0.0.1:7001"),
            Err(SpecError::DuplicateAddress { .. })
        ));
        assert!(matches!(
            parse_shards("127.0.0.1:7001,127.0.0.1:7001"),
            Err(SpecError::DuplicateAddress { addr }) if addr.port() == 7001
        ));
    }
}
