//! The cluster layer: a scatter-gather shard router with health-checked
//! replica failover and a budgeted resilience layer.
//!
//! Topology comes from [`spec::parse_shards`]: shard *groups* partition
//! the corpus by document id (`id % groups`), and each group is a
//! replica set — identical copies of that shard's index, primary first.
//! Searches scatter to **one healthy replica per group** and gather
//! through the same global-stats overlay + top-k merge the in-process
//! multi-segment search uses, so blended scores are bit-identical to a
//! single process searching the union (see [`proto`] for the wire
//! contract and `DESIGN.md` §6i for the proof sketch). Writes hash to
//! their owning group and go to its primary only — the replica set is
//! read scale-out, not write redundancy.
//!
//! Health: a background prober (`probe_loop`) GETs every replica's
//! `/healthz` on a configurable cadence, and every data-path call
//! updates the same flag — a failed scatter marks the replica unhealthy
//! and fails over to the next one *within the same request*. A group
//! with no reachable replica at all makes the response *degraded*: the
//! router answers `503` with the partial results it could gather and
//! `"degraded": true`, so a load balancer sheds while clients still see
//! what the healthy shards found.
//!
//! Resilience (see [`resilience`] and `DESIGN.md` §6k): every replica
//! carries a circuit breaker that `call_group` consults before dialing
//! (an open breaker is skipped without spending a connect timeout), all
//! extra attempts — failovers and hedges — are paid for from a shared
//! token-bucket retry budget so a brown-out can never become a retry
//! storm, sequential failovers are spaced by decorrelated jitter, and
//! reads can optionally *hedge*: if the chosen replica hasn't answered
//! within `--hedge-after-ms`, a second replica is raced first-success-
//! wins, with the loser reaped at its own read deadline.

pub mod client;
pub mod proto;
pub mod resilience;
pub mod spec;

mod gather;

pub use gather::{dispatch_cluster, ClusterContext};
pub use resilience::{BreakerState, CircuitBreaker, FlagError, ResilienceConfig, RetryBudget};
pub use spec::{parse_shards, SpecError};

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use newslink_util::rng::DetRng;
use newslink_util::{Histogram, ShutdownFlag};
use parking_lot::Mutex;
use serde::{Number, Serialize, Value};

use client::ReplicaClient;
use resilience::DecorrelatedJitter;

/// Per-probe deadline: a health check must be cheap and decisive. This
/// also bounds how long a black-holed replica can hold the prober.
const PROBE_BUDGET_MS: u64 = 250;

/// One replica of one shard group: its pooled client, circuit breaker,
/// and health and traffic counters.
#[derive(Debug)]
pub struct Replica {
    client: ReplicaClient,
    /// Start optimistic: the first failed call or probe flips it.
    healthy: AtomicBool,
    breaker: CircuitBreaker,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    /// Probe failures since the last probe success — compared against
    /// `ResilienceConfig::probe_failures` before health flips.
    consecutive_probe_failures: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl Replica {
    fn new(addr: SocketAddr, cfg: &ResilienceConfig) -> Self {
        Self {
            client: ReplicaClient::new(addr),
            healthy: AtomicBool::new(true),
            breaker: CircuitBreaker::from_config(cfg),
            probes: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            consecutive_probe_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The replica's address.
    pub fn addr(&self) -> SocketAddr {
        self.client.addr()
    }

    /// Last known health (from the prober or the data path).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// The replica's circuit breaker (read-only outside the cluster).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Total calls attempted against this replica.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Record a data-path outcome on health flag and breaker alike.
    fn note_outcome(&self, ok: bool) {
        self.healthy.store(ok, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.breaker.record(ok, Instant::now());
    }
}

/// One shard group: its replicas (primary first) plus gather-side
/// latency and failover counters. Replicas are `Arc`'d so hedge
/// attempts can run on detached threads and outlive a reaped loser.
#[derive(Debug)]
pub struct ShardGroup {
    replicas: Vec<Arc<Replica>>,
    latency_us: Mutex<Histogram>,
    failovers: AtomicU64,
}

impl ShardGroup {
    /// The group's replicas, primary first.
    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.replicas
    }

    /// Whether any replica is currently believed healthy.
    pub fn has_healthy_replica(&self) -> bool {
        self.replicas.iter().any(|r| r.is_healthy())
    }
}

/// The error a scatter sees when a whole group is unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDown;

/// The full cluster topology plus its live health/traffic state.
#[derive(Debug)]
pub struct Cluster {
    groups: Vec<ShardGroup>,
    config: ResilienceConfig,
    budget: RetryBudget,
    degraded_responses: AtomicU64,
    probe_rounds: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    /// Per-call counter seeding each call's jitter stream.
    call_seq: AtomicU64,
}

impl Cluster {
    /// Build the cluster from parsed replica sets (see
    /// [`spec::parse_shards`]) with default resilience settings.
    pub fn new(groups: Vec<Vec<SocketAddr>>) -> Self {
        Self::with_config(groups, ResilienceConfig::default())
    }

    /// Build the cluster with explicit resilience settings.
    pub fn with_config(groups: Vec<Vec<SocketAddr>>, config: ResilienceConfig) -> Self {
        Self {
            groups: groups
                .into_iter()
                .map(|addrs| ShardGroup {
                    replicas: addrs
                        .into_iter()
                        .map(|a| Arc::new(Replica::new(a, &config)))
                        .collect(),
                    latency_us: Mutex::new(Histogram::new()),
                    failovers: AtomicU64::new(0),
                })
                .collect(),
            budget: RetryBudget::from_config(&config),
            config,
            degraded_responses: AtomicU64::new(0),
            probe_rounds: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            call_seq: AtomicU64::new(0),
        }
    }

    /// The resilience settings this cluster runs under.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The shared retry/hedge token bucket.
    pub fn budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// The shard groups, in spec order.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// Indices of groups with no healthy replica (the degraded set).
    pub fn groups_down(&self) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.has_healthy_replica())
            .map(|(i, _)| i)
            .collect()
    }

    /// Count one degraded (partial-results) response.
    pub(crate) fn note_degraded(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// The owning group of a document id (id-hash routing: shard `s`
    /// holds documents with `id % groups == s`).
    pub fn route_doc(&self, id: u32) -> usize {
        id as usize % self.groups.len().max(1)
    }

    /// The owning group of a new document: a stable content hash, so
    /// re-submitting the same text lands on the same shard.
    pub fn route_insert(&self, text: &str) -> usize {
        (fnv1a64(text.as_bytes()) % self.groups.len().max(1) as u64) as usize
    }

    /// Candidate order for a read: healthy replicas first (in listed
    /// order), then the unhealthy ones as a last resort — a replica the
    /// prober wrote off may have just come back, and trying it beats
    /// refusing the query. Open breakers are *not* filtered here:
    /// admission is checked at attempt time, so a half-open trial slot
    /// is never consumed for a replica that is never actually dialed.
    fn candidates(&self, group: usize) -> Vec<Arc<Replica>> {
        let g = &self.groups[group];
        g.replicas
            .iter()
            .filter(|r| r.is_healthy())
            .chain(g.replicas.iter().filter(|r| !r.is_healthy()))
            .cloned()
            .collect()
    }

    /// Advance `cursor` to the next breaker-admitted candidate.
    fn next_admitted(candidates: &[Arc<Replica>], cursor: &mut usize) -> Option<Arc<Replica>> {
        while *cursor < candidates.len() {
            let r = Arc::clone(&candidates[*cursor]);
            *cursor += 1;
            if r.breaker.admit(Instant::now()) {
                return Some(r);
            }
        }
        None
    }

    /// Call one group with failover, breaker admission, the shared
    /// retry budget, and (when enabled) hedging. Every attempt past the
    /// first — failover or hedge — must be paid for from the budget;
    /// when the bucket is dry the group is reported down rather than
    /// amplifying a brown-out. Any non-200 answer or transport error
    /// marks the replica unhealthy (flag + breaker) and moves on;
    /// success marks it healthy and records gather latency.
    pub fn call_group(
        &self,
        group: usize,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> Result<(u16, String), GroupDown> {
        let candidates = self.candidates(group);
        let start = Instant::now();
        let result = match self.config.hedge_after_ms {
            Some(hedge_ms) => self.call_group_hedged(group, &candidates, method, path, body, deadline, hedge_ms),
            None => self.call_group_sequential(group, &candidates, method, path, body, deadline),
        };
        if result.is_ok() {
            self.groups[group].latency_us.lock().record_micros(start.elapsed());
        }
        result
    }

    /// The non-hedged read path: one attempt at a time on the caller's
    /// thread (keeping the pooled-client fast path allocation-free),
    /// decorrelated-jitter sleeps between budget-paid failovers.
    fn call_group_sequential(
        &self,
        group: usize,
        candidates: &[Arc<Replica>],
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> Result<(u16, String), GroupDown> {
        let g = &self.groups[group];
        self.budget.deposit();
        let mut jitter = self.fresh_jitter();
        let mut cursor = 0;
        let mut attempt = 0;
        while let Some(r) = Self::next_admitted(candidates, &mut cursor) {
            if attempt > 0 {
                if !self.budget.try_spend() {
                    break;
                }
                g.failovers.fetch_add(1, Ordering::Relaxed);
                Self::backoff(&mut jitter, deadline);
            }
            attempt += 1;
            r.requests.fetch_add(1, Ordering::Relaxed);
            match r.client.call(method, path, body, deadline) {
                Ok((200, body)) => {
                    r.note_outcome(true);
                    return Ok((200, body));
                }
                Ok(_) | Err(_) => r.note_outcome(false),
            }
        }
        Err(GroupDown)
    }

    /// The hedged read path: attempts run on detached threads racing
    /// into a channel, first 200 wins. If the lead attempt hasn't
    /// answered by `hedge_ms`, one budget-paid hedge is launched
    /// against the next admitted replica; failures trigger budget-paid
    /// failover respawns. Losing attempts are not joined — each dies at
    /// its own read deadline and its outcome still lands on the
    /// replica's breaker/health via the `Arc`.
    #[allow(clippy::too_many_arguments)]
    fn call_group_hedged(
        &self,
        group: usize,
        candidates: &[Arc<Replica>],
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
        hedge_ms: u64,
    ) -> Result<(u16, String), GroupDown> {
        let g = &self.groups[group];
        self.budget.deposit();
        let start = Instant::now();
        let overall = deadline.unwrap_or(start + client::DEFAULT_CALL_BUDGET);
        let hedge_at = start + Duration::from_millis(hedge_ms);
        let (tx, rx) = mpsc::channel::<(usize, Option<String>)>();
        let mut cursor = 0;
        let mut next_no = 0usize;
        let mut hedge_no: Option<usize> = None;
        let mut outstanding = 0usize;
        let spawn = |r: Arc<Replica>, no: usize| {
            let (m, p, b) = (method.to_string(), path.to_string(), body.to_string());
            let tx = tx.clone();
            std::thread::spawn(move || {
                r.requests.fetch_add(1, Ordering::Relaxed);
                let res = r.client.call(&m, &p, &b, Some(overall));
                let won = matches!(&res, Ok((200, _)));
                r.note_outcome(won);
                let body = if let Ok((200, body)) = res { Some(body) } else { None };
                let _ = tx.send((no, body));
            });
        };
        match Self::next_admitted(candidates, &mut cursor) {
            Some(r) => {
                spawn(r, next_no);
                next_no += 1;
                outstanding += 1;
            }
            None => return Err(GroupDown),
        }
        loop {
            let now = Instant::now();
            if now >= overall {
                return Err(GroupDown);
            }
            let wait_until = if hedge_no.is_none() && now < hedge_at {
                hedge_at.min(overall)
            } else {
                overall
            };
            match rx.recv_timeout(wait_until.saturating_duration_since(now)) {
                Ok((no, Some(body))) => {
                    if hedge_no == Some(no) {
                        self.hedges_won.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok((200, body));
                }
                Ok((_, None)) => {
                    outstanding -= 1;
                    // Failover: respawn on the next admitted replica,
                    // paid from the budget like any extra attempt.
                    if let Some(r) = Self::next_admitted(candidates, &mut cursor) {
                        if self.budget.try_spend() {
                            g.failovers.fetch_add(1, Ordering::Relaxed);
                            spawn(r, next_no);
                            next_no += 1;
                            outstanding += 1;
                        }
                    }
                    if outstanding == 0 {
                        return Err(GroupDown);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if hedge_no.is_none() && Instant::now() >= hedge_at {
                        // The hedge moment: race one more replica if the
                        // budget allows. Mark the moment spent either
                        // way so a dry budget doesn't retrigger.
                        if let Some(r) = Self::next_admitted(candidates, &mut cursor) {
                            if self.budget.try_spend() {
                                self.hedges_launched.fetch_add(1, Ordering::Relaxed);
                                hedge_no = Some(next_no);
                                spawn(r, next_no);
                                next_no += 1;
                                outstanding += 1;
                            } else {
                                hedge_no = Some(usize::MAX);
                            }
                        } else {
                            hedge_no = Some(usize::MAX);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(GroupDown),
            }
        }
    }

    /// A per-call deterministic jitter stream.
    fn fresh_jitter(&self) -> DecorrelatedJitter {
        let call = self.call_seq.fetch_add(1, Ordering::Relaxed);
        DecorrelatedJitter::new(
            self.config.backoff_base_ms,
            self.config.backoff_cap_ms,
            DetRng::new(self.config.seed).fork(call),
        )
    }

    /// Sleep one backoff step, never past half the remaining deadline.
    fn backoff(jitter: &mut DecorrelatedJitter, deadline: Option<Instant>) {
        let mut delay = jitter.next_delay();
        if let Some(d) = deadline {
            let left = d.saturating_duration_since(Instant::now());
            delay = delay.min(left / 2);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Call a group's *primary* only — the write path. Writes must not
    /// fail over (a secondary does not own the group's WAL, so routing
    /// an insert there would fork the replica set) and never hedge: a
    /// raced duplicate write is a duplicate document. An open breaker
    /// fails fast instead of dialing a known-dead primary. The caller
    /// relays whatever status the primary answered (a `404` from a
    /// delete is an answer, not a failure).
    pub fn call_primary(
        &self,
        group: usize,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> io::Result<(u16, String)> {
        let r = &self.groups[group].replicas[0];
        self.budget.deposit();
        if !r.breaker.admit(Instant::now()) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "primary circuit breaker open",
            ));
        }
        r.requests.fetch_add(1, Ordering::Relaxed);
        match r.client.call(method, path, body, deadline) {
            Ok(resp) => {
                r.healthy.store(true, Ordering::Relaxed);
                r.breaker.record(true, Instant::now());
                Ok(resp)
            }
            Err(e) => {
                r.note_outcome(false);
                Err(e)
            }
        }
    }

    /// One probe sweep: GET every replica's `/healthz` under a short
    /// explicit deadline (so a black-holed replica cannot stall the
    /// prober) and update its health flag and breaker. Health only
    /// flips down after `probe_failures` *consecutive* failures; a
    /// success resets the streak and — acting as the breaker's
    /// half-open trial — closes an open breaker.
    pub fn probe_once(&self) {
        let threshold = u64::from(self.config.probe_failures.max(1));
        for g in &self.groups {
            for r in &g.replicas {
                r.probes.fetch_add(1, Ordering::Relaxed);
                let deadline = Instant::now() + Duration::from_millis(PROBE_BUDGET_MS);
                let up = matches!(
                    r.client.call("GET", "/healthz", "", Some(deadline)),
                    Ok((200, _))
                );
                r.breaker.record(up, Instant::now());
                if up {
                    r.consecutive_probe_failures.store(0, Ordering::Relaxed);
                    r.healthy.store(true, Ordering::Relaxed);
                } else {
                    r.probe_failures.fetch_add(1, Ordering::Relaxed);
                    let streak = r.consecutive_probe_failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if streak >= threshold {
                        r.healthy.store(false, Ordering::Relaxed);
                    }
                }
            }
        }
        self.probe_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Probe on the configured cadence until `stop` triggers. Sleeps in
    /// short slices so shutdown is prompt.
    pub fn probe_loop(&self, stop: &ShutdownFlag) {
        let interval = self.config.probe_interval_ms.max(10);
        while !stop.is_triggered() {
            self.probe_once();
            let mut slept = 0;
            while slept < interval && !stop.is_triggered() {
                let slice = (interval - slept).min(50);
                std::thread::sleep(Duration::from_millis(slice));
                slept += slice;
            }
        }
    }

    /// The `/metrics` cluster section: per-group gather latency,
    /// failovers and per-replica health/breaker/traffic counters, the
    /// cluster-wide degraded-response and probe-round totals, and the
    /// resilience section (hedges, retry-budget flow).
    pub fn metrics_value(&self) -> Value {
        let num = |n: u64| Value::Number(Number::from_i128(n as i128));
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let replicas = g
                    .replicas
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("addr".into(), Value::String(r.addr().to_string())),
                            ("healthy".into(), Value::Bool(r.is_healthy())),
                            (
                                "breaker".into(),
                                Value::String(r.breaker.state().as_str().to_string()),
                            ),
                            ("breaker_opens".into(), num(r.breaker.opens())),
                            ("probes".into(), num(r.probes.load(Ordering::Relaxed))),
                            (
                                "probe_failures".into(),
                                num(r.probe_failures.load(Ordering::Relaxed)),
                            ),
                            ("requests".into(), num(r.requests.load(Ordering::Relaxed))),
                            ("errors".into(), num(r.errors.load(Ordering::Relaxed))),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("replicas".into(), Value::Array(replicas)),
                    ("healthy".into(), Value::Bool(g.has_healthy_replica())),
                    ("failovers".into(), num(g.failovers.load(Ordering::Relaxed))),
                    (
                        "gather_latency_us".into(),
                        g.latency_us.lock().serialize_value(),
                    ),
                ])
            })
            .collect();
        let resilience = Value::Object(vec![
            (
                "hedge_after_ms".into(),
                match self.config.hedge_after_ms {
                    Some(ms) => num(ms),
                    None => Value::Null,
                },
            ),
            ("hedges_launched".into(), num(self.hedges_launched.load(Ordering::Relaxed))),
            ("hedges_won".into(), num(self.hedges_won.load(Ordering::Relaxed))),
            ("primary_calls".into(), num(self.budget.deposits())),
            ("retries_spent".into(), num(self.budget.spent())),
            ("retries_denied".into(), num(self.budget.denied())),
            ("retry_tokens_milli".into(), num(self.budget.tokens_milli())),
        ]);
        Value::Object(vec![
            ("groups".into(), Value::Array(groups)),
            (
                "degraded_responses".into(),
                num(self.degraded_responses.load(Ordering::Relaxed)),
            ),
            ("probe_rounds".into(), num(self.probe_rounds.load(Ordering::Relaxed))),
            ("resilience".into(), resilience),
        ])
    }
}

/// FNV-1a, 64-bit: the insert-routing content hash. Deliberately
/// self-contained — the routing function is part of the wire contract
/// between router and shards, so it must not drift with a hasher crate.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        // Ports nothing listens on; these tests never hit the network
        // except where they expect failure.
        let groups = (0..n)
            .map(|i| vec![format!("127.0.0.1:{}", 1 + i).parse().unwrap()])
            .collect();
        Cluster::new(groups)
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let c = cluster(3);
        for id in 0..50u32 {
            assert_eq!(c.route_doc(id), id as usize % 3);
        }
        let g = c.route_insert("Some news text.");
        assert!(g < 3);
        assert_eq!(g, c.route_insert("Some news text."), "content hash is stable");
    }

    #[test]
    fn dead_group_fails_over_then_reports_down() {
        let c = Cluster::new(vec![vec![
            "127.0.0.1:1".parse().unwrap(),
            "127.0.0.1:2".parse().unwrap(),
        ]]);
        let deadline = Instant::now() + Duration::from_millis(300);
        let err = c.call_group(0, "GET", "/healthz", "", Some(deadline));
        assert_eq!(err, Err(GroupDown));
        // Both replicas were tried: one failover, both marked unhealthy.
        let g = &c.groups()[0];
        assert_eq!(g.failovers.load(Ordering::Relaxed), 1);
        assert!(!g.has_healthy_replica());
        assert_eq!(c.groups_down(), vec![0]);
        // The failover was paid for by the budget.
        assert_eq!(c.budget().spent(), 1);
    }

    #[test]
    fn exhausted_budget_stops_failover() {
        let cfg = ResilienceConfig {
            retry_budget: 0.0,
            retry_budget_cap: 0.0,
            ..ResilienceConfig::default()
        };
        let c = Cluster::with_config(
            vec![vec![
                "127.0.0.1:1".parse().unwrap(),
                "127.0.0.1:2".parse().unwrap(),
            ]],
            cfg,
        );
        let deadline = Instant::now() + Duration::from_millis(300);
        assert_eq!(c.call_group(0, "GET", "/healthz", "", Some(deadline)), Err(GroupDown));
        let g = &c.groups()[0];
        assert_eq!(g.failovers.load(Ordering::Relaxed), 0, "no token, no failover");
        assert_eq!(c.budget().denied(), 1);
        // Only the first replica was ever dialed.
        assert_eq!(g.replicas()[1].requests(), 0);
    }

    #[test]
    fn repeated_failures_open_the_breaker_and_stop_dialing() {
        let cfg = ResilienceConfig {
            breaker_window: 4,
            breaker_failures: 2,
            breaker_cooldown_ms: 60_000, // effectively never in this test
            ..ResilienceConfig::default()
        };
        let c = Cluster::with_config(vec![vec!["127.0.0.1:1".parse().unwrap()]], cfg);
        for _ in 0..2 {
            let deadline = Instant::now() + Duration::from_millis(200);
            let _ = c.call_group(0, "GET", "/healthz", "", Some(deadline));
        }
        let r = &c.groups()[0].replicas()[0];
        assert_eq!(r.breaker().state(), BreakerState::Open);
        let dialed = r.requests();
        // Subsequent calls are rejected without dialing.
        let deadline = Instant::now() + Duration::from_millis(200);
        assert_eq!(c.call_group(0, "GET", "/healthz", "", Some(deadline)), Err(GroupDown));
        assert_eq!(r.requests(), dialed, "open breaker spends no connect");
    }

    #[test]
    fn primary_breaker_fails_writes_fast() {
        let cfg = ResilienceConfig {
            breaker_window: 2,
            breaker_failures: 1,
            breaker_cooldown_ms: 60_000,
            ..ResilienceConfig::default()
        };
        let c = Cluster::with_config(vec![vec!["127.0.0.1:1".parse().unwrap()]], cfg);
        let deadline = Instant::now() + Duration::from_millis(200);
        assert!(c.call_primary(0, "POST", "/v1/docs", "{}", Some(deadline)).is_err());
        let t = Instant::now();
        let err = c
            .call_primary(0, "POST", "/v1/docs", "{}", Some(t + Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(t.elapsed() < Duration::from_millis(50), "failed fast, no dial");
    }

    #[test]
    fn metrics_value_has_the_expected_shape() {
        let c = cluster(2);
        let v = c.metrics_value();
        let groups = v.get("groups").and_then(|g| g.as_array()).unwrap();
        assert_eq!(groups.len(), 2);
        let replicas = groups[0].get("replicas").and_then(|r| r.as_array()).unwrap();
        assert_eq!(replicas.len(), 1);
        assert!(replicas[0].get("addr").unwrap().as_str().unwrap().contains("127.0.0.1"));
        assert_eq!(replicas[0].get("breaker").unwrap().as_str().unwrap(), "closed");
        assert!(v.get("degraded_responses").is_some());
        let res = v.get("resilience").unwrap();
        for key in [
            "hedges_launched",
            "hedges_won",
            "primary_calls",
            "retries_spent",
            "retries_denied",
        ] {
            assert!(res.get(key).is_some(), "missing resilience.{key}");
        }
    }
}
