//! The cluster layer: a scatter-gather shard router with health-checked
//! replica failover.
//!
//! Topology comes from [`spec::parse_shards`]: shard *groups* partition
//! the corpus by document id (`id % groups`), and each group is a
//! replica set — identical copies of that shard's index, primary first.
//! Searches scatter to **one healthy replica per group** and gather
//! through the same global-stats overlay + top-k merge the in-process
//! multi-segment search uses, so blended scores are bit-identical to a
//! single process searching the union (see [`proto`] for the wire
//! contract and `DESIGN.md` §6i for the proof sketch). Writes hash to
//! their owning group and go to its primary only — the replica set is
//! read scale-out, not write redundancy.
//!
//! Health: a background prober (`probe_loop`) GETs every replica's
//! `/healthz` on a fixed cadence, and every data-path call updates the
//! same flag — a failed scatter marks the replica unhealthy and fails
//! over to the next one *within the same request*. A group with no
//! reachable replica at all makes the response *degraded*: the router
//! answers `503` with the partial results it could gather and
//! `"degraded": true`, so a load balancer sheds while clients still see
//! what the healthy shards found.

pub mod client;
pub mod proto;
pub mod spec;

mod gather;

pub use gather::{dispatch_cluster, ClusterContext};
pub use spec::{parse_shards, SpecError};

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use newslink_util::{Histogram, ShutdownFlag};
use parking_lot::Mutex;
use serde::{Number, Serialize, Value};

use client::ReplicaClient;

/// How often the background prober sweeps every replica.
pub const PROBE_INTERVAL_MS: u64 = 500;

/// Per-probe deadline: a health check must be cheap and decisive.
const PROBE_BUDGET_MS: u64 = 250;

/// One replica of one shard group: its pooled client plus health and
/// traffic counters.
#[derive(Debug)]
pub struct Replica {
    client: ReplicaClient,
    /// Start optimistic: the first failed call or probe flips it.
    healthy: AtomicBool,
    probes: AtomicU64,
    probe_failures: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl Replica {
    fn new(addr: SocketAddr) -> Self {
        Self {
            client: ReplicaClient::new(addr),
            healthy: AtomicBool::new(true),
            probes: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// The replica's address.
    pub fn addr(&self) -> SocketAddr {
        self.client.addr()
    }

    /// Last known health (from the prober or the data path).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }
}

/// One shard group: its replicas (primary first) plus gather-side
/// latency and failover counters.
#[derive(Debug)]
pub struct ShardGroup {
    replicas: Vec<Replica>,
    latency_us: Mutex<Histogram>,
    failovers: AtomicU64,
}

impl ShardGroup {
    /// The group's replicas, primary first.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Whether any replica is currently believed healthy.
    pub fn has_healthy_replica(&self) -> bool {
        self.replicas.iter().any(Replica::is_healthy)
    }
}

/// The error a scatter sees when a whole group is unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDown;

/// The full cluster topology plus its live health/traffic state.
#[derive(Debug)]
pub struct Cluster {
    groups: Vec<ShardGroup>,
    degraded_responses: AtomicU64,
    probe_rounds: AtomicU64,
}

impl Cluster {
    /// Build the cluster from parsed replica sets (see
    /// [`spec::parse_shards`]).
    pub fn new(groups: Vec<Vec<SocketAddr>>) -> Self {
        Self {
            groups: groups
                .into_iter()
                .map(|addrs| ShardGroup {
                    replicas: addrs.into_iter().map(Replica::new).collect(),
                    latency_us: Mutex::new(Histogram::new()),
                    failovers: AtomicU64::new(0),
                })
                .collect(),
            degraded_responses: AtomicU64::new(0),
            probe_rounds: AtomicU64::new(0),
        }
    }

    /// The shard groups, in spec order.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// Indices of groups with no healthy replica (the degraded set).
    pub fn groups_down(&self) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.has_healthy_replica())
            .map(|(i, _)| i)
            .collect()
    }

    /// Count one degraded (partial-results) response.
    pub(crate) fn note_degraded(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// The owning group of a document id (id-hash routing: shard `s`
    /// holds documents with `id % groups == s`).
    pub fn route_doc(&self, id: u32) -> usize {
        id as usize % self.groups.len().max(1)
    }

    /// The owning group of a new document: a stable content hash, so
    /// re-submitting the same text lands on the same shard.
    pub fn route_insert(&self, text: &str) -> usize {
        (fnv1a64(text.as_bytes()) % self.groups.len().max(1) as u64) as usize
    }

    /// Call one group, failing over across replicas: healthy replicas
    /// first (in listed order), then the unhealthy ones as a last
    /// resort — a replica the prober wrote off may have just come back,
    /// and trying it beats refusing the query. Every attempt past the
    /// first counts as a failover. Any non-200 answer or transport
    /// error marks the replica unhealthy and moves on; success marks it
    /// healthy and records gather latency.
    pub fn call_group(
        &self,
        group: usize,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> Result<(u16, String), GroupDown> {
        let g = &self.groups[group];
        let healthy_first: Vec<&Replica> = g
            .replicas
            .iter()
            .filter(|r| r.is_healthy())
            .chain(g.replicas.iter().filter(|r| !r.is_healthy()))
            .collect();
        for (attempt, r) in healthy_first.into_iter().enumerate() {
            if attempt > 0 {
                g.failovers.fetch_add(1, Ordering::Relaxed);
            }
            r.requests.fetch_add(1, Ordering::Relaxed);
            let start = Instant::now();
            match r.client.call(method, path, body, deadline) {
                Ok((200, body)) => {
                    r.healthy.store(true, Ordering::Relaxed);
                    g.latency_us.lock().record_micros(start.elapsed());
                    return Ok((200, body));
                }
                Ok(_) | Err(_) => {
                    r.errors.fetch_add(1, Ordering::Relaxed);
                    r.healthy.store(false, Ordering::Relaxed);
                }
            }
        }
        Err(GroupDown)
    }

    /// Call a group's *primary* only — the write path. Writes must not
    /// fail over: a secondary does not own the group's WAL, so routing
    /// an insert there would fork the replica set. The caller relays
    /// whatever status the primary answered (a `404` from a delete is
    /// an answer, not a failure).
    pub fn call_primary(
        &self,
        group: usize,
        method: &str,
        path: &str,
        body: &str,
        deadline: Option<Instant>,
    ) -> io::Result<(u16, String)> {
        let r = &self.groups[group].replicas[0];
        r.requests.fetch_add(1, Ordering::Relaxed);
        match r.client.call(method, path, body, deadline) {
            Ok(resp) => {
                r.healthy.store(true, Ordering::Relaxed);
                Ok(resp)
            }
            Err(e) => {
                r.errors.fetch_add(1, Ordering::Relaxed);
                r.healthy.store(false, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// One probe sweep: GET every replica's `/healthz` under a short
    /// budget and update its health flag.
    pub fn probe_once(&self) {
        for g in &self.groups {
            for r in &g.replicas {
                r.probes.fetch_add(1, Ordering::Relaxed);
                let deadline = Instant::now() + Duration::from_millis(PROBE_BUDGET_MS);
                let up = matches!(
                    r.client.call("GET", "/healthz", "", Some(deadline)),
                    Ok((200, _))
                );
                if !up {
                    r.probe_failures.fetch_add(1, Ordering::Relaxed);
                }
                r.healthy.store(up, Ordering::Relaxed);
            }
        }
        self.probe_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Probe on a fixed cadence until `stop` triggers. Sleeps in short
    /// slices so shutdown is prompt.
    pub fn probe_loop(&self, stop: &ShutdownFlag) {
        while !stop.is_triggered() {
            self.probe_once();
            let mut slept = 0;
            while slept < PROBE_INTERVAL_MS && !stop.is_triggered() {
                let slice = (PROBE_INTERVAL_MS - slept).min(50);
                std::thread::sleep(Duration::from_millis(slice));
                slept += slice;
            }
        }
    }

    /// The `/metrics` cluster section: per-group gather latency,
    /// failovers and per-replica health/traffic counters, plus the
    /// cluster-wide degraded-response and probe-round totals.
    pub fn metrics_value(&self) -> Value {
        let num = |n: u64| Value::Number(Number::from_i128(n as i128));
        let groups = self
            .groups
            .iter()
            .map(|g| {
                let replicas = g
                    .replicas
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("addr".into(), Value::String(r.addr().to_string())),
                            ("healthy".into(), Value::Bool(r.is_healthy())),
                            ("probes".into(), num(r.probes.load(Ordering::Relaxed))),
                            (
                                "probe_failures".into(),
                                num(r.probe_failures.load(Ordering::Relaxed)),
                            ),
                            ("requests".into(), num(r.requests.load(Ordering::Relaxed))),
                            ("errors".into(), num(r.errors.load(Ordering::Relaxed))),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("replicas".into(), Value::Array(replicas)),
                    ("healthy".into(), Value::Bool(g.has_healthy_replica())),
                    ("failovers".into(), num(g.failovers.load(Ordering::Relaxed))),
                    (
                        "gather_latency_us".into(),
                        g.latency_us.lock().serialize_value(),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("groups".into(), Value::Array(groups)),
            (
                "degraded_responses".into(),
                num(self.degraded_responses.load(Ordering::Relaxed)),
            ),
            ("probe_rounds".into(), num(self.probe_rounds.load(Ordering::Relaxed))),
        ])
    }
}

/// FNV-1a, 64-bit: the insert-routing content hash. Deliberately
/// self-contained — the routing function is part of the wire contract
/// between router and shards, so it must not drift with a hasher crate.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        // Ports nothing listens on; these tests never hit the network
        // except where they expect failure.
        let groups = (0..n)
            .map(|i| vec![format!("127.0.0.1:{}", 1 + i).parse().unwrap()])
            .collect();
        Cluster::new(groups)
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let c = cluster(3);
        for id in 0..50u32 {
            assert_eq!(c.route_doc(id), id as usize % 3);
        }
        let g = c.route_insert("Some news text.");
        assert!(g < 3);
        assert_eq!(g, c.route_insert("Some news text."), "content hash is stable");
    }

    #[test]
    fn dead_group_fails_over_then_reports_down() {
        let c = Cluster::new(vec![vec![
            "127.0.0.1:1".parse().unwrap(),
            "127.0.0.1:2".parse().unwrap(),
        ]]);
        let deadline = Instant::now() + Duration::from_millis(300);
        let err = c.call_group(0, "GET", "/healthz", "", Some(deadline));
        assert_eq!(err, Err(GroupDown));
        // Both replicas were tried: one failover, both marked unhealthy.
        let g = &c.groups()[0];
        assert_eq!(g.failovers.load(Ordering::Relaxed), 1);
        assert!(!g.has_healthy_replica());
        assert_eq!(c.groups_down(), vec![0]);
    }

    #[test]
    fn metrics_value_has_the_expected_shape() {
        let c = cluster(2);
        let v = c.metrics_value();
        let groups = v.get("groups").and_then(|g| g.as_array()).unwrap();
        assert_eq!(groups.len(), 2);
        let replicas = groups[0].get("replicas").and_then(|r| r.as_array()).unwrap();
        assert_eq!(replicas.len(), 1);
        assert!(replicas[0].get("addr").unwrap().as_str().unwrap().contains("127.0.0.1"));
        assert!(v.get("degraded_responses").is_some());
    }
}
