//! Wire types for the router ↔ shard internal protocol.
//!
//! Three phases, all `POST` with JSON bodies, all designed so the
//! router's merged answer is **bit-identical** to a single process
//! searching the union of the shards:
//!
//! 1. `/internal/stats` — per-shard live collection statistics and
//!    document frequencies for the query's terms. Integer sums, so the
//!    router's totals equal the monolithic values in any reply order.
//! 2. `/internal/top1` — each shard's maximum raw score per side under
//!    the summed overlay (only when normalization is on). `max` over a
//!    set is feed-order independent, so folding the shard maxima equals
//!    the in-process global top-1.
//! 3. `/internal/search` — the pruned blended top-k under the full
//!    overlay (stats + df + normalization divisors), plus optional
//!    explanations.
//!
//! Floats never cross the wire as decimal text: a score is shipped as
//! its IEEE-754 bit pattern (`f64::to_bits`, carried in an `i64` — the
//! vendored JSON number model round-trips `i64` exactly), so the router
//! reassembles the *same* doubles the shard computed, not a close
//! decimal cousin.

use newslink_core::{Explanation, ExplainOptions, PruneStats};
use serde::{Deserialize, Serialize};

/// Encode a double for the wire: its bit pattern, as `i64`.
pub fn f64_bits(x: f64) -> i64 {
    x.to_bits() as i64
}

/// Decode a wire double: the exact `f64` whose bits were shipped.
pub fn f64_from_bits(bits: i64) -> f64 {
    f64::from_bits(bits as u64)
}

/// Phase 1 request: the analyzed query, one term list per side, in the
/// canonical analysis order (the order fixes the shard's float
/// accumulation order, so it must survive the trip verbatim).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Word terms (the BOW side's query).
    pub bow_terms: Vec<String>,
    /// Node terms (the BON side's query).
    pub bon_terms: Vec<String>,
}

/// One side's shard-local statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SideStatsWire {
    /// Live documents on this shard.
    pub docs: u64,
    /// Total live token length on this shard.
    pub total_len: u64,
    /// Live document frequency per query term, aligned with the
    /// request's term list (0 for absent terms).
    pub df: Vec<u32>,
}

/// Phase 1 response: both sides' shard-local statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsResponse {
    /// The BOW side.
    pub bow: SideStatsWire,
    /// The BON side.
    pub bon: SideStatsWire,
}

/// One side's cluster-wide overlay, as the router computed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlayWire {
    /// Query terms in canonical analysis order.
    pub terms: Vec<String>,
    /// Cluster-wide live document count.
    pub docs: u64,
    /// Cluster-wide total live token length.
    pub total_len: u64,
    /// Cluster-wide live document frequency per term, aligned with
    /// `terms`.
    pub df: Vec<u32>,
    /// Normalization divisor (bit pattern; 1.0 when normalization is
    /// off or the side's global maximum was not positive).
    pub norm_bits: i64,
}

/// Phase 2 request: find each side's shard-local maximum raw score
/// under the summed overlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Top1Request {
    /// The blend weight (bit pattern) — it gates which sides are active.
    pub beta_bits: i64,
    /// The BOW overlay (its `norm_bits` is ignored here).
    pub bow: OverlayWire,
    /// The BON overlay (its `norm_bits` is ignored here).
    pub bon: OverlayWire,
}

/// Phase 2 response: the shard's per-side maxima (0.0 bits when the
/// side is inactive or nothing matched) plus the pruning work done.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Top1Response {
    /// Max raw BOW score on this shard (bit pattern).
    pub bow_max_bits: i64,
    /// Max raw BON score on this shard (bit pattern).
    pub bon_max_bits: i64,
    /// Pruned-evaluator work counters for the top-1 passes.
    pub prune: PruneStats,
}

/// Phase 3 request: the shard-side half of the scatter-gather search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSearchRequest {
    /// The raw query text (re-analyzed shard-side only when
    /// explanations are requested — scoring runs off the overlays).
    pub query: String,
    /// Results to return from this shard.
    pub k: usize,
    /// The blend weight (bit pattern).
    pub beta_bits: i64,
    /// Cross-shard pruning floor (bit pattern; `-inf` when unknown).
    pub floor_bits: i64,
    /// Remaining deadline budget in milliseconds, anchored at the
    /// shard's own request arrival. `None` = no deadline.
    pub budget_ms: Option<u64>,
    /// Attach relationship-path explanations to every hit.
    pub explain: Option<ExplainOptions>,
    /// The BOW overlay, normalization divisor included.
    pub bow: OverlayWire,
    /// The BON overlay, normalization divisor included.
    pub bon: OverlayWire,
}

/// One ranked hit, scores as bit patterns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitWire {
    /// Global document id.
    pub doc: u32,
    /// Blended score bits.
    pub score_bits: i64,
    /// BOW component bits.
    pub bow_bits: i64,
    /// BON component bits.
    pub bon_bits: i64,
}

/// Phase 3 response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSearchResponse {
    /// This shard's top-k, best first.
    pub hits: Vec<HitWire>,
    /// Explanations aligned with `hits` (empty unless requested, or
    /// when the deadline expired before they ran).
    pub explanations: Vec<Explanation>,
    /// Pruned-evaluator work counters for the scan.
    pub prune: PruneStats,
    /// The shard's deadline expired mid-pipeline.
    pub timed_out: bool,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            1.000000000000001,
        ] {
            let back = f64_from_bits(f64_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn wire_structs_round_trip_through_json() {
        let req = ShardSearchRequest {
            query: "taliban in kunar".into(),
            k: 7,
            beta_bits: f64_bits(0.3),
            floor_bits: f64_bits(f64::NEG_INFINITY),
            budget_ms: Some(250),
            explain: Some(ExplainOptions::default()),
            bow: OverlayWire {
                terms: vec!["taliban".into(), "kunar".into()],
                docs: 12,
                total_len: 345,
                df: vec![3, 0],
                norm_bits: f64_bits(2.5),
            },
            bon: OverlayWire {
                terms: vec!["n7".into()],
                docs: 12,
                total_len: 40,
                df: vec![2],
                norm_bits: f64_bits(1.0),
            },
        };
        let text = serde_json::to_string(&req).unwrap();
        let back: ShardSearchRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.query, req.query);
        assert_eq!(back.k, req.k);
        assert_eq!(back.beta_bits, req.beta_bits);
        assert_eq!(f64_from_bits(back.floor_bits), f64::NEG_INFINITY);
        assert_eq!(back.budget_ms, Some(250));
        assert_eq!(back.explain, req.explain);
        assert_eq!(back.bow.terms, req.bow.terms);
        assert_eq!(back.bow.df, req.bow.df);
        assert_eq!(back.bon.norm_bits, f64_bits(1.0));

        let resp = ShardSearchResponse {
            hits: vec![HitWire {
                doc: 4,
                score_bits: f64_bits(0.75),
                bow_bits: f64_bits(0.5),
                bon_bits: f64_bits(1.0),
            }],
            explanations: Vec::new(),
            prune: PruneStats {
                candidates: 9,
                scored: 4,
                blocks_skipped: 2,
            },
            timed_out: false,
        };
        let text = serde_json::to_string(&resp).unwrap();
        let back: ShardSearchResponse = serde_json::from_str(&text).unwrap();
        assert_eq!(back.hits.len(), 1);
        assert_eq!(f64_from_bits(back.hits[0].score_bits), 0.75);
        assert_eq!(back.prune, resp.prune);
        assert!(!back.timed_out);
    }
}
