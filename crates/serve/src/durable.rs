//! Server-side durability state: the [`DurableStore`] behind a mutex,
//! plus the recovery report and checkpoint counters the observability
//! endpoints surface.
//!
//! The store mutex serializes WAL appends and checkpoints; the index's
//! reader-writer lock stays the outer lock everywhere (`index` first,
//! then `store`), so a checkpoint holding the index read lock can never
//! deadlock against a mutation holding the write lock.
//!
//! The [`LoadReport`] captured at construction is immutable: it
//! describes what *this process's* open recovered (and lost), which
//! stays true for the lifetime of the server no matter how many
//! checkpoints later fold the log away.

use std::sync::atomic::{AtomicU64, Ordering};

use newslink_core::{DurableStore, LoadReport};
use parking_lot::{Mutex, MutexGuard};
use serde::{Number, Value};

/// Durability wiring shared by every handler thread.
#[derive(Debug)]
pub struct DurableState {
    store: Mutex<DurableStore>,
    report: LoadReport,
    wal_appends: AtomicU64,
    snapshots: AtomicU64,
}

impl DurableState {
    /// Wrap a freshly opened store. The store's [`LoadReport`] is
    /// captured here and served unchanged for the process lifetime.
    pub fn new(store: DurableStore) -> Self {
        let report = store.report().clone();
        Self {
            store: Mutex::new(store),
            report,
            wal_appends: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
        }
    }

    /// What this process's open recovered, replayed and dropped.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }

    /// Whether the snapshot load quarantined any segment.
    pub fn degraded(&self) -> bool {
        self.report.degraded()
    }

    /// Lock the store for an append or a checkpoint. Callers must
    /// already hold the index lock (read or write) — never acquire it
    /// the other way around.
    pub(crate) fn store(&self) -> MutexGuard<'_, DurableStore> {
        self.store.lock()
    }

    /// Count one fsynced, acknowledged WAL append.
    pub(crate) fn note_append(&self) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one successful checkpoint.
    pub(crate) fn note_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// The storage backend serving the snapshot (`"heap"` or `"mmap"`).
    pub fn backend_name(&self) -> &'static str {
        self.store().backend().as_str()
    }

    /// WAL appends acknowledged since startup.
    pub fn wal_appends_total(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Checkpoints taken since startup (`POST /admin/snapshot`).
    pub fn snapshots_total(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// The `/metrics` durability section: the immutable recovery report
    /// plus live append/checkpoint counters, the current WAL size, and
    /// the storage backend serving the snapshot.
    pub fn gauges(&self) -> Value {
        let num = |n: u64| Value::Number(Number::from_i128(n as i128));
        let store = self.store();
        let wal_bytes = store.wal_len();
        let backend = store.backend().as_str();
        let snapshot_bytes = store.snapshot_len();
        drop(store);
        Value::Object(vec![
            ("backend".into(), Value::String(backend.into())),
            ("snapshot_bytes".into(), num(snapshot_bytes)),
            ("degraded".into(), Value::Bool(self.report.degraded())),
            (
                "segments_loaded".into(),
                num(self.report.segments_loaded as u64),
            ),
            (
                "quarantined_segments".into(),
                num(self.report.quarantined_segments as u64),
            ),
            (
                "dropped_tombstones".into(),
                num(self.report.dropped_tombstones as u64),
            ),
            (
                "wal_records_replayed".into(),
                num(self.report.wal_records_replayed as u64),
            ),
            (
                "wal_records_skipped".into(),
                num(self.report.wal_records_skipped as u64),
            ),
            (
                "wal_truncated_bytes".into(),
                num(self.report.wal_truncated_bytes),
            ),
            ("wal_appends".into(), num(self.wal_appends_total())),
            ("wal_bytes".into(), num(wal_bytes)),
            ("snapshots".into(), num(self.snapshots_total())),
        ])
    }
}
