//! Minimal HTTP/1.1 framing over blocking TCP.
//!
//! The service speaks exactly the subset a JSON search API needs: a
//! request line, headers (only `Content-Length` and `Connection` are
//! interpreted), and a UTF-8 body. Connections default to one request
//! (`Connection: close`); a client that sends `Connection: keep-alive`
//! opts into reuse — the shard router's pooled client does, ordinary
//! clients are unaffected. Keeping the wire layer this small is what
//! lets the whole server run on `std::net` with no async runtime — a
//! deliberate choice for the offline build (see `vendor/README.md`).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (`/search`).
    pub path: String,
    /// The request body, decoded as UTF-8.
    pub body: String,
    /// The client sent `Connection: keep-alive` — it wants to reuse the
    /// connection for another request after the response.
    pub keep_alive: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection before sending anything.
    Closed,
    /// The framing is not HTTP we understand; respond `400`.
    BadRequest(String),
    /// The declared body exceeds the configured cap; respond `413`.
    TooLarge,
    /// The socket failed mid-read (including read timeouts).
    Io(io::Error),
}

/// Parse the request head (everything before the blank line) into
/// `(method, path, content_length, keep_alive)`.
fn parse_head(head: &str) -> Result<(String, String, usize, bool), String> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("malformed request line {request_line:?}"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line {request_line:?}"));
    }
    // Strip any query string; the API is body-driven.
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut content_length = 0usize;
    let mut keep_alive = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header {line:?}"));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length {value:?}"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
        }
    }
    Ok((method.to_ascii_uppercase(), path, content_length, keep_alive))
}

/// Read one request from `stream`. Bodies larger than `max_body` are
/// rejected without being read.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, RecvError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::BadRequest("request head too large".into()));
        }
        let n = stream.read(&mut chunk).map_err(RecvError::Io)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(RecvError::Closed)
            } else {
                Err(RecvError::BadRequest("connection closed mid-head".into()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::BadRequest("head is not UTF-8".into()))?;
    let (method, path, content_length, keep_alive) =
        parse_head(head).map_err(RecvError::BadRequest)?;
    if content_length > max_body {
        return Err(RecvError::TooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(RecvError::BadRequest("body longer than content-length".into()));
    }
    let missing = content_length - body.len();
    if missing > 0 {
        let start = body.len();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[start..]).map_err(RecvError::Io)?;
    }
    let body =
        String::from_utf8(body).map_err(|_| RecvError::BadRequest("body is not UTF-8".into()))?;
    Ok(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Offset of `\r\n\r\n` in `buf`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the statuses this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` JSON response.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// Like [`write_response`], with extra response headers (e.g. the
/// `Deprecation` header on legacy unversioned paths).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    write_response_conn(stream, status, extra_headers, body, false)
}

/// Like [`write_response_with`], with the connection disposition made
/// explicit: `keep_alive` answers a client that asked for reuse, and the
/// caller then loops reading the next request off the same stream.
pub fn write_response_conn(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    // One write: splitting head and body across TCP segments lets
    // Nagle hold the body until the head's (delayed) ACK, which turns a
    // loopback round-trip into tens of milliseconds.
    head.push_str(body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// A blocking one-shot HTTP client: connect, send one request, read the
/// `(status, body)` of the response. Shared by the e2e tests, the
/// throughput bench, and the demo example.
pub mod client {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// A fully parsed response: `(status, headers, body)`.
    pub type FullResponse = (u16, Vec<(String, String)>, String);

    /// Issue `method path` with `body` against `addr`.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        send(&mut stream, method, path, body)?;
        read_response(&mut stream)
    }

    /// Write one request onto an existing stream (exposed so tests can
    /// split a request across writes to exercise server-side framing).
    pub fn send(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: newslink\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        // Single write: see `write_response` on Nagle vs delayed ACK.
        head.push_str(body);
        stream.write_all(head.as_bytes())?;
        stream.flush()
    }

    /// Read a full `Connection: close` response into `(status, body)`.
    pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
        let (status, _headers, body) = read_response_full(stream)?;
        Ok((status, body))
    }

    /// Like [`request`], but also surface the response headers — the
    /// deprecation-header tests need to see the wire head, not just the
    /// body.
    pub fn request_with_headers(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<FullResponse> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        send(&mut stream, method, path, body)?;
        read_response_full(&mut stream)
    }

    /// Write one request that asks the server to keep the connection
    /// open after responding (the shard router's pooled client pairs
    /// this with [`read_response_framed`]).
    pub fn send_keep_alive(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: newslink\r\nConnection: keep-alive\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        // Single write: see `write_response` on Nagle vs delayed ACK.
        head.push_str(body);
        stream.write_all(head.as_bytes())?;
        stream.flush()
    }

    /// Read exactly one `Content-Length`-framed response off the stream,
    /// leaving it positioned at the next response — the reuse-safe
    /// counterpart of [`read_response_full`]'s read-to-EOF. Responses
    /// without a `Content-Length` header are treated as malformed (this
    /// service always emits one). Generic over [`Read`] so callers can
    /// wrap the socket in a deadline-anchored reader (see the router's
    /// `DeadlineStream`): a per-socket read timeout alone resets on
    /// every byte, so a drip-feeding peer could extend a "bounded" read
    /// indefinitely.
    pub fn read_response_framed<R: Read>(stream: &mut R) -> std::io::Result<FullResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut buf: Vec<u8> = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if buf.len() > super::MAX_HEAD_BYTES {
                return Err(bad("response head too large"));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| bad("non-UTF8 head"))?
            .to_string();
        let status: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let headers: Vec<(String, String)> = head
            .split("\r\n")
            .skip(1)
            .filter_map(|line| line.split_once(':'))
            .map(|(name, value)| (name.trim().to_string(), value.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        let mut body = buf[head_end + 4..].to_vec();
        if body.len() > content_length {
            return Err(bad("body longer than content-length"));
        }
        let start = body.len();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[start..])?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF8 body"))?;
        Ok((status, headers, body))
    }

    /// Read a full `Connection: close` response into
    /// `(status, headers, body)`.
    pub fn read_response_full(
        stream: &mut TcpStream,
    ) -> std::io::Result<FullResponse> {
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        let text = String::from_utf8(raw)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF8"))?;
        let status = text
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.get(..3))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let (head, body) = text
            .split_once("\r\n\r\n")
            .map(|(h, b)| (h.to_string(), b.to_string()))
            .unwrap_or((text.clone(), String::new()));
        let headers = head
            .split("\r\n")
            .skip(1) // status line
            .filter_map(|line| line.split_once(':'))
            .map(|(name, value)| (name.trim().to_string(), value.trim().to_string()))
            .collect();
        Ok((status, headers, body))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_content_length() {
        let (m, p, n, ka) =
            parse_head("POST /search HTTP/1.1\r\nHost: x\r\nContent-Length: 12").unwrap();
        assert_eq!((m.as_str(), p.as_str(), n, ka), ("POST", "/search", 12, false));
    }

    #[test]
    fn strips_query_string_and_upcases_method() {
        let (m, p, n, ka) = parse_head("get /metrics?verbose=1 HTTP/1.1\r\nHost: x").unwrap();
        assert_eq!((m.as_str(), p.as_str(), n, ka), ("GET", "/metrics", 0, false));
    }

    #[test]
    fn keep_alive_is_opt_in_only() {
        let ka = |head: &str| parse_head(head).unwrap().3;
        assert!(ka("GET / HTTP/1.1\r\nConnection: keep-alive"));
        assert!(ka("GET / HTTP/1.1\r\nconnection: Keep-Alive"));
        assert!(!ka("GET / HTTP/1.1\r\nConnection: close"));
        assert!(!ka("GET / HTTP/1.1\r\nHost: x"), "absent header means close");
    }

    #[test]
    fn rejects_garbage_heads() {
        assert!(parse_head("not http").is_err());
        assert!(parse_head("GET / SPDY/3").is_err());
        assert!(parse_head("GET / HTTP/1.1 extra").is_err());
        assert!(parse_head("POST / HTTP/1.1\r\nContent-Length: many").is_err());
        assert!(parse_head("POST / HTTP/1.1\r\nno-colon-header").is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn reasons_cover_emitted_statuses() {
        for s in [200, 400, 404, 405, 413, 429, 500, 503] {
            assert_ne!(reason(s), "Unknown", "status {s}");
        }
    }
}
