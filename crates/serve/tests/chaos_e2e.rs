//! Chaos end-to-end suite: the cluster router driven through seeded
//! network fault injection ([`newslink_util::chaos`]).
//!
//! Every test stands up real TCP servers — a standalone *mono* oracle
//! holding the whole corpus, shard servers holding stripes, and a
//! router — and puts a [`ChaosProxy`] in front of selected replicas.
//! The contract under test, per fault class:
//!
//! - **Recoverable faults** (latency, throttling, short writes, resets
//!   with a healthy sibling replica): the router's answers stay
//!   **bit-identical** to the mono oracle, paid for out of the retry
//!   budget — never silently truncated, never degraded.
//! - **Loss faults** (a black-holed group with no healthy sibling): the
//!   router answers an **honestly degraded 503** — `"degraded": true`
//!   and the dead group listed — within the request deadline.
//! - **Sustained refusal** trips the replica's circuit breaker (calls
//!   stop dialing it entirely), and a healed replica is re-admitted by
//!   the probe loop without any data traffic.
//! - The prober itself is immune to black holes and slow-loris drips:
//!   every probe carries an absolute deadline, so `probe_once` returns
//!   on budget no matter how the replica misbehaves.
//!
//! Fault schedules are pure functions of a u64 seed, so each run
//! injects exactly the same faults — chaos testing without flakes.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use newslink_core::{NewsLink, NewsLinkConfig, NewsLinkIndex};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_serve::cluster::client::ReplicaClient;
use newslink_serve::{client, Cluster, ResilienceConfig, ServeConfig, Server};
use newslink_util::chaos::{ChaosProxy, Fault, FaultPlan};
use newslink_util::ShutdownFlag;
use parking_lot::RwLock;
use serde::Value;

/// A small fixed world: enough entities that documents collide on both
/// the BOW side (shared filler words) and the BON side (shared graph
/// neighborhoods). Same shape as `cluster_prop`'s.
fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    let unhcr = b.add_node("UNHCR", EntityType::Organization);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    b.add_edge(unhcr, kabul, "operates in", 1);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

/// A fixed eight-document corpus: determinism end to end.
fn corpus() -> Vec<String> {
    [
        "Taliban attack in Kunar near the Khyber border.",
        "Pakistan trade talks with Kabul resume.",
        "UNHCR aid convoy reaches Kabul after the storm.",
        "Khyber festival draws crowds from Pakistan.",
        "Storm damages aid depots in Kunar.",
        "Kabul festival celebrates trade with Pakistan.",
        "Taliban talks stall as UNHCR warns on aid.",
        "Khyber attack disrupts Pakistan trade routes.",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

const SEARCHES: &[(&str, f64, usize)] = &[
    ("Taliban attack Khyber", 0.2, 3),
    ("Pakistan trade", 0.5, 4),
    ("UNHCR aid Kabul", 0.0, 2),
    ("storm festival", 1.0, 3),
];

/// Everything a test body needs to poke the running cluster.
struct Ctx<'a> {
    mono: SocketAddr,
    router: SocketAddr,
    proxies: &'a [Vec<Option<ChaosProxy>>],
    cluster: &'a Cluster,
}

impl Ctx<'_> {
    /// The router's `/metrics` document.
    fn metrics(&self) -> Value {
        let (status, body) =
            client::request(self.router, "GET", "/metrics", "").expect("metrics fetch");
        assert_eq!(status, 200, "{body}");
        serde_json::from_str(&body).expect("metrics json")
    }

    /// The replica object at `(group, replica)` inside `/metrics`.
    fn replica_metrics(&self, group: usize, replica: usize) -> Value {
        self.metrics()
            .get("cluster")
            .and_then(|c| c.get("groups"))
            .and_then(|g| g.as_array())
            .and_then(|g| g.get(group).cloned())
            .and_then(|g| g.get("replicas").and_then(|r| r.as_array().map(|a| a.to_vec())))
            .and_then(|r| r.get(replica).cloned())
            .expect("replica metrics present")
    }

    /// The cluster-level resilience section of `/metrics`.
    fn resilience_metrics(&self) -> Value {
        self.metrics()
            .get("cluster")
            .and_then(|c| c.get("resilience").cloned())
            .expect("resilience metrics present")
    }
}

/// Stand up mono + shards + proxies + router and hand control to
/// `body`. `plans[g][r]` is `Some(plan)` to interpose a chaos proxy in
/// front of replica `r` of group `g`, `None` to wire it directly. All
/// replicas of a group serve the same shard index.
fn with_chaos_cluster(
    plans: Vec<Vec<Option<FaultPlan>>>,
    resilience: ResilienceConfig,
    request_timeout_ms: Option<u64>,
    body: impl FnOnce(&Ctx<'_>),
) {
    let (graph, labels) = world();
    let texts = corpus();
    // Multi-segment on both sides so the layered merge invariants are
    // the ones under chaos, not a degenerate single-segment case.
    let config = NewsLinkConfig::default().with_segment_docs(2);
    let engine = NewsLink::new(&graph, &labels, config);
    let shard_count = plans.len() as u32;

    let mono_index = RwLock::new(engine.index_corpus(&texts));
    let mut shard_indexes: Vec<RwLock<NewsLinkIndex>> = Vec::new();
    for s in 0..shard_count {
        let mut idx = engine.index_corpus_sharded(&texts, s, shard_count);
        idx.set_id_stripe(s, shard_count);
        shard_indexes.push(RwLock::new(idx));
    }

    let mut serve_config = ServeConfig {
        read_timeout_ms: 250,
        ..ServeConfig::default()
    };
    if let Some(ms) = request_timeout_ms {
        serve_config = serve_config.with_default_timeout(Duration::from_millis(ms));
    }
    let mono = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind mono");
    // One server per replica; replicas of a group share the group's
    // index (they are supposed to be identical copies).
    let replica_servers: Vec<Vec<Server>> = plans
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|_| Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind replica"))
                .collect()
        })
        .collect();
    // Interpose the chaos proxies and collect what the router dials.
    let proxies: Vec<Vec<Option<ChaosProxy>>> = plans
        .iter()
        .zip(&replica_servers)
        .map(|(group_plans, group_servers)| {
            group_plans
                .iter()
                .zip(group_servers)
                .map(|(plan, srv)| {
                    plan.clone()
                        .map(|p| ChaosProxy::spawn(srv.local_addr(), p).expect("spawn proxy"))
                })
                .collect()
        })
        .collect();
    let groups: Vec<Vec<SocketAddr>> = proxies
        .iter()
        .zip(&replica_servers)
        .map(|(group_proxies, group_servers)| {
            group_proxies
                .iter()
                .zip(group_servers)
                .map(|(proxy, srv)| match proxy {
                    Some(p) => p.addr(),
                    None => srv.local_addr(),
                })
                .collect()
        })
        .collect();
    let cluster = Cluster::with_config(groups, resilience);
    let router = Server::bind("127.0.0.1:0", serve_config).expect("bind router");

    let mono_handle = mono.handle();
    let router_handle = router.handle();
    let replica_handles: Vec<_> = replica_servers
        .iter()
        .flatten()
        .map(Server::handle)
        .collect();

    let (engine, mono_index, cluster) = (&engine, &mono_index, &cluster);
    let (mono, router, proxies) = (&mono, &router, &proxies);
    let replica_servers = &replica_servers;
    std::thread::scope(|scope| {
        scope.spawn(move || mono.run(engine, mono_index));
        for (group_servers, idx) in replica_servers.iter().zip(&shard_indexes) {
            for srv in group_servers {
                scope.spawn(move || srv.run(engine, idx));
            }
        }
        scope.spawn(move || router.run_router(engine, cluster));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&Ctx {
                mono: mono_handle.addr(),
                router: router_handle.addr(),
                proxies,
                cluster,
            })
        }));
        router_handle.shutdown();
        for h in &replica_handles {
            h.shutdown();
        }
        mono_handle.shutdown();
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
}

/// Run the fixed search set against both servers and demand bit-equal
/// results and explanations and a non-degraded router answer.
fn assert_bit_identical(ctx: &Ctx<'_>) {
    for (query, beta, k) in SEARCHES {
        let body = format!(r#"{{"query": {query:?}, "k": {k}, "beta": {beta}, "explain": true}}"#);
        let (ms, mtext) = client::request(ctx.mono, "POST", "/v1/search", &body).expect("mono");
        let (rs, rtext) = client::request(ctx.router, "POST", "/v1/search", &body).expect("router");
        assert_eq!(ms, 200, "mono: {mtext}");
        assert_eq!(rs, 200, "router: {rtext}");
        let m: Value = serde_json::from_str(&mtext).expect("mono json");
        let r: Value = serde_json::from_str(&rtext).expect("router json");
        assert_eq!(
            m.get("results"),
            r.get("results"),
            "query {query:?}: results diverge\nmono:   {mtext}\nrouter: {rtext}"
        );
        assert_eq!(m.get("explanations"), r.get("explanations"), "query {query:?}");
        assert_eq!(r.get("degraded"), Some(&Value::Bool(false)), "{rtext}");
    }
}

/// Assert upstream amplification stayed inside the configured budget:
/// `retries_spent ≤ ratio × primary_calls + cap` (the token bucket's
/// hard bound), from the router's own `/metrics` counters.
fn assert_amplification_bounded(ctx: &Ctx<'_>) {
    let res = ctx.resilience_metrics();
    let get = |k: &str| res.get(k).and_then(|v| v.as_i64()).expect("counter") as f64;
    let cfg = ctx.cluster.config();
    let bound = cfg.retry_budget * get("primary_calls") + cfg.retry_budget_cap;
    let spent = get("retries_spent");
    assert!(
        spent <= bound.floor(),
        "amplification {spent} exceeds budget bound {bound} (ratio {}, cap {})",
        cfg.retry_budget,
        cfg.retry_budget_cap
    );
}

// ---------------------------------------------------------------------
// Recoverable faults: bit-identical answers.
// ---------------------------------------------------------------------

/// Latency and throttling lose nothing: the router's answers are
/// bit-identical to the oracle straight through the sick connections —
/// no failover even needed, just patience inside the deadline.
#[test]
fn latency_and_throttle_faults_stay_bit_identical() {
    let plans = vec![
        vec![Some(FaultPlan::always(Fault::Delay { ms: 15, jitter_ms: 5 }))],
        vec![Some(FaultPlan::always(Fault::Throttle { bytes_per_sec: 20_000 }))],
    ];
    with_chaos_cluster(plans, ResilienceConfig::default(), None, |ctx| {
        // Writes cross the sick wire too: delete on both sides, then
        // compare answers over the mutated corpus.
        for id in [0u32, 3] {
            let path = format!("/v1/docs/{id}");
            let (ms, _) = client::request(ctx.mono, "DELETE", &path, "").expect("mono delete");
            let (rs, rb) = client::request(ctx.router, "DELETE", &path, "").expect("router delete");
            assert_eq!(ms, rs, "delete {id}: router said {rb}");
        }
        assert_bit_identical(ctx);
        let delayed = ctx.proxies[0][0].as_ref().expect("proxy").stats().delays();
        assert!(delayed > 0, "the latency fault actually fired");
    });
}

/// A replica that truncates responses (short writes) is failed over
/// within the request: answers stay bit-identical, the retry budget
/// pays for the extra attempts, and amplification stays bounded.
#[test]
fn short_writes_fail_over_bit_identical() {
    let plans = vec![vec![
        Some(FaultPlan::always(Fault::ShortWrite { keep_bytes: 60 })),
        None,
    ]];
    let cfg = ResilienceConfig {
        retry_budget: 1.0,
        ..ResilienceConfig::default()
    };
    with_chaos_cluster(plans, cfg, None, |ctx| {
        assert_bit_identical(ctx);
        let stats = ctx.proxies[0][0].as_ref().expect("proxy").stats();
        assert!(stats.short_writes() > 0, "the fault actually fired");
        let res = ctx.resilience_metrics();
        assert!(
            res.get("retries_spent").and_then(|v| v.as_i64()).expect("spent") > 0,
            "failover was budget-paid: {res:?}"
        );
        assert_amplification_bounded(ctx);
    });
}

/// Same contract under mid-stream connection resets.
#[test]
fn resets_fail_over_bit_identical() {
    let plans = vec![vec![
        Some(FaultPlan::always(Fault::Reset { after_bytes: 20 })),
        None,
    ]];
    let cfg = ResilienceConfig {
        retry_budget: 1.0,
        ..ResilienceConfig::default()
    };
    with_chaos_cluster(plans, cfg, None, |ctx| {
        assert_bit_identical(ctx);
        let stats = ctx.proxies[0][0].as_ref().expect("proxy").stats();
        assert!(stats.resets() > 0, "the fault actually fired");
        assert_amplification_bounded(ctx);
    });
}

// ---------------------------------------------------------------------
// Loss faults: honest degradation.
// ---------------------------------------------------------------------

/// A black-holed group with no healthy sibling cannot contribute —
/// the router must answer an honest 503 with `"degraded": true` within
/// the request deadline, never a silently truncated 200.
#[test]
fn black_holed_group_degrades_honestly_within_deadline() {
    let plans = vec![vec![None], vec![Some(FaultPlan::always(Fault::BlackHole))]];
    with_chaos_cluster(plans, ResilienceConfig::default(), Some(700), |ctx| {
        let body = r#"{"query": "Pakistan trade", "k": 4}"#;
        let t = Instant::now();
        let (status, text) =
            client::request(ctx.router, "POST", "/v1/search", body).expect("router search");
        let elapsed = t.elapsed();
        assert_eq!(status, 503, "loss must degrade, not fake a 200: {text}");
        let r: Value = serde_json::from_str(&text).expect("json");
        assert_eq!(r.get("degraded"), Some(&Value::Bool(true)), "{text}");
        // The black-holed group is down; the sibling group may also
        // report down if the hole consumed the whole gather deadline
        // before its later phases ran. Honesty is the contract, not a
        // minimal blast radius.
        let down = r
            .get("groups_down")
            .and_then(|v| v.as_i64())
            .expect("groups_down counted");
        assert!(down >= 1, "the black-holed group is counted down: {text}");
        assert!(r.get("results").is_some(), "partials still carry a results field");
        assert!(
            elapsed < Duration::from_millis(2_500),
            "answered within the deadline, not the black hole's: {elapsed:?}"
        );
        assert!(
            ctx.proxies[1][0].as_ref().expect("proxy").stats().black_holed() > 0,
            "the fault actually fired"
        );
        let m = ctx.metrics();
        let degraded = m
            .get("cluster")
            .and_then(|c| c.get("degraded_responses"))
            .and_then(|v| v.as_i64())
            .expect("degraded counter");
        assert!(degraded >= 1);
    });
}

// ---------------------------------------------------------------------
// Breaker lifecycle: trip on refusal, heal through the prober.
// ---------------------------------------------------------------------

/// Sustained connection refusal trips the replica's breaker: the router
/// stops dialing it entirely (fail-fast, no connect spent) while its
/// healthy sibling keeps answering 200. Healing the proxy lets the
/// probe loop close the breaker again with no data traffic required.
#[test]
fn refusal_opens_breaker_and_probe_heals_it() {
    let plans = vec![vec![Some(FaultPlan::always(Fault::Refuse)), None]];
    let cfg = ResilienceConfig {
        probe_interval_ms: 100,
        breaker_window: 4,
        breaker_failures: 2,
        breaker_cooldown_ms: 60_000, // heal only through a probe success
        retry_budget: 4.0,
        ..ResilienceConfig::default()
    };
    with_chaos_cluster(plans, cfg, None, |ctx| {
        let search = |label: &str| {
            let body = r#"{"query": "Pakistan trade", "k": 3}"#;
            let (status, text) =
                client::request(ctx.router, "POST", "/v1/search", body).expect("router search");
            assert_eq!(status, 200, "{label}: {text}");
        };
        // Drive until the breaker opens (probe failures at 100 ms
        // cadence accumulate even without traffic).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            search("while tripping");
            let state = ctx.replica_metrics(0, 0);
            if state.get("breaker").and_then(|v| v.as_str()) == Some("open") {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never opened: {state:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        // Open breaker: the sick replica is not dialed anymore, yet
        // reads keep succeeding through the sibling.
        let dialed_while_open = ctx.cluster.groups()[0].replicas()[0].requests();
        for _ in 0..3 {
            search("while open");
        }
        assert_eq!(
            ctx.cluster.groups()[0].replicas()[0].requests(),
            dialed_while_open,
            "an open breaker spends no connects on the data path"
        );
        // Heal the proxy; the prober is the half-open trial and closes
        // the breaker within a few sweeps.
        ctx.proxies[0][0].as_ref().expect("proxy").set_plan(FaultPlan::healthy());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let state = ctx.replica_metrics(0, 0);
            if state.get("breaker").and_then(|v| v.as_str()) == Some("closed")
                && state.get("healthy") == Some(&Value::Bool(true))
            {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never healed: {state:?}");
            std::thread::sleep(Duration::from_millis(50));
        }
        search("after heal");
        assert_bit_identical(ctx);
    });
}

// ---------------------------------------------------------------------
// Prober immunity (satellite regression): probes carry deadlines.
// ---------------------------------------------------------------------

/// A minimal standalone upstream answering every request with one
/// framed response of `body_len` bytes — big enough to drip slowly.
fn fixed_upstream(body_len: usize) -> (SocketAddr, ShutdownFlag) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
    listener.set_nonblocking(true).expect("nonblocking");
    let addr = listener.local_addr().expect("addr");
    let stop = ShutdownFlag::new();
    let stop2 = stop.clone();
    std::thread::spawn(move || {
        while !stop2.is_triggered() {
            match listener.accept() {
                Ok((mut s, _)) => {
                    let stop3 = stop2.clone();
                    std::thread::spawn(move || {
                        let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
                        let mut pending = Vec::new();
                        let mut buf = [0u8; 4096];
                        while !stop3.is_triggered() {
                            match (&s).read(&mut buf) {
                                Ok(0) => break,
                                Ok(n) => {
                                    pending.extend_from_slice(&buf[..n]);
                                    while let Some(pos) =
                                        pending.windows(4).position(|w| w == b"\r\n\r\n")
                                    {
                                        pending.drain(..pos + 4);
                                        let body = "x".repeat(body_len);
                                        let resp = format!(
                                            "HTTP/1.1 200 OK\r\nContent-Length: {body_len}\r\nConnection: keep-alive\r\n\r\n{body}"
                                        );
                                        if s.write_all(resp.as_bytes()).is_err() {
                                            return;
                                        }
                                    }
                                }
                                Err(e)
                                    if matches!(
                                        e.kind(),
                                        std::io::ErrorKind::WouldBlock
                                            | std::io::ErrorKind::TimedOut
                                    ) => {}
                                Err(_) => break,
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    });
    (addr, stop)
}

/// The slow-loris regression: a replica dripping bytes fast enough to
/// keep every *individual* read alive must still lose against the
/// call's absolute deadline. Before the `DeadlineStream` fix the
/// per-syscall read timeout re-armed on every drip, so this call took
/// as long as the replica cared to drip.
#[test]
fn deadline_beats_a_byte_dripping_replica() {
    let (upstream, stop) = fixed_upstream(2_048);
    // 64-byte slices every ~50 ms: each read succeeds well inside a
    // 250 ms socket timeout, but the full response takes ~1.6 s.
    let proxy = ChaosProxy::spawn(upstream, FaultPlan::always(Fault::Throttle { bytes_per_sec: 1_280 }))
        .expect("spawn proxy");
    let client = ReplicaClient::new(proxy.addr());
    let t = Instant::now();
    let deadline = t + Duration::from_millis(250);
    let err = client
        .call("GET", "/healthz", "", Some(deadline))
        .expect_err("a dripped response must not beat the deadline");
    let elapsed = t.elapsed();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(
        elapsed < Duration::from_millis(800),
        "returned at the deadline, not the drip's pace: {elapsed:?}"
    );
    stop.trigger();
}

/// A black-holed (and a dripping) replica cannot stall the prober
/// thread: `probe_once` completes on budget and marks them unhealthy.
#[test]
fn prober_is_immune_to_black_holes_and_drips() {
    let (upstream, stop) = fixed_upstream(256);
    let hole = ChaosProxy::spawn(upstream, FaultPlan::always(Fault::BlackHole)).expect("hole");
    let drip = ChaosProxy::spawn(upstream, FaultPlan::always(Fault::Throttle { bytes_per_sec: 320 }))
        .expect("drip");
    let cluster = Cluster::new(vec![vec![hole.addr()], vec![drip.addr()]]);
    let t = Instant::now();
    cluster.probe_once();
    let elapsed = t.elapsed();
    // Two sequential probes at a 250 ms budget each, plus slack.
    assert!(
        elapsed < Duration::from_millis(1_500),
        "probe sweep stalled: {elapsed:?}"
    );
    for (g, name) in [(0, "black-holed"), (1, "dripping")] {
        assert!(
            !cluster.groups()[g].replicas()[0].is_healthy(),
            "{name} replica marked unhealthy"
        );
    }
    stop.trigger();
}

// ---------------------------------------------------------------------
// Determinism: same seed, same injected faults.
// ---------------------------------------------------------------------

/// Drive `n` sequential one-request connections into a proxy and
/// report its fault counters.
fn drive_and_count(plan: &FaultPlan, upstream: SocketAddr, n: u64) -> Vec<u64> {
    let proxy = ChaosProxy::spawn(upstream, plan.clone()).expect("spawn proxy");
    for _ in 0..n {
        // Sequential single client: accept order equals connection
        // order, so the seeded schedule maps 1:1 onto connections.
        if let Ok(stream) = TcpStream::connect_timeout(&proxy.addr(), Duration::from_millis(300)) {
            let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
            let mut s = &stream;
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            let mut sink = [0u8; 4096];
            while matches!(s.read(&mut sink), Ok(x) if x > 0) {}
        }
    }
    let st = proxy.stats();
    vec![
        st.connections(),
        st.passthrough(),
        st.refused(),
        st.black_holed(),
        st.delays(),
        st.resets(),
        st.short_writes(),
        st.throttled(),
    ]
}

/// The acceptance clause: the same seed yields the same fault schedule
/// across runs — observed at the wire (injected-fault counters), over a
/// plan mixing all six fault classes — and a different seed diverges.
#[test]
fn same_seed_injects_the_same_fault_schedule() {
    let all_six = |seed: u64| {
        FaultPlan::seeded(
            seed,
            vec![
                (2, Fault::None),
                (1, Fault::Refuse),
                (1, Fault::BlackHole),
                (2, Fault::Delay { ms: 5, jitter_ms: 3 }),
                (1, Fault::Reset { after_bytes: 30 }),
                (1, Fault::ShortWrite { keep_bytes: 30 }),
                (2, Fault::Throttle { bytes_per_sec: 50_000 }),
            ],
        )
    };
    // Schedule level: pure function of (seed, connection index).
    let schedule = |seed: u64| (0..64).map(|i| all_six(seed).fault_for(i)).collect::<Vec<_>>();
    assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
    assert_ne!(schedule(7), schedule(8), "different seed, different schedule");
    // Wire level: two identical runs inject identical fault counts.
    let (upstream, stop) = fixed_upstream(200);
    let a = drive_and_count(&all_six(7), upstream, 16);
    let b = drive_and_count(&all_six(7), upstream, 16);
    assert_eq!(a, b, "same seed, same injected faults on the wire");
    assert_eq!(a[0], 16, "all connections arrived");
    stop.trigger();
}
