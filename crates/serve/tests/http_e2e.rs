//! End-to-end tests over real TCP: bind an ephemeral port, run the
//! server against a synthetic world, and drive it with raw
//! `TcpStream` clients (the crate's own one-shot client helper).

use std::net::TcpStream;
use std::time::Duration;

use newslink_core::{NewsLink, NewsLinkConfig, NewsLinkIndex};
use newslink_kg::{synth, KnowledgeGraph, LabelIndex, SynthConfig};
use newslink_serve::{client, ServeConfig, Server, ServerHandle};
use serde::Value;

/// A tiny world plus an indexed two-document corpus to serve.
struct Fixture {
    graph: KnowledgeGraph,
    country: String,
    city: String,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let world = synth::generate(&SynthConfig::small(seed));
        let country = world.graph.label(world.countries[0]).to_string();
        let city = world.graph.label(world.cities[0]).to_string();
        Self {
            graph: world.graph,
            country,
            city,
        }
    }
}

/// Run `server` for the duration of `f`, then shut it down gracefully.
fn with_server<R>(
    config: ServeConfig,
    fixture: &Fixture,
    f: impl FnOnce(&ServerHandle, &Server) -> R,
) -> R {
    with_server_engine(config, NewsLinkConfig::default(), fixture, f)
}

/// Like [`with_server`] but with a caller-chosen engine configuration
/// (segment sizing, compaction threshold, ...).
fn with_server_engine<R>(
    config: ServeConfig,
    engine_config: NewsLinkConfig,
    fixture: &Fixture,
    f: impl FnOnce(&ServerHandle, &Server) -> R,
) -> R {
    let labels = LabelIndex::build(&fixture.graph);
    let engine = NewsLink::new(&fixture.graph, &labels, engine_config);
    let docs = vec![
        format!(
            "Tensions rose in {} as officials met in {}.",
            fixture.country, fixture.city
        ),
        format!(
            "A festival in {} drew visitors from across {}.",
            fixture.city, fixture.country
        ),
        "Completely unrelated filler text with no entity names.".to_string(),
    ];
    let index: parking_lot::RwLock<NewsLinkIndex> =
        parking_lot::RwLock::new(engine.index_corpus(&docs));

    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(&engine, &index));
        // A failed assertion must still shut the server down, or the
        // scope would deadlock joining the accept loop.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&handle, &server)));
        handle.shutdown();
        runner.join().expect("server thread").expect("server run");
        match result {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"))
}

#[test]
fn search_happy_path_over_tcp() {
    let fixture = Fixture::new(11);
    with_server(ServeConfig::default().with_workers(2), &fixture, |handle, _| {
        let body = format!(
            r#"{{"query": "News about {}.", "k": 3, "explain": true}}"#,
            fixture.country
        );
        let (status, text) = client::request(handle.addr(), "POST", "/search", &body).unwrap();
        assert_eq!(status, 200, "body: {text}");
        let v = parse(&text);
        let results = v["results"].as_array().expect("results array");
        assert!(!results.is_empty(), "entity query must hit");
        // DocId is a newtype, so it serializes transparently as a number.
        let top_doc = results[0]["doc"]
            .as_i64()
            .unwrap_or_else(|| panic!("doc id missing in {text}"));
        assert!(top_doc < 2, "entity-bearing docs outrank filler");
        assert!(results[0]["score"].as_f64().unwrap() > 0.0);
        // Explanations ride along, aligned with results.
        assert_eq!(
            v["explanations"].as_array().map(|a| a.len()),
            Some(results.len())
        );
        assert_eq!(v["timed_out"], false);
        assert_eq!(v["cache"]["enabled"], true);
        // The component timer doubles as a per-request latency report.
        assert_eq!(v["timer"]["nlp"]["count"], 1u64);
    });
}

#[test]
fn batch_endpoint_answers_all_requests_in_order() {
    let fixture = Fixture::new(12);
    with_server(ServeConfig::default(), &fixture, |handle, _| {
        let body = format!(
            r#"{{"requests": [
                {{"query": "news about {c}"}},
                {{"query": "events in {t}", "beta": 1.0}},
                {{"query": "news about {c}"}}
            ]}}"#,
            c = fixture.country,
            t = fixture.city
        );
        let (status, text) =
            client::request(handle.addr(), "POST", "/search/batch", &body).unwrap();
        assert_eq!(status, 200, "body: {text}");
        let v = parse(&text);
        let responses = v["responses"].as_array().expect("responses");
        assert_eq!(responses.len(), 3);
        // The third request repeats the first: the shared engine cache
        // answers it from the whole-query memo.
        assert_eq!(responses[2]["cache"]["query_hit"], true);
        // Pure-BON request: every hit's BOW side is zero.
        for hit in responses[1]["results"].as_array().unwrap() {
            assert_eq!(hit["bow"].as_f64(), Some(0.0));
        }
        assert_eq!(v["timer"]["batch"]["count"], 1u64);
    });
}

#[test]
fn malformed_and_unroutable_requests() {
    let fixture = Fixture::new(13);
    with_server(ServeConfig::default(), &fixture, |handle, _| {
        // Not JSON at all.
        let (status, text) = client::request(handle.addr(), "POST", "/search", "{oops").unwrap();
        assert_eq!(status, 400);
        assert!(parse(&text)["error"]["message"].as_str().is_some());
        // Valid JSON, wrong shape.
        let (status, _) = client::request(handle.addr(), "POST", "/search", r#"{"k": 3}"#).unwrap();
        assert_eq!(status, 400);
        // Unknown fields are rejected, not ignored.
        let (status, text) =
            client::request(handle.addr(), "POST", "/search", r#"{"query":"q","knn":1}"#).unwrap();
        assert_eq!(status, 400);
        assert!(text.contains("knn"), "error names the field: {text}");
        // Unknown route and wrong method.
        let (status, _) = client::request(handle.addr(), "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client::request(handle.addr(), "GET", "/search", "").unwrap();
        assert_eq!(status, 405);
        // A body declared over the cap is rejected from the head alone,
        // before any of it is read.
        use std::io::Write;
        let mut big = TcpStream::connect(handle.addr()).unwrap();
        big.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        big.write_all(
            b"POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: 2097152\r\n\r\n",
        )
        .unwrap();
        let (status, _) = client::read_response(&mut big).unwrap();
        assert_eq!(status, 413);
    });
}

#[test]
fn zero_timeout_yields_503_with_partial_timer() {
    let fixture = Fixture::new(14);
    with_server(ServeConfig::default(), &fixture, |handle, _| {
        let body = format!(
            r#"{{"query": "news about {}", "timeout_ms": 0}}"#,
            fixture.country
        );
        let (status, text) = client::request(handle.addr(), "POST", "/search", &body).unwrap();
        assert_eq!(status, 503, "body: {text}");
        let v = parse(&text);
        assert_eq!(v["timed_out"], true);
        assert_eq!(v["results"].as_array().map(|a| a.len()), Some(0));
        // The partial timer shows where the budget went: analysis ran,
        // scoring never started.
        assert_eq!(v["timer"]["nlp"]["count"], 1u64);
        assert!(v["timer"]["ns"].is_null());
    });
}

#[test]
fn over_capacity_connections_are_shed_with_429() {
    let fixture = Fixture::new(15);
    // One worker, no queue: the second concurrent connection must shed.
    let config = ServeConfig::default().with_workers(1).with_queue_depth(0);
    let body = format!(r#"{{"query": "news about {}"}}"#, fixture.country);
    with_server(config, &fixture, |handle, server| {
        // Occupy the whole capacity: send the request head but hold back
        // the body, so the connection stays in flight while the worker
        // blocks reading it.
        use std::io::Write;
        let mut hog = TcpStream::connect(handle.addr()).unwrap();
        hog.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let head = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        hog.write_all(head.as_bytes()).unwrap();
        hog.flush().unwrap();
        // Let the accept loop admit the hog before the next connection.
        std::thread::sleep(Duration::from_millis(50));

        // Capacity is 1 and the hog holds it: this connection sheds,
        // and the raw response carries a `Retry-After` hint so
        // well-behaved clients back off instead of hammering.
        let (status, headers, text) =
            client::request_with_headers(handle.addr(), "POST", "/search", &body).unwrap();
        assert_eq!(status, 429, "body: {text}");
        let retry_after = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
            .map(|(_, v)| v.as_str());
        assert_eq!(retry_after, Some("1"), "429 must carry Retry-After: {headers:?}");
        assert!(parse(&text)["error"]["message"].as_str().is_some());
        assert!(server.metrics().shed_total() >= 1);

        // The hog was never dropped: completing its body gets a real answer.
        hog.write_all(body.as_bytes()).unwrap();
        hog.flush().unwrap();
        let (status, text) = client::read_response(&mut hog).unwrap();
        assert_eq!(status, 200, "body: {text}");

        // Once the worker is free again, new requests are admitted.
        let (status, _) = client::request(handle.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
    });
}

#[test]
fn metrics_report_traffic_latency_and_cache_counters() {
    let fixture = Fixture::new(16);
    with_server(ServeConfig::default(), &fixture, |handle, _| {
        let body = format!(r#"{{"query": "news about {}"}}"#, fixture.country);
        for _ in 0..3 {
            let (status, _) = client::request(handle.addr(), "POST", "/search", &body).unwrap();
            assert_eq!(status, 200);
        }
        // /healthz is a JSON operational summary, not just a liveness
        // ping — but the bare-200 contract stays for load balancers.
        let (status, text) = client::request(handle.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        let h = parse(&text);
        assert_eq!(h["status"], "ok");
        assert_eq!(h["degraded"], false);
        assert_eq!(h["backend"], "memory");
        assert!(h["docs"].as_i64().unwrap() > 0, "{text}");
        assert!(h["segments"].as_i64().unwrap() > 0, "{text}");
        assert_eq!(h["version"].as_str().unwrap(), env!("CARGO_PKG_VERSION"));

        let (status, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        let v = parse(&text);
        assert!(v["requests_total"].as_i64().unwrap() >= 4);
        assert_eq!(v["routes"]["search"], 3u64);
        assert!(v["responses"]["ok"].as_i64().unwrap() >= 4);
        // Latency histogram has real samples.
        assert!(v["latency_us"]["count"].as_i64().unwrap() >= 4);
        assert!(v["latency_us"]["p50"].as_i64().is_some());
        assert!(!v["latency_us"]["buckets"].as_array().unwrap().is_empty());
        // Cache counters flowed through from the engine: the repeated
        // query produced whole-query memo hits.
        assert!(v["cache"]["queries"]["hits"].as_i64().unwrap() >= 2, "{text}");
        assert!(v["uptime_ms"].as_i64().unwrap() >= 0);
        // The knowledge-graph/resolver gauges are static but present.
        assert!(v["kg"]["nodes"].as_i64().unwrap() > 0, "{text}");
        assert!(v["kg"]["edges"].as_i64().unwrap() > 0, "{text}");
        assert!(v["kg"]["surfaces"].as_i64().unwrap() > 0, "{text}");
        assert_eq!(v["kg"]["resolver_backend"], "hash", "{text}");
        assert!(v["kg"]["resolver_bytes"].as_i64().unwrap() > 0, "{text}");
    });
}

#[test]
fn metrics_segment_gauges_move_with_live_inserts_and_compaction() {
    let fixture = Fixture::new(18);
    // A compaction threshold of 2 guarantees live inserts trigger merges.
    let engine_config = NewsLinkConfig::default().with_max_segments(2);
    with_server_engine(ServeConfig::default(), engine_config, &fixture, |handle, _| {
        let gauges = |label: &str| {
            let (status, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
            assert_eq!(status, 200, "{label}: {text}");
            let v = parse(&text);
            let g = |k: &str| v["index"][k].as_i64().unwrap_or_else(|| panic!("{label}: missing index.{k} in {text}"));
            (g("docs"), g("segments"), g("tombstones"), g("compactions"))
        };

        // The build-time corpus: one segment, nothing deleted or merged.
        assert_eq!(gauges("fresh"), (3, 1, 0, 0));

        // Three live inserts: each seals its own segment, and once the
        // count exceeds max_segments the insert path compacts in place.
        for i in 0..3 {
            let body = format!(
                r#"{{"text": "Late report {i} from {} about {}."}}"#,
                fixture.city, fixture.country
            );
            let (status, text) = client::request(handle.addr(), "POST", "/docs", &body).unwrap();
            assert_eq!(status, 200, "insert {i}: {text}");
            assert_eq!(parse(&text)["id"].as_i64(), Some(3 + i));
        }
        let (docs, segments, tombstones, compactions) = gauges("after inserts");
        assert_eq!(docs, 6);
        assert!(segments <= 2, "compaction keeps the segment count bounded");
        assert_eq!(tombstones, 0);
        assert!(compactions >= 2, "inserts past the cap compacted");

        // The inserted documents are immediately searchable.
        let query = format!(r#"{{"query": "late report about {}", "k": 6}}"#, fixture.country);
        let (status, text) = client::request(handle.addr(), "POST", "/search", &query).unwrap();
        assert_eq!(status, 200);
        let hits: Vec<i64> = parse(&text)["results"]
            .as_array()
            .unwrap()
            .iter()
            .map(|h| h["doc"].as_i64().unwrap())
            .collect();
        assert!(hits.iter().any(|&d| d >= 3), "a live-inserted doc ranks: {hits:?}");

        // Deleting tombstones without renumbering; the id 404s afterwards.
        let (status, text) = client::request(handle.addr(), "DELETE", "/docs/0", "").unwrap();
        assert_eq!(status, 200, "{text}");
        let (status, _) = client::request(handle.addr(), "DELETE", "/docs/0", "").unwrap();
        assert_eq!(status, 404, "double delete");
        let (docs, _, tombstones, _) = gauges("after delete");
        assert_eq!(docs, 5);
        assert_eq!(tombstones, 1);

        // Mutation-route error handling.
        let (status, _) = client::request(handle.addr(), "DELETE", "/docs/zero", "").unwrap();
        assert_eq!(status, 400, "non-numeric id");
        let (status, _) = client::request(handle.addr(), "GET", "/docs/0", "").unwrap();
        assert_eq!(status, 405, "wrong method on /docs/<id>");
        let (status, _) =
            client::request(handle.addr(), "POST", "/docs", r#"{"body": "x"}"#).unwrap();
        assert_eq!(status, 400, "unknown insert field");
    });
}

#[test]
fn v1_prefix_routes_and_legacy_paths_carry_deprecation_header() {
    let fixture = Fixture::new(19);
    with_server(ServeConfig::default(), &fixture, |handle, _| {
        let body = format!(r#"{{"query": "news about {}"}}"#, fixture.country);
        let has_deprecation = |headers: &[(String, String)]| {
            headers
                .iter()
                .any(|(n, v)| n.eq_ignore_ascii_case("deprecation") && v == "true")
        };

        // The versioned path is the canonical surface: no deprecation.
        let (status, headers, text) =
            client::request_with_headers(handle.addr(), "POST", "/v1/search", &body).unwrap();
        assert_eq!(status, 200, "body: {text}");
        assert!(!has_deprecation(&headers), "headers: {headers:?}");
        let v1_results = parse(&text)["results"].as_array().unwrap().len();

        // The legacy alias answers identically but flags itself.
        let (status, headers, text) =
            client::request_with_headers(handle.addr(), "POST", "/search", &body).unwrap();
        assert_eq!(status, 200);
        assert!(has_deprecation(&headers), "headers: {headers:?}");
        assert_eq!(parse(&text)["results"].as_array().unwrap().len(), v1_results);

        // Observability endpoints route under /v1 too.
        let (status, headers, text) =
            client::request_with_headers(handle.addr(), "GET", "/v1/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert!(!has_deprecation(&headers));
        assert_eq!(parse(&text)["status"], "ok");
        let (status, _, _) =
            client::request_with_headers(handle.addr(), "GET", "/v1/metrics", "").unwrap();
        assert_eq!(status, 200);

        // Errors are typed envelopes with machine-readable codes.
        let (status, _, text) =
            client::request_with_headers(handle.addr(), "POST", "/v1/search", "{oops").unwrap();
        assert_eq!(status, 400);
        let v = parse(&text);
        assert_eq!(v["error"]["code"], "bad_request");
        assert!(v["error"]["message"].as_str().is_some());
        let (status, headers, text) =
            client::request_with_headers(handle.addr(), "GET", "/v1/nope", "").unwrap();
        assert_eq!(status, 404);
        assert_eq!(parse(&text)["error"]["code"], "not_found");
        // An unknown path is not a legacy alias of anything.
        assert!(!has_deprecation(&headers));
        let (status, _, text) =
            client::request_with_headers(handle.addr(), "GET", "/v1/search", "").unwrap();
        assert_eq!(status, 405);
        assert_eq!(parse(&text)["error"]["code"], "method_not_allowed");
        // "/v1" alone names no endpoint.
        let (status, _, _) =
            client::request_with_headers(handle.addr(), "GET", "/v1", "").unwrap();
        assert_eq!(status, 404);
    });
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let fixture = Fixture::new(17);
    let config = ServeConfig::default().with_workers(1);
    let body = format!(r#"{{"query": "news about {}"}}"#, fixture.country);
    with_server(config, &fixture, |handle, _| {
        // Start a request but hold back the last byte of the body so it
        // is accepted and in flight when shutdown triggers.
        let mut slow = TcpStream::connect(handle.addr()).unwrap();
        slow.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        use std::io::Write;
        let head = format!(
            "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        slow.write_all(head.as_bytes()).unwrap();
        slow.write_all(&body.as_bytes()[..body.len() - 1]).unwrap();
        slow.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100)); // let it reach the worker

        assert!(handle.shutdown(), "trigger graceful shutdown");

        // Finish the body after shutdown: the in-flight request must
        // still be served to completion.
        slow.write_all(&body.as_bytes()[body.len() - 1..]).unwrap();
        slow.flush().unwrap();
        let (status, text) = client::read_response(&mut slow).unwrap();
        assert_eq!(status, 200, "drained request completes: {text}");
        assert!(!parse(&text)["results"].as_array().unwrap().is_empty());
    });
    // with_server returning proves run() unblocked and the pool joined.
}
