//! The cluster, for real: spawn the release binary as two shard groups
//! of two replicas each (every shard durable on its own `--data-dir`),
//! put a router in front, and prove the headline claims over raw TCP:
//!
//! - the router's merged answer is identical to one standalone process
//!   serving the whole corpus;
//! - `kill -9` a primary and searches keep answering `200` by failing
//!   over to the secondary, within the same request;
//! - writes to a group with a dead primary are refused (`503`) and
//!   never acknowledged — no silent forking onto a secondary;
//! - kill the *whole* group and searches degrade honestly: `503`,
//!   `"degraded": true`, partial results from the surviving group;
//! - restart the primary on its old address and data dir: the cluster
//!   heals and every acknowledged write is still there (WAL replay).
//!
//! Ignored by default because it needs `target/release/newslink`;
//! `scripts/tier1.sh` builds release first and runs it with
//! `-- --ignored`.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use newslink_serve::client;
use newslink_serve::cluster::fnv1a64;
use serde::Value;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn release_binary() -> PathBuf {
    let bin = workspace_root().join("target/release/newslink");
    assert!(
        bin.exists(),
        "release binary missing at {} — run `cargo build --release` first",
        bin.display()
    );
    bin
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("newslink_cluster_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run a one-shot `newslink` subcommand to completion.
fn run_tool(args: &[&str]) {
    let status = Command::new(release_binary())
        .args(args)
        .status()
        .expect("spawn newslink");
    assert!(status.success(), "newslink {args:?} failed");
}

/// A child server killed on drop, so a failing assertion never leaks
/// orphan processes (which would squat ports and hold pipes open for
/// the next run).
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl std::ops::Deref for ChildGuard {
    type Target = Child;
    fn deref(&self) -> &Child {
        &self.0
    }
}

impl std::ops::DerefMut for ChildGuard {
    fn deref_mut(&mut self) -> &mut Child {
        &mut self.0
    }
}

/// Spawn `newslink serve` with `args` and block until the startup
/// banner reveals the bound address.
fn spawn_server(args: &[&str]) -> (ChildGuard, SocketAddr) {
    let mut child = Command::new(release_binary())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn newslink serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        assert!(Instant::now() < deadline, "server never printed its banner");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "server exited before printing its banner: {args:?}");
        if let Some(rest) = line.split("on http://").nth(1) {
            let addr = rest.split_whitespace().next().expect("address after http://");
            break addr.parse::<SocketAddr>().expect("parse bound address");
        }
    };
    // Keep draining so later prints cannot fill the pipe and stall the child.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
    });
    (ChildGuard(child), addr)
}

/// Spawn one shard replica: `--shard-index`/`--shard-count` stripe the
/// corpus, `--data-dir` makes its writes durable.
fn spawn_shard(
    world: &Path,
    corpus: &Path,
    data_dir: &Path,
    shard: usize,
    of: usize,
    addr: &str,
) -> (ChildGuard, SocketAddr) {
    let (shard, of) = (shard.to_string(), of.to_string());
    spawn_server(&[
        "serve",
        "--world",
        world.to_str().expect("utf-8 path"),
        "--corpus",
        corpus.to_str().expect("utf-8 path"),
        "--addr",
        addr,
        "--workers",
        "2",
        "--data-dir",
        data_dir.to_str().expect("utf-8 path"),
        "--shard-index",
        &shard,
        "--shard-count",
        &of,
    ])
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"))
}

fn get(addr: SocketAddr, path: &str) -> (u16, Value) {
    let (status, text) = client::request(addr, "GET", path, "").expect("GET");
    (status, parse(&text))
}

fn search(addr: SocketAddr, query: &str, k: usize) -> (u16, Value) {
    let body = format!(r#"{{"query": {query:?}, "k": {k}}}"#);
    let (status, text) = client::request(addr, "POST", "/v1/search", &body).expect("POST /v1/search");
    (status, parse(&text))
}

/// Result doc ids of a parsed search response.
fn doc_ids(v: &Value) -> Vec<i64> {
    v.get("results")
        .and_then(Value::as_array)
        .expect("results array")
        .iter()
        .map(|h| h.get("doc").and_then(Value::as_i64).expect("doc id"))
        .collect()
}

/// The first `"{prefix} {i}."` the router's content hash sends to
/// `group` (of two) — so the test never guesses where a text routes.
fn text_for_group(prefix: &str, group: u64) -> String {
    (0..)
        .map(|i| format!("{prefix} {i}."))
        .find(|t| fnv1a64(t.as_bytes()) % 2 == group)
        .expect("some suffix hashes to the group")
}

#[test]
#[ignore = "needs target/release/newslink; run via scripts/tier1.sh"]
fn router_survives_primary_kill_and_loses_no_acked_write() {
    let dir = temp_dir("failover");
    let world = dir.join("kg.tsv");
    let corpus = dir.join("corpus.txt");
    run_tool(&["generate-world", "--scale", "small", "--out", world.to_str().expect("path")]);
    run_tool(&[
        "generate-corpus",
        "--world",
        world.to_str().expect("path"),
        "--docs",
        "12",
        "--out",
        corpus.to_str().expect("path"),
    ]);
    let world_s = world.to_str().expect("path");

    // Typed CLI validation: a malformed --shards must refuse to start.
    for bad in ["", "a:1|,b:2", "127.0.0.1:1,127.0.0.1:1", "nonsense"] {
        let out = Command::new(release_binary())
            .args(["serve", "--world", world_s, "--mode", "router", "--shards", bad])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "--shards {bad:?} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--shards"), "error names the flag: {err}");
    }

    // Two groups × two replicas, each shard durable in its own dir.
    let (mut p0, p0_addr) = spawn_shard(&world, &corpus, &dir.join("p0"), 0, 2, "127.0.0.1:0");
    let (mut s0, s0_addr) = spawn_shard(&world, &corpus, &dir.join("s0"), 0, 2, "127.0.0.1:0");
    let (mut p1, p1_addr) = spawn_shard(&world, &corpus, &dir.join("p1"), 1, 2, "127.0.0.1:0");
    let (mut s1, s1_addr) = spawn_shard(&world, &corpus, &dir.join("s1"), 1, 2, "127.0.0.1:0");
    let shards = format!("{p0_addr}|{s0_addr},{p1_addr}|{s1_addr}");
    let (mut router, router_addr) = spawn_server(&[
        "serve", "--world", world_s, "--addr", "127.0.0.1:0", "--mode", "router", "--shards",
        &shards,
    ]);
    // One standalone process over the whole corpus: the merge oracle.
    let (mut mono, mono_addr) = spawn_server(&[
        "serve",
        "--world",
        world_s,
        "--corpus",
        corpus.to_str().expect("path"),
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
    ]);

    // Router healthz: the JSON body says what this node is.
    let (status, v) = get(router_addr, "/v1/healthz");
    assert_eq!(status, 200);
    assert_eq!(v["status"], "ok");
    assert_eq!(v["backend"], "router");
    assert_eq!(v["degraded"], false);

    // Scatter-gather answers exactly what the single process answers —
    // same docs, same score text (both sides print the same f64 bits).
    let first_line = std::fs::read_to_string(&corpus)
        .expect("read corpus")
        .lines()
        .next()
        .expect("non-empty corpus")
        .to_string();
    let query: String = first_line.split_whitespace().take(5).collect::<Vec<_>>().join(" ");
    let (status, routed) = search(router_addr, &query, 8);
    assert_eq!(status, 200, "{routed:?}");
    assert_eq!(routed["degraded"], false);
    let (status, solo) = search(mono_addr, &query, 8);
    assert_eq!(status, 200);
    assert!(!doc_ids(&solo).is_empty(), "oracle query must hit: {query:?}");
    assert_eq!(
        routed.get("results"),
        solo.get("results"),
        "router merge must be identical to the single process"
    );
    mono.kill().expect("kill oracle");
    mono.wait().expect("reap oracle");

    // Four inserts through the router, two per group (texts picked by
    // the same content hash the router routes with). Interleaved so the
    // minted ids are deterministic: 12, 13, 14, 15.
    let (mut group0_texts, mut group1_texts) = (Vec::new(), Vec::new());
    let mut i = 0;
    while group0_texts.len() < 2 || group1_texts.len() < 2 {
        let text = format!("Survivor document number {i}.");
        let target = if fnv1a64(text.as_bytes()).is_multiple_of(2) {
            &mut group0_texts
        } else {
            &mut group1_texts
        };
        if target.len() < 2 {
            target.push(text);
        }
        i += 1;
    }
    let mut acked = Vec::new();
    for pair in group0_texts.iter().zip(&group1_texts) {
        for (text, group) in [(pair.0, 0), (pair.1, 1)] {
            let body = format!(r#"{{"text": {text:?}}}"#);
            let (status, text) =
                client::request(router_addr, "POST", "/v1/docs", &body).expect("insert");
            assert_eq!(status, 200, "{text}");
            let v = parse(&text);
            let id = v["id"].as_i64().expect("minted id");
            assert_eq!(v["shard_group"].as_i64(), Some(group), "{text}");
            assert_eq!(id % 2, group, "ids mint on the owning shard's stripe");
            acked.push(id);
        }
    }
    assert_eq!(acked, vec![12, 13, 14, 15]);
    let (status, v) = search(router_addr, "Survivor document number", 20);
    assert_eq!(status, 200);
    let ids = doc_ids(&v);
    for id in &acked {
        assert!(ids.contains(id), "inserted doc {id} must be searchable: {ids:?}");
    }

    // SIGKILL the group-0 primary: reads fail over to the secondary
    // within the same request — still 200, not degraded.
    p0.kill().expect("kill -9 p0");
    p0.wait().expect("reap p0");
    let (status, v) = search(router_addr, &query, 8);
    assert_eq!(status, 200, "failover search: {v:?}");
    assert_eq!(v["degraded"], false);
    let (status, m) = get(router_addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert!(
        m["cluster"]["groups"][0]["failovers"].as_i64().expect("failovers") >= 1,
        "{m:?}"
    );

    // Writes must NOT fail over (the secondary does not own the WAL):
    // an insert routed to the dead primary's group is refused.
    let unacked = text_for_group("Unacked zulu", 0);
    let body = format!(r#"{{"text": {unacked:?}}}"#);
    let (status, text) = client::request(router_addr, "POST", "/v1/docs", &body).expect("insert");
    assert_eq!(status, 503, "dead primary refuses writes: {text}");
    // The healthy group still takes writes.
    let body = format!(r#"{{"text": {:?}}}"#, text_for_group("Failback", 1));
    let (status, text) = client::request(router_addr, "POST", "/v1/docs", &body).expect("insert");
    assert_eq!(status, 200, "{text}");

    // Kill the secondary too: group 0 is gone. The router answers 503
    // with the partial results it could gather and says so.
    s0.kill().expect("kill -9 s0");
    s0.wait().expect("reap s0");
    let (status, v) = search(router_addr, "Survivor document number", 20);
    assert_eq!(status, 503, "whole group down: {v:?}");
    assert_eq!(v["degraded"], true);
    let ids = doc_ids(&v);
    assert!(!ids.is_empty(), "partial results from the surviving group");
    assert!(ids.iter().all(|id| id % 2 == 1), "only group-1 docs remain: {ids:?}");
    let (_, h) = get(router_addr, "/v1/healthz");
    assert_eq!(h["status"], "degraded");
    assert_eq!(h["degraded"], true);

    // Restart the primary on its old address and data dir: WAL replay
    // brings back every acknowledged write, and the router heals on the
    // next call (a group with no healthy replica retries cold ones).
    let (mut p0, _) = spawn_shard(
        &world,
        &corpus,
        &dir.join("p0"),
        0,
        2,
        &p0_addr.to_string(),
    );
    let (status, v) = search(router_addr, "Survivor document number", 20);
    assert_eq!(status, 200, "healed search: {v:?}");
    assert_eq!(v["degraded"], false);
    let ids = doc_ids(&v);
    for id in &acked {
        assert!(ids.contains(id), "acked write {id} survived the kill: {ids:?}");
    }
    // The refused write really was never applied anywhere.
    let (status, v) = search(router_addr, "Unacked zulu", 20);
    assert_eq!(status, 200);
    assert!(
        doc_ids(&v).iter().all(|&id| id < 12),
        "the 503'd insert must not exist: {v:?}"
    );
    // The restarted shard itself confirms the replay.
    let (status, m) = get(p0_addr, "/v1/metrics");
    assert_eq!(status, 200);
    assert_eq!(m["index"]["docs"], 8u64, "6 striped + 2 acked inserts: {m:?}");
    assert!(m["durability"]["wal_records_replayed"].as_i64().expect("replay") >= 2);

    for child in [&mut p0, &mut p1, &mut s1, &mut router] {
        child.kill().expect("cleanup kill");
        child.wait().expect("reap");
    }
    std::fs::remove_dir_all(&dir).ok();
}
