//! Property test for the cluster layer's core guarantee: a router
//! scatter-gathering real shard servers over TCP merges to the **same
//! bits** an in-process multi-segment search produces over the union.
//!
//! Each case builds a corpus, runs it two ways — one standalone server
//! holding everything, and a router in front of 1–4 single-replica
//! shard groups each holding its id stripe — drives identical deletes
//! and searches into both, and requires the `results` (and the
//! explanations riding along) to compare equal. Scores travel the wire
//! as `f64` bit patterns and both sides format responses with the same
//! serializer, so JSON-level equality here is bit-level equality of the
//! blended scores.

use std::net::SocketAddr;

use newslink_core::{NewsLink, NewsLinkConfig, NewsLinkIndex};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_serve::{client, Cluster, ResilienceConfig, ServeConfig, Server};
use newslink_util::chaos::{ChaosProxy, Fault, FaultPlan};
use parking_lot::RwLock;
use proptest::prelude::*;
use serde::Value;

/// A small fixed world: enough entities that documents collide on both
/// the BOW side (shared filler words) and the BON side (shared graph
/// neighborhoods).
fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    let unhcr = b.add_node("UNHCR", EntityType::Organization);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    b.add_edge(unhcr, kabul, "operates in", 1);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

const VOCAB: &[&str] = &[
    "Khyber", "Kunar", "Taliban", "Pakistan", "Kabul", "UNHCR", "trade", "talks", "storm",
    "attack", "aid", "festival",
];

fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..12)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" ") + ".")
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..5)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" "))
}

/// `(query, beta, k)` — beta from the interesting points of the blend
/// (pure BOW, paper default, even blend, pure BON).
fn search_strategy() -> impl Strategy<Value = (String, f64, usize)> {
    (query_strategy(), 0..4usize, 1usize..6)
        .prop_map(|(q, b, k)| (q, [0.0, 0.2, 0.5, 1.0][b], k))
}

/// A corpus plus delete targets drawn from its id range (duplicates
/// stay in: the second delete must 404 identically on both sides).
fn corpus_and_deletes() -> impl Strategy<Value = (Vec<String>, Vec<u32>)> {
    prop::collection::vec(doc_strategy(), 1..10).prop_flat_map(|docs| {
        let len = docs.len() as u32;
        (Just(docs), prop::collection::vec(0..len, 0..4))
    })
}

/// Issue the same deletes and searches to both servers and demand
/// equal statuses and bit-equal result payloads.
fn drive(mono: SocketAddr, router: SocketAddr, deletes: &[u32], searches: &[(String, f64, usize)]) {
    for &id in deletes {
        let path = format!("/v1/docs/{id}");
        let (ms, mb) = client::request(mono, "DELETE", &path, "").expect("mono delete");
        let (rs, rb) = client::request(router, "DELETE", &path, "").expect("router delete");
        assert_eq!(ms, rs, "delete {id}: mono said {mb}, router said {rb}");
    }
    for (query, beta, k) in searches {
        let body = format!(r#"{{"query": {query:?}, "k": {k}, "beta": {beta}, "explain": true}}"#);
        let (ms, mtext) = client::request(mono, "POST", "/v1/search", &body).expect("mono search");
        let (rs, rtext) =
            client::request(router, "POST", "/v1/search", &body).expect("router search");
        assert_eq!(ms, 200, "mono: {mtext}");
        assert_eq!(rs, 200, "router: {rtext}");
        let m: Value = serde_json::from_str(&mtext).expect("mono json");
        let r: Value = serde_json::from_str(&rtext).expect("router json");
        let label = format!("query {query:?} beta {beta} k {k}");
        assert_eq!(
            m.get("results"),
            r.get("results"),
            "{label}: results diverge\nmono:   {mtext}\nrouter: {rtext}"
        );
        assert_eq!(
            m.get("explanations"),
            r.get("explanations"),
            "{label}: explanations diverge"
        );
        assert_eq!(r.get("degraded"), Some(&Value::Bool(false)), "{label}: {rtext}");
    }
}

/// One full comparison at a given shard count: standalone server vs
/// router over `shard_count` single-replica groups, all real TCP.
fn run_cluster_case(
    texts: &[String],
    shard_count: u32,
    deletes: &[u32],
    searches: &[(String, f64, usize)],
) {
    let (graph, labels) = world();
    // Multi-segment on both sides: the merge invariants must hold for
    // the layered case (segments within shards within the cluster).
    let config = NewsLinkConfig::default().with_segment_docs(2);
    let engine = NewsLink::new(&graph, &labels, config);

    let mono_index = RwLock::new(engine.index_corpus(texts));
    let mut shard_indexes: Vec<RwLock<NewsLinkIndex>> = Vec::new();
    for s in 0..shard_count {
        let mut idx = engine.index_corpus_sharded(texts, s, shard_count);
        idx.set_id_stripe(s, shard_count);
        shard_indexes.push(RwLock::new(idx));
    }

    // A short idle read timeout so shutdown does not wait out the
    // default 5s drain for every connection the router left parked.
    let serve_config = ServeConfig {
        read_timeout_ms: 250,
        ..ServeConfig::default()
    };
    let mono = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind mono");
    let shard_servers: Vec<Server> = (0..shard_count)
        .map(|_| Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind shard"))
        .collect();
    let groups: Vec<Vec<SocketAddr>> =
        shard_servers.iter().map(|s| vec![s.local_addr()]).collect();
    let cluster = Cluster::new(groups);
    let router = Server::bind("127.0.0.1:0", serve_config).expect("bind router");

    let mono_handle = mono.handle();
    let router_handle = router.handle();
    let shard_handles: Vec<_> = shard_servers.iter().map(Server::handle).collect();

    // `move` closures below must capture shared references, not the
    // owning locals.
    let (engine, mono_index, cluster) = (&engine, &mono_index, &cluster);
    let (mono, router) = (&mono, &router);
    std::thread::scope(|scope| {
        scope.spawn(move || mono.run(engine, mono_index));
        for (srv, idx) in shard_servers.iter().zip(&shard_indexes) {
            scope.spawn(move || srv.run(engine, idx));
        }
        scope.spawn(move || router.run_router(engine, cluster));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive(mono_handle.addr(), router_handle.addr(), deletes, searches)
        }));
        router_handle.shutdown();
        for h in &shard_handles {
            h.shutdown();
        }
        mono_handle.shutdown();
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
}

/// The chaos dimension: the same bit-equality property, but the first
/// replica of every group sits behind a seeded [`ChaosProxy`] injecting
/// recoverable faults (latency, short writes, throttling), with a
/// healthy sibling replica to fail over to. The resilience layer must
/// absorb every fault without changing a single bit of the answer —
/// loss shows up as a degraded 503 (which `drive` rejects), never as a
/// silently truncated 200.
fn run_chaos_case(texts: &[String], chaos_seed: u64, searches: &[(String, f64, usize)]) {
    let (graph, labels) = world();
    let config = NewsLinkConfig::default().with_segment_docs(2);
    let engine = NewsLink::new(&graph, &labels, config);
    let shard_count = 2u32;

    let mono_index = RwLock::new(engine.index_corpus(texts));
    let mut shard_indexes: Vec<RwLock<NewsLinkIndex>> = Vec::new();
    for s in 0..shard_count {
        let mut idx = engine.index_corpus_sharded(texts, s, shard_count);
        idx.set_id_stripe(s, shard_count);
        shard_indexes.push(RwLock::new(idx));
    }

    let serve_config = ServeConfig {
        read_timeout_ms: 250,
        ..ServeConfig::default()
    };
    let mono = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind mono");
    // Two replicas per group over the group's shared index: the first
    // behind a seeded proxy mixing benign faults, the second direct.
    let replica_servers: Vec<Vec<Server>> = (0..shard_count)
        .map(|_| {
            (0..2)
                .map(|_| Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind replica"))
                .collect()
        })
        .collect();
    let plan = |group: u64| {
        FaultPlan::seeded(
            chaos_seed ^ group,
            vec![
                (3, Fault::None),
                (2, Fault::Delay { ms: 8, jitter_ms: 4 }),
                (2, Fault::ShortWrite { keep_bytes: 48 }),
                (2, Fault::Throttle { bytes_per_sec: 50_000 }),
            ],
        )
    };
    let proxies: Vec<ChaosProxy> = replica_servers
        .iter()
        .enumerate()
        .map(|(g, group)| {
            ChaosProxy::spawn(group[0].local_addr(), plan(g as u64)).expect("spawn proxy")
        })
        .collect();
    let groups: Vec<Vec<SocketAddr>> = proxies
        .iter()
        .zip(&replica_servers)
        .map(|(proxy, group)| vec![proxy.addr(), group[1].local_addr()])
        .collect();
    let resilience = ResilienceConfig {
        retry_budget: 1.0,
        ..ResilienceConfig::default()
    };
    let cluster = Cluster::with_config(groups, resilience);
    let router = Server::bind("127.0.0.1:0", serve_config).expect("bind router");

    let mono_handle = mono.handle();
    let router_handle = router.handle();
    let replica_handles: Vec<_> = replica_servers.iter().flatten().map(Server::handle).collect();

    let (engine, mono_index, cluster) = (&engine, &mono_index, &cluster);
    let (mono, router) = (&mono, &router);
    let replica_servers = &replica_servers;
    std::thread::scope(|scope| {
        scope.spawn(move || mono.run(engine, mono_index));
        for (group, idx) in replica_servers.iter().zip(&shard_indexes) {
            for srv in group {
                scope.spawn(move || srv.run(engine, idx));
            }
        }
        scope.spawn(move || router.run_router(engine, cluster));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Searches only: writes route to the group primary (the
            // proxied replica) by design and are not failover-eligible,
            // so a torn write would legitimately surface as an error.
            drive(mono_handle.addr(), router_handle.addr(), &[], searches)
        }));
        router_handle.shutdown();
        for h in &replica_handles {
            h.shutdown();
        }
        mono_handle.shutdown();
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: for any corpus, tombstone set, query,
    /// beta, and k, the router's merged answer is bit-identical to the
    /// in-process answer — at every shard count from one (degenerate
    /// cluster) to four (more groups than some corpora have docs, so
    /// empty shards are covered too).
    #[test]
    fn router_merge_is_bit_identical_to_in_process(
        (texts, deletes) in corpus_and_deletes(),
        searches in prop::collection::vec(search_strategy(), 1..3),
    ) {
        for shard_count in 1..=4u32 {
            run_cluster_case(&texts, shard_count, &deletes, &searches);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Chaos property: under any seed's mix of recoverable injected
    /// faults, the router's answer stays bit-identical to the oracle —
    /// the resilience layer recovers (retries, fails over) rather than
    /// truncating, and never fakes a clean 200 out of a lossy path.
    #[test]
    fn router_merge_survives_recoverable_chaos_bit_identical(
        texts in prop::collection::vec(doc_strategy(), 3..10),
        chaos_seed in any::<u64>(),
        searches in prop::collection::vec(search_strategy(), 2..4),
    ) {
        run_chaos_case(&texts, chaos_seed, &searches);
    }
}
