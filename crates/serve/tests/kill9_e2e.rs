//! The real thing: spawn the release `newslink serve --data-dir` binary,
//! mutate it over TCP, `kill -9` it mid-flight, restart it on the same
//! directory, and verify every acknowledged mutation survived.
//!
//! Ignored by default because it needs `target/release/newslink` to
//! exist; `scripts/tier1.sh` builds release first and then runs it with
//! `-- --ignored`.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use newslink_serve::client;
use serde::Value;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn release_binary() -> PathBuf {
    let bin = workspace_root().join("target/release/newslink");
    assert!(
        bin.exists(),
        "release binary missing at {} — run `cargo build --release` first",
        bin.display()
    );
    bin
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("newslink_kill9_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run a one-shot `newslink` subcommand to completion.
fn run_tool(args: &[&str]) {
    let status = Command::new(release_binary())
        .args(args)
        .status()
        .expect("spawn newslink");
    assert!(status.success(), "newslink {args:?} failed");
}

/// Spawn `newslink serve` and block until its startup banner reveals the
/// bound address. The child's stdout stays piped (and is drained by a
/// thread) so the server never blocks on a full pipe.
fn spawn_server(
    world: &Path,
    corpus: &Path,
    data_dir: &Path,
    storage: &str,
) -> (Child, SocketAddr) {
    let mut child = Command::new(release_binary())
        .args([
            "serve",
            "--world",
            world.to_str().expect("utf-8 path"),
            "--corpus",
            corpus.to_str().expect("utf-8 path"),
            "--addr",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 path"),
            "--workers",
            "2",
            "--storage",
            storage,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn newslink serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        assert!(Instant::now() < deadline, "server never printed its banner");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "server exited before printing its banner");
        if let Some(rest) = line.split("on http://").nth(1) {
            let addr = rest.split_whitespace().next().expect("address after http://");
            break addr.parse::<SocketAddr>().expect("parse bound address");
        }
    };
    // Keep draining so later prints cannot fill the pipe and stall the child.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).is_ok_and(|n| n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"))
}

fn metrics(addr: SocketAddr) -> Value {
    let (status, text) = client::request(addr, "GET", "/metrics", "").expect("GET /metrics");
    assert_eq!(status, 200, "{text}");
    parse(&text)
}

#[test]
#[ignore = "needs target/release/newslink; run via scripts/tier1.sh"]
fn sigkill_loses_no_acknowledged_mutation_heap() {
    sigkill_loses_no_acknowledged_mutation("heap");
}

#[test]
#[ignore = "needs target/release/newslink; run via scripts/tier1.sh"]
fn sigkill_loses_no_acknowledged_mutation_mmap() {
    sigkill_loses_no_acknowledged_mutation("mmap");
}

fn sigkill_loses_no_acknowledged_mutation(storage: &str) {
    let dir = temp_dir(storage);
    let world = dir.join("kg.tsv");
    let corpus = dir.join("corpus.txt");
    let data_dir = dir.join("data");
    run_tool(&["generate-world", "--scale", "small", "--out", world.to_str().expect("path")]);
    run_tool(&[
        "generate-corpus",
        "--world",
        world.to_str().expect("path"),
        "--docs",
        "12",
        "--out",
        corpus.to_str().expect("path"),
    ]);

    // First lifetime: mutate, then die without warning.
    let (mut child, addr) = spawn_server(&world, &corpus, &data_dir, storage);
    let base_docs = metrics(addr)["index"]["docs"].as_i64().expect("docs gauge");
    assert_eq!(base_docs, 12);

    for i in 0..3 {
        let body = format!(r#"{{"text": "Survivor document number {i}."}}"#);
        let (status, text) = client::request(addr, "POST", "/docs", &body).expect("POST /docs");
        assert_eq!(status, 200, "insert {i}: {text}");
    }
    let (status, text) = client::request(addr, "DELETE", "/docs/0", "").expect("DELETE");
    assert_eq!(status, 200, "{text}");
    let v = metrics(addr);
    assert_eq!(v["index"]["docs"], 14u64);
    assert_eq!(v["durability"]["wal_appends"], 4u64);

    // SIGKILL: no drop handlers, no flush, no goodbye.
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // Second lifetime on the same directory: the WAL replays.
    let (mut child, addr) = spawn_server(&world, &corpus, &data_dir, storage);
    let v = metrics(addr);
    assert_eq!(
        v["index"]["docs"], 14u64,
        "12 built + 3 inserted - 1 deleted survive the kill: {v:?}"
    );
    assert_eq!(v["durability"]["wal_records_replayed"], 4u64, "{v:?}");
    assert_eq!(v["durability"]["degraded"], false, "{v:?}");
    assert_eq!(v["durability"]["backend"], storage, "{v:?}");

    let (status, text) = client::request(addr, "GET", "/healthz", "").expect("GET /healthz");
    assert_eq!(status, 200);
    assert_eq!(parse(&text)["status"], "ok");

    // The replayed inserts are live and searchable; the delete held.
    let (status, text) = client::request(
        addr,
        "POST",
        "/search",
        r#"{"query": "survivor document", "k": 14}"#,
    )
    .expect("POST /search");
    assert_eq!(status, 200, "{text}");
    let (status, _) = client::request(addr, "DELETE", "/docs/0", "").expect("DELETE again");
    assert_eq!(status, 404, "doc 0 stayed deleted across the kill");

    child.kill().expect("cleanup kill");
    child.wait().expect("reap");
    std::fs::remove_dir_all(&dir).ok();
}
