//! End-to-end durability tests: run the server with a data directory,
//! mutate over real TCP, restart (new server, new store open, same
//! directory), and verify recovery — including a degraded start over a
//! deliberately corrupted snapshot.

use std::path::{Path, PathBuf};

use newslink_core::{
    segment_byte_spans, DurableStore, NewsLink, NewsLinkConfig, NewsLinkIndex, StorageBackend,
    StoreOptions,
};
use newslink_kg::{synth, KnowledgeGraph, LabelIndex, SynthConfig};
use newslink_serve::{client, DurableState, ServeConfig, Server, ServerHandle};
use serde::Value;

struct Fixture {
    graph: KnowledgeGraph,
    country: String,
    city: String,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let world = synth::generate(&SynthConfig::small(seed));
        let country = world.graph.label(world.countries[0]).to_string();
        let city = world.graph.label(world.cities[0]).to_string();
        Self {
            graph: world.graph,
            country,
            city,
        }
    }

    fn docs(&self) -> Vec<String> {
        vec![
            format!(
                "Tensions rose in {} as officials met in {}.",
                self.country, self.city
            ),
            format!(
                "A festival in {} drew visitors from across {}.",
                self.city, self.country
            ),
            "Completely unrelated filler text with no entity names.".to_string(),
        ]
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("newslink_serve_durable_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Open the store on `dir` with the given storage backend and run a
/// durable server for the duration of `f`. Each call is one "process
/// lifetime": dropping the store at the end and calling again models a
/// restart.
fn with_durable_server<R>(
    fixture: &Fixture,
    engine_config: NewsLinkConfig,
    dir: &Path,
    backend: StorageBackend,
    f: impl FnOnce(&ServerHandle, &DurableState) -> R,
) -> R {
    let labels = LabelIndex::build(&fixture.graph);
    let engine = NewsLink::new(&fixture.graph, &labels, engine_config);
    let docs = fixture.docs();
    let options = StoreOptions::new().backend(backend);
    let (store, index) =
        DurableStore::open_with(&engine, dir, &options, || engine.index_corpus(&docs))
            .expect("open store");
    let durable = DurableState::new(store);
    let index: parking_lot::RwLock<NewsLinkIndex> = parking_lot::RwLock::new(index);

    let server = Server::bind("127.0.0.1:0", ServeConfig::default().with_workers(2))
        .expect("bind ephemeral port");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run_durable(&engine, &index, Some(&durable)));
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&handle, &durable)));
        handle.shutdown();
        runner.join().expect("server thread").expect("server run");
        match result {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {e}: {body}"))
}

#[test]
fn acknowledged_mutations_survive_a_restart_heap() {
    restart_survives(StorageBackend::Heap);
}

#[test]
fn acknowledged_mutations_survive_a_restart_mmap() {
    restart_survives(StorageBackend::Mmap);
}

fn restart_survives(backend: StorageBackend) {
    let fixture = Fixture::new(21);
    let dir = temp_dir(&format!("restart_{backend}"));

    // First lifetime: insert one document, delete one, no checkpoint.
    with_durable_server(&fixture, NewsLinkConfig::default(), &dir, backend, |handle, _| {
        let body = format!(
            r#"{{"text": "Breaking report from {} about {}."}}"#,
            fixture.city, fixture.country
        );
        let (status, text) = client::request(handle.addr(), "POST", "/docs", &body).unwrap();
        assert_eq!(status, 200, "{text}");
        assert_eq!(parse(&text)["id"].as_i64(), Some(3));
        let (status, text) = client::request(handle.addr(), "DELETE", "/docs/0", "").unwrap();
        assert_eq!(status, 200, "{text}");

        // Both mutations were WAL-logged before they were acknowledged.
        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        let v = parse(&text);
        assert_eq!(v["durability"]["wal_appends"], 2u64, "{text}");
        let wal_bytes = v["durability"]["wal_bytes"].as_i64().unwrap();
        assert!(wal_bytes > 5, "{text}");

        // Deletes that answer 404 never touch the log: neither an
        // unknown id nor an already-deleted one pays an fsync or grows
        // the WAL.
        for missing in ["/docs/999", "/docs/0"] {
            let (status, text) =
                client::request(handle.addr(), "DELETE", missing, "").unwrap();
            assert_eq!(status, 404, "{missing}: {text}");
        }
        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        let v = parse(&text);
        assert_eq!(v["durability"]["wal_appends"], 2u64, "404s append nothing: {text}");
        assert_eq!(
            v["durability"]["wal_bytes"].as_i64().unwrap(),
            wal_bytes,
            "404s grow nothing: {text}"
        );
    });

    // Restart: the WAL replays over the snapshot.
    with_durable_server(&fixture, NewsLinkConfig::default(), &dir, backend, |handle, durable| {
        assert_eq!(durable.report().wal_records_replayed, 2);
        let (status, text) = client::request(handle.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(parse(&text)["status"], "ok");

        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        let v = parse(&text);
        assert_eq!(v["index"]["docs"], 3u64, "3 built + 1 inserted - 1 deleted: {text}");
        assert_eq!(v["durability"]["wal_records_replayed"], 2u64, "{text}");
        // Replay folded into a fresh snapshot: the WAL is back to its header.
        assert_eq!(v["durability"]["wal_bytes"], 5u64, "{text}");
        // The storage gauges name the backend serving the snapshot.
        assert_eq!(v["durability"]["backend"], backend.as_str(), "{text}");
        assert!(v["durability"]["snapshot_bytes"].as_i64().unwrap() > 0, "{text}");

        // The recovered document is searchable; the deleted one is gone.
        let query = format!(r#"{{"query": "breaking report about {}", "k": 6}}"#, fixture.country);
        let (status, text) = client::request(handle.addr(), "POST", "/search", &query).unwrap();
        assert_eq!(status, 200);
        let hits: Vec<i64> = parse(&text)["results"]
            .as_array()
            .unwrap()
            .iter()
            .map(|h| h["doc"].as_i64().unwrap())
            .collect();
        assert!(hits.contains(&3), "replayed insert ranks: {hits:?}");
        assert!(!hits.contains(&0), "replayed delete holds: {hits:?}");
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn admin_snapshot_checkpoints_and_resets_the_wal() {
    let fixture = Fixture::new(22);
    let dir = temp_dir("checkpoint");
    // Checkpoint while the snapshot is memory-mapped: atomic-rename
    // replacement must not disturb the live mapping.
    with_durable_server(&fixture, NewsLinkConfig::default(), &dir, StorageBackend::Mmap, |handle, _| {
        let body = format!(r#"{{"text": "Update from {}."}}"#, fixture.city);
        let (status, _) = client::request(handle.addr(), "POST", "/docs", &body).unwrap();
        assert_eq!(status, 200);

        let (status, text) =
            client::request(handle.addr(), "POST", "/admin/snapshot", "").unwrap();
        assert_eq!(status, 200, "{text}");
        let v = parse(&text);
        assert_eq!(v["checkpointed"], true);
        assert_eq!(v["docs"], 4u64);
        assert_eq!(v["wal_bytes"], 5u64, "WAL reset to its header: {text}");
        assert_eq!(v["snapshots"], 1u64);

        let (status, _) = client::request(handle.addr(), "GET", "/admin/snapshot", "").unwrap();
        assert_eq!(status, 405, "wrong method on the admin route");

        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(parse(&text)["durability"]["snapshots"], 1u64, "{text}");
    });

    // The checkpoint made the mutation part of the snapshot: a restart
    // replays nothing and still has all four documents.
    with_durable_server(&fixture, NewsLinkConfig::default(), &dir, StorageBackend::Mmap, |handle, durable| {
        assert_eq!(durable.report().wal_records_replayed, 0);
        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        assert_eq!(parse(&text)["index"]["docs"], 4u64, "{text}");
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_endpoint_without_data_dir_is_a_clear_400() {
    let fixture = Fixture::new(23);
    let labels = LabelIndex::build(&fixture.graph);
    let engine = NewsLink::new(&fixture.graph, &labels, NewsLinkConfig::default());
    let index = parking_lot::RwLock::new(engine.index_corpus(&fixture.docs()));
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let handle = server.handle();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run(&engine, &index));
        let (status, text) =
            client::request(handle.addr(), "POST", "/admin/snapshot", "").unwrap();
        assert_eq!(status, 400, "{text}");
        assert!(text.contains("--data-dir"), "error says how to enable: {text}");
        // And /metrics has no durability section at all.
        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        assert!(parse(&text)["durability"].is_null(), "{text}");
        handle.shutdown();
        runner.join().expect("server thread").expect("server run");
    });
}

#[test]
fn degraded_start_still_serves_and_reports_itself_heap() {
    degraded_start_still_serves(StorageBackend::Heap);
}

/// Corrupted-mapping path: the byte flips land in a block the mmap
/// reader serves straight from the page cache; the CRC check must
/// quarantine the section — no panic, no torn reads.
#[test]
fn degraded_start_still_serves_and_reports_itself_mmap() {
    degraded_start_still_serves(StorageBackend::Mmap);
}

fn degraded_start_still_serves(backend: StorageBackend) {
    let fixture = Fixture::new(24);
    let dir = temp_dir(&format!("degraded_{backend}"));
    // One document per segment, no compaction: the snapshot carries one
    // frame per document, so corrupting one loses exactly one document.
    let engine_config = NewsLinkConfig::default().with_segment_docs(1).with_max_segments(64);

    with_durable_server(&fixture, engine_config.clone(), &dir, backend, |handle, _| {
        // One extra WAL-only mutation, to prove replay works over a
        // degraded snapshot too.
        let body = format!(r#"{{"text": "Late extra from {}."}}"#, fixture.city);
        let (status, _) = client::request(handle.addr(), "POST", "/docs", &body).unwrap();
        assert_eq!(status, 200);
    });

    // Corrupt one byte inside the second segment's v4 section; the
    // format's own directory locates it, so this stays correct as the
    // physical layout evolves.
    let snapshot = dir.join("index.nlnk");
    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let spans = segment_byte_spans(&bytes).expect("v4 section directory");
    assert!(spans.len() >= 3, "one section per document");
    let (start, end) = spans[1];
    bytes[start + (end - start) / 2] ^= 0x40;
    std::fs::write(&snapshot, &bytes).expect("rewrite snapshot");

    with_durable_server(&fixture, engine_config, &dir, backend, |handle, durable| {
        assert!(durable.degraded());
        assert_eq!(durable.report().quarantined_segments, 1);

        // Health says degraded (still 200: up, but serving a subset).
        let (status, text) = client::request(handle.addr(), "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        let v = parse(&text);
        assert_eq!(v["status"], "degraded", "{text}");
        assert_eq!(v["quarantined_segments"], 1u64, "{text}");

        // Metrics carry the full recovery report.
        let (_, text) = client::request(handle.addr(), "GET", "/metrics", "").unwrap();
        let v = parse(&text);
        assert_eq!(v["durability"]["degraded"], true, "{text}");
        assert_eq!(v["durability"]["quarantined_segments"], 1u64, "{text}");
        assert_eq!(v["durability"]["wal_records_replayed"], 1u64, "{text}");
        assert_eq!(v["index"]["docs"], 3u64, "4 docs minus the quarantined one: {text}");

        // Searches over the survivors still answer.
        let query = format!(r#"{{"query": "news about {}", "k": 6}}"#, fixture.country);
        let (status, _) = client::request(handle.addr(), "POST", "/search", &query).unwrap();
        assert_eq!(status, 200);
    });

    // The degraded open deliberately did not overwrite the damaged
    // snapshot: the corrupted bytes are still there for an operator.
    assert_eq!(std::fs::read(&snapshot).expect("reread"), bytes);
    std::fs::remove_dir_all(&dir).ok();
}
