//! Fault-injection crash-recovery suite.
//!
//! The durability contract under test, at every injected failure offset:
//!
//! 1. reopening the index **never panics** — every torn or corrupted
//!    byte image produces a typed error or a degraded-but-valid load;
//! 2. every **acknowledged** mutation survives — a WAL append that
//!    returned before the crash is replayed exactly;
//! 3. no **unacknowledged** mutation is half-applied — a torn trailing
//!    record is truncated, never partially decoded;
//! 4. a load that quarantines a corrupt segment still serves queries
//!    over the surviving segments and says so in its [`LoadReport`].
//!
//! Failure shapes come from `newslink_util::failpoint` (deterministic
//! fail-at-byte-N writers) and from byte surgery on real files; crash
//! points are swept *exhaustively* over every offset where that is
//! affordable, and by proptest elsewhere.

use proptest::prelude::*;

use newslink_core::wal::{self, WalRecord, WAL_HEADER_LEN};
use newslink_core::{
    doc_ids, read_newslink_index, read_newslink_index_tolerant, segment_byte_spans,
    write_newslink_index, DurableStore, LoadReport, NewsLink, NewsLinkConfig, NewsLinkIndex,
};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_text::DocId;
use newslink_util::failpoint::{FailMode, FailReader, FailWriter};

fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

const BASE_DOCS: &[&str] = &[
    "Taliban attacked Kunar. Pakistan responded near Khyber.",
    "Pakistan held talks in Khyber.",
];

/// Mutation texts drawn on by the proptest op sequences.
const EXTRA_DOCS: &[&str] = &[
    "Kabul hosted a trade summit with Pakistan.",
    "Aid convoys reached Kunar after the storm.",
    "Khyber border crossings reopened for trade.",
    "UN observers toured Kabul and Khyber.",
];

fn ids(index: &NewsLinkIndex) -> Vec<DocId> {
    doc_ids(index).collect()
}

/// Assert `a` and `b` hold the same documents and rank a spread of
/// queries bit-identically.
fn assert_equivalent(engine: &NewsLink<'_>, a: &NewsLinkIndex, b: &NewsLinkIndex, label: &str) {
    assert_eq!(ids(a), ids(b), "{label}: doc ids");
    for q in ["Taliban near Kunar", "Pakistan trade", "Khyber aid"] {
        let ra = engine.search(a, q, 10);
        let rb = engine.search(b, q, 10);
        assert_eq!(ra.results.len(), rb.results.len(), "{label}: query {q}");
        for (x, y) in ra.results.iter().zip(&rb.results) {
            assert_eq!(x.doc, y.doc, "{label}: query {q}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: query {q}");
        }
    }
}

fn temp_dir(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "newslink_crash_recovery_{}_{tag}_{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// (1) Sweep every write offset of a snapshot: a crash mid-write leaves
/// a prefix, and reading that prefix back must error (strict) or load a
/// valid subset (tolerant) — never panic, never fabricate documents.
#[test]
fn snapshot_write_crash_at_every_offset_never_panics() {
    let (g, li) = world();
    let engine = NewsLink::new(
        &g,
        &li,
        NewsLinkConfig::default().with_segment_docs(1),
    );
    let index = engine.index_corpus(BASE_DOCS);
    let mut full = Vec::new();
    write_newslink_index(&index, &g, &mut full).unwrap();
    let original_ids = ids(&index);

    for budget in 0..full.len() {
        let mut w = FailWriter::new(Vec::new(), budget as u64, FailMode::ShortWrite);
        let err = write_newslink_index(&index, &g, &mut w)
            .expect_err("write must observe the injected failure");
        assert!(err.to_string().contains("failpoint"), "budget {budget}: {err}");
        let torn = w.into_inner();
        assert_eq!(torn[..], full[..budget], "failpoint must tear, not scramble");

        // Strict load: always a typed error, never a panic.
        assert!(
            read_newslink_index(&g, &mut &torn[..]).is_err(),
            "budget {budget}: a torn snapshot must never load strictly"
        );
        // Tolerant load: an error, or a valid subset of the documents.
        if let Ok((loaded, report)) = read_newslink_index_tolerant(&g, &mut &torn[..]) {
            let loaded_ids = ids(&loaded);
            for id in &loaded_ids {
                assert!(original_ids.contains(id), "budget {budget}: invented doc {id:?}");
            }
            assert!(
                loaded_ids.len() < original_ids.len(),
                "budget {budget}: a torn image cannot hold every document"
            );
            assert!(report.degraded(), "budget {budget}: loss must be reported");
            // The survivors still answer queries.
            let _ = engine.search(&loaded, "Pakistan talks", 5);
        }
    }
    // The full budget writes cleanly and loads cleanly.
    let mut w = FailWriter::new(Vec::new(), full.len() as u64, FailMode::ShortWrite);
    write_newslink_index(&index, &g, &mut w).unwrap();
    let back = read_newslink_index(&g, &mut &w.into_inner()[..]).unwrap();
    assert_equivalent(&engine, &index, &back, "full write");
}

/// (1b) The read side of the same sweep: media that dies after N bytes
/// yields a typed error at every N.
#[test]
fn snapshot_read_failure_at_every_offset_is_typed() {
    let (g, li) = world();
    let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
    let index = engine.index_corpus(BASE_DOCS);
    let mut full = Vec::new();
    write_newslink_index(&index, &g, &mut full).unwrap();
    for budget in 0..full.len() {
        let mut r = FailReader::new(&full[..], budget as u64);
        assert!(
            read_newslink_index(&g, &mut r).is_err(),
            "read failing at byte {budget} must surface as an error"
        );
    }
}

/// (2)+(3) Sweep every WAL byte offset: snapshot + a WAL image cut at
/// every length must recover exactly the acknowledged (whole-frame)
/// mutations — bit-identical to a reference index that applied just
/// those — and nothing of the torn tail.
#[test]
fn wal_crash_at_every_offset_recovers_exactly_the_acked_mutations() {
    let (g, li) = world();
    let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
    let base = engine.index_corpus(BASE_DOCS);
    let mut snapshot = Vec::new();
    write_newslink_index(&base, &g, &mut snapshot).unwrap();

    // The mutation sequence: two inserts, a delete of a base doc, a
    // delete of a live insert, one more insert.
    let records = vec![
        WalRecord::Insert { id: 2, text: EXTRA_DOCS[0].to_string() },
        WalRecord::Insert { id: 3, text: EXTRA_DOCS[1].to_string() },
        WalRecord::Delete { id: 0 },
        WalRecord::Delete { id: 3 },
        WalRecord::Insert { id: 4, text: EXTRA_DOCS[2].to_string() },
    ];
    let mut image = Vec::new();
    image.extend_from_slice(wal::WAL_MAGIC);
    image.push(wal::WAL_VERSION);
    let mut frame_ends = vec![WAL_HEADER_LEN];
    for r in &records {
        wal::encode_record(&mut image, r);
        frame_ends.push(image.len() as u64);
    }

    // Reference states: base + first k mutations, for every k.
    let reference: Vec<NewsLinkIndex> = (0..=records.len())
        .map(|k| {
            let mut idx = read_newslink_index(&g, &mut &snapshot[..]).unwrap();
            for r in &records[..k] {
                assert!(engine.replay_wal(&mut idx, r).unwrap(), "reference apply {r:?}");
            }
            idx
        })
        .collect();

    for cut in 0..=image.len() {
        let scanned = wal::scan(&image[..cut]);
        if cut < WAL_HEADER_LEN as usize {
            assert!(!scanned.header_ok, "cut {cut}");
            continue;
        }
        // Acked records = frames wholly on disk at the crash point.
        let acked = frame_ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
        assert_eq!(scanned.records.len(), acked, "cut {cut}");
        let mut recovered = read_newslink_index(&g, &mut &snapshot[..]).unwrap();
        let mut replayed = 0;
        for r in &scanned.records {
            if engine.replay_wal(&mut recovered, r).unwrap() {
                replayed += 1;
            }
        }
        assert_eq!(replayed, acked, "cut {cut}: every acked record applies");
        assert_equivalent(&engine, &recovered, &reference[acked], &format!("cut {cut}"));
    }
}

/// (4) Degraded load end-to-end through [`DurableStore`]: corrupt one
/// segment on disk, reopen, and the store serves the survivors, reports
/// the quarantine, and still replays the WAL on top.
#[test]
fn degraded_store_serves_survivors_and_replays_wal() {
    let (g, li) = world();
    let engine = NewsLink::new(
        &g,
        &li,
        NewsLinkConfig::default().with_segment_docs(1).with_max_segments(64),
    );
    let dir = temp_dir("degraded", 0);
    {
        let (mut store, mut index) =
            DurableStore::open(&engine, &dir, || engine.index_corpus(BASE_DOCS)).unwrap();
        // One WAL-logged insert that must survive the corruption below.
        let id = engine.insert_document(&mut index, EXTRA_DOCS[0]);
        store.log_insert(id, EXTRA_DOCS[0]).unwrap();
    }
    // Flip one byte in the middle of segment 1's v4 section (doc 1).
    let snap_path = dir.join("index.nlnk");
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let spans = segment_byte_spans(&bytes).unwrap();
    assert!(spans.len() >= 2, "at least two segment sections");
    let (start, end) = spans[1];
    bytes[(start + end) / 2] ^= 0x20;
    std::fs::write(&snap_path, &bytes).unwrap();

    let (store, index) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
    let report = store.report();
    assert!(report.degraded());
    assert_eq!(report.quarantined_segments, 1);
    assert_eq!(report.wal_records_replayed, 1, "the logged insert came back");
    assert!(ids(&index).contains(&DocId(0)));
    assert!(!ids(&index).contains(&DocId(1)), "doc 1 was quarantined");
    assert!(ids(&index).contains(&DocId(2)), "WAL insert replayed");
    let out = engine.search(&index, "Taliban near Kunar", 5);
    assert!(out.results.iter().any(|r| r.doc == DocId(0)));
    // Degraded opens never auto-checkpoint (the damaged snapshot is
    // operator evidence): the corrupted bytes are still on disk.
    assert_eq!(std::fs::read(&snap_path).unwrap(), bytes);
    std::fs::remove_dir_all(&dir).ok();
}

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Delete(u32),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0usize..2, 0usize..8), 1..8).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, n)| match kind {
                0 => Op::Insert(n % EXTRA_DOCS.len()),
                _ => Op::Delete(n as u32),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end through real files: a random acknowledged op sequence,
    /// then a crash that tears a random prefix of one further
    /// (unacknowledged) append. Reopen must restore exactly the
    /// acknowledged state.
    #[test]
    fn durable_store_round_trip_under_torn_append(
        ops in ops_strategy(),
        torn_insert in 0..EXTRA_DOCS.len(),
        tear_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("prop", case);

        // Apply + acknowledge the op sequence through the serve
        // discipline: deletes log first, inserts log after applying.
        let mut acked: Vec<WalRecord> = Vec::new();
        let expected_ids;
        {
            let (mut store, mut index) =
                DurableStore::open(&engine, &dir, || engine.index_corpus(BASE_DOCS)).unwrap();
            for op in &ops {
                match op {
                    Op::Insert(w) => {
                        let text = EXTRA_DOCS[*w];
                        let id = engine.insert_document(&mut index, text);
                        store.log_insert(id, text).unwrap();
                        acked.push(WalRecord::Insert { id: id.0, text: text.to_string() });
                    }
                    Op::Delete(id) => {
                        store.log_delete(DocId(*id)).unwrap();
                        engine.delete_document(&mut index, DocId(*id));
                        acked.push(WalRecord::Delete { id: *id });
                    }
                }
            }
            expected_ids = ids(&index);
            // Crash now: the store drops with the WAL un-checkpointed.
        }

        // One more append begins but the process dies mid-write: a
        // prefix of the frame reaches the disk, the ack never happens.
        let next_id = expected_ids.iter().map(|d| d.0 + 1).max().unwrap_or(2).max(2);
        let mut frame = Vec::new();
        wal::encode_record(&mut frame, &WalRecord::Insert {
            id: next_id,
            text: EXTRA_DOCS[torn_insert].to_string(),
        });
        // Tear strictly inside the frame so the record stays unacked.
        let keep = ((frame.len() as f64 * tear_frac) as usize).min(frame.len() - 1);
        if keep > 0 {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal.log"))
                .unwrap();
            f.write_all(&frame[..keep]).unwrap();
        }

        // Reopen: acknowledged state exactly, torn tail measured + gone.
        let (store, recovered) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
        prop_assert_eq!(ids(&recovered), expected_ids.clone(), "acked docs survive");
        prop_assert_eq!(store.report().wal_truncated_bytes, keep as u64);
        prop_assert!(
            !ids(&recovered).contains(&DocId(next_id)),
            "the unacknowledged insert must not be half-applied"
        );
        prop_assert!(!store.report().degraded());

        // The recovered index is bit-identical to a reference that
        // replays the acked records over a fresh base build.
        let mut reference = engine.index_corpus(BASE_DOCS);
        for r in &acked {
            engine.replay_wal(&mut reference, r).unwrap();
        }
        assert_equivalent(&engine, &recovered, &reference, "recovered vs reference");

        // And the store remains writable after recovery.
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// (2)+(3) for the *error-then-continue* shape (not crash): an append
/// fails partway — the server answers 500 and keeps running — and later
/// appends must still land after the acknowledged prefix. Sweeps every
/// record position, every byte offset within its frame, and both
/// failure modes; also the fsync-failed-but-fully-written case at each
/// position. The final image must scan to exactly the acknowledged
/// records, in order, with no torn bytes.
#[test]
fn wal_append_error_at_every_offset_keeps_later_appends_safe() {
    use newslink_util::failpoint::FaultMedia;
    use newslink_core::wal::Wal;

    let records = [
        WalRecord::Insert { id: 2, text: EXTRA_DOCS[0].to_string() },
        WalRecord::Delete { id: 0 },
        WalRecord::Insert { id: 3, text: EXTRA_DOCS[1].to_string() },
        WalRecord::Insert { id: 4, text: EXTRA_DOCS[2].to_string() },
    ];

    for victim in 0..records.len() {
        let mut frame = Vec::new();
        wal::encode_record(&mut frame, &records[victim]);
        // One failure shape per (offset, mode), plus the fsync-only one.
        let mut shapes: Vec<(Option<u64>, FailMode)> = (0..frame.len() as u64)
            .flat_map(|cut| {
                [(Some(cut), FailMode::Clean), (Some(cut), FailMode::ShortWrite)]
            })
            .collect();
        shapes.push((None, FailMode::Clean)); // write ok, fsync fails

        for (cut, mode) in shapes {
            let label = format!("victim {victim}, cut {cut:?}, mode {mode:?}");
            let mut wal = Wal::over(FaultMedia::new()).unwrap();
            let mut acked: Vec<WalRecord> = Vec::new();
            for r in &records[..victim] {
                wal.append(r).unwrap();
                acked.push(r.clone());
            }
            match cut {
                Some(cut) => wal.storage_mut().fail_write_after(cut, mode),
                None => wal.storage_mut().fail_next_sync(),
            }
            let err = wal.append(&records[victim]).unwrap_err();
            assert!(
                err.to_string().contains("failpoint"),
                "{label}: injected, not real: {err}"
            );
            assert!(!wal.is_poisoned(), "{label}: transient failure repairs");
            // The server keeps serving: the remaining mutations are
            // appended and acknowledged.
            for r in &records[victim + 1..] {
                wal.append(r).unwrap();
                acked.push(r.clone());
            }
            let scanned = wal::scan(wal.storage().contents());
            assert_eq!(scanned.records, acked, "{label}: exactly the acked records");
            assert_eq!(scanned.torn_bytes, 0, "{label}: no garbage mid-file");
        }
    }
}

/// The WAL image itself, under exhaustive single-byte corruption: scan
/// recovers a prefix of the original records, never an invented or
/// reordered one. (Exhaustive flips live in `core::wal` unit tests;
/// this pins the same guarantee for multi-record images built through
/// the public API.)
#[test]
fn wal_scan_survives_every_single_byte_flip() {
    let records = vec![
        WalRecord::Insert { id: 2, text: EXTRA_DOCS[0].to_string() },
        WalRecord::Delete { id: 0 },
        WalRecord::Insert { id: 3, text: EXTRA_DOCS[3].to_string() },
    ];
    let mut image = Vec::new();
    image.extend_from_slice(wal::WAL_MAGIC);
    image.push(wal::WAL_VERSION);
    for r in &records {
        wal::encode_record(&mut image, r);
    }
    for at in WAL_HEADER_LEN as usize..image.len() {
        let mut bad = image.clone();
        bad[at] ^= 0x04;
        let scanned = wal::scan(&bad);
        assert_eq!(
            scanned.records[..],
            records[..scanned.records.len()],
            "flip at {at}: recovered records must be a strict prefix"
        );
    }
}

/// `LoadReport::degraded` is the single bit serve keys /healthz off of.
#[test]
fn load_report_degraded_tracks_quarantine_only() {
    let clean = LoadReport {
        segments_loaded: 4,
        wal_records_replayed: 7,
        wal_truncated_bytes: 123,
        ..LoadReport::default()
    };
    assert!(!clean.degraded(), "replay + truncation are normal recovery");
    let lossy = LoadReport {
        quarantined_segments: 1,
        ..clean
    };
    assert!(lossy.degraded());
}
