//! Forward-migration and mapped-corruption suite for segment format v4.
//!
//! Contracts under test:
//!
//! 1. a **version-3** snapshot on disk keeps loading — through the raw
//!    readers, through [`DurableStore`] on either storage backend — and
//!    the first checkpoint rewrites it as v4 without changing a single
//!    search result bit;
//! 2. both storage backends ([`StorageBackend::Heap`] and
//!    [`StorageBackend::Mmap`]) produce **bit-identical** indexes from
//!    the same v4 file;
//! 3. flipping bytes inside a **memory-mapped** block never panics and
//!    never fabricates documents: a corrupt section is quarantined in
//!    tolerant mode (degraded [`LoadReport`]) and is a typed error in
//!    strict mode, at every byte offset of every section.

use newslink_core::{
    doc_ids, read_newslink_index_bytes, segment_byte_spans, write_newslink_index_v3, Directory,
    DurableStore, FsDirectory, MmapSegmentReader, NewsLink, NewsLinkConfig, NewsLinkIndex,
    SegmentReader, StorageBackend, StoreOptions,
};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_text::DocId;
use newslink_util::Bytes;

fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

const DOCS: &[&str] = &[
    "Taliban attacked Kunar. Pakistan responded near Khyber.",
    "Pakistan held talks in Khyber.",
    "Kabul hosted a trade summit with Pakistan.",
];

fn ids(index: &NewsLinkIndex) -> Vec<DocId> {
    doc_ids(index).collect()
}

fn assert_bit_identical(
    engine: &NewsLink<'_>,
    a: &NewsLinkIndex,
    b: &NewsLinkIndex,
    label: &str,
) {
    assert_eq!(ids(a), ids(b), "{label}: doc ids");
    for q in ["Taliban near Kunar", "Pakistan trade", "Khyber summit"] {
        let ra = engine.search(a, q, 10);
        let rb = engine.search(b, q, 10);
        assert_eq!(ra.results.len(), rb.results.len(), "{label}: query {q}");
        for (x, y) in ra.results.iter().zip(&rb.results) {
            assert_eq!(x.doc, y.doc, "{label}: query {q}");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{label}: query {q}");
        }
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "newslink_format_migration_{}_{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A v3 snapshot seeded under a [`DurableStore`] data directory loads on
/// either backend, and the first checkpoint migrates it to v4 in place —
/// all without changing a search result.
#[test]
fn v3_data_dir_migrates_to_v4_on_first_checkpoint() {
    for backend in [StorageBackend::Heap, StorageBackend::Mmap] {
        let (g, li) = world();
        let engine = NewsLink::new(
            &g,
            &li,
            NewsLinkConfig::default().with_segment_docs(1).with_max_segments(64),
        );
        let reference = engine.index_corpus(DOCS);
        let dir = temp_dir(&format!("v3dir_{backend}"));
        std::fs::create_dir_all(&dir).unwrap();

        // Plant a v3-format snapshot where the store expects its file,
        // modelling a data directory written by the previous release.
        let snap = dir.join("index.nlnk");
        let mut v3 = Vec::new();
        write_newslink_index_v3(&reference, &g, &mut v3).unwrap();
        std::fs::write(&snap, &v3).unwrap();
        assert!(
            segment_byte_spans(&v3).is_err(),
            "a v3 image has no v4 directory"
        );

        let options = StoreOptions::new().backend(backend);
        {
            let (mut store, index) =
                DurableStore::open_with(&engine, &dir, &options, || unreachable!())
                    .expect("v3 snapshot loads forward");
            assert!(!store.report().degraded(), "{backend}");
            assert_bit_identical(&engine, &reference, &index, "v3 loaded");
            store.checkpoint(&index, &g).expect("checkpoint rewrites as v4");
        }
        let migrated = std::fs::read(&snap).unwrap();
        let spans = segment_byte_spans(&migrated).expect("checkpoint wrote v4");
        assert_eq!(spans.len(), DOCS.len(), "one section per one-doc segment");

        // The migrated file round-trips on the same backend.
        let (_store, index) = DurableStore::open_with(&engine, &dir, &options, || unreachable!())
            .expect("v4 snapshot reopens");
        assert_bit_identical(&engine, &reference, &index, "v4 migrated");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The same v4 file read through the heap and mmap backends yields
/// bit-identical indexes.
#[test]
fn heap_and_mmap_backends_agree_bit_for_bit() {
    let (g, li) = world();
    let engine = NewsLink::new(
        &g,
        &li,
        NewsLinkConfig::default().with_segment_docs(1).with_max_segments(64),
    );
    let reference = engine.index_corpus(DOCS);
    let dir = temp_dir("parity");
    std::fs::create_dir_all(&dir).unwrap();
    newslink_core::save_newslink_index(&reference, &g, &dir.join("index.nlnk")).unwrap();

    let fs = FsDirectory::create(&dir).unwrap();
    let mut loaded = Vec::new();
    for backend in [StorageBackend::Heap, StorageBackend::Mmap] {
        let (index, report) = backend
            .reader()
            .read_snapshot(&fs, "index.nlnk", &g, false)
            .unwrap_or_else(|e| panic!("{backend}: {e}"));
        assert!(!report.degraded(), "{backend}");
        loaded.push(index);
    }
    let (heap, mmap) = (&loaded[0], &loaded[1]);
    assert_bit_identical(&engine, heap, mmap, "heap vs mmap");
    assert_bit_identical(&engine, &reference, mmap, "reference vs mmap");
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupted-mapping sweep: flip every byte of every mapped segment
/// section in turn; the tolerant mmap load must quarantine (never
/// panic, never invent documents), and the strict load must error.
#[test]
fn every_mapped_section_byte_flip_quarantines_without_panic() {
    let (g, li) = world();
    let engine = NewsLink::new(
        &g,
        &li,
        NewsLinkConfig::default().with_segment_docs(1).with_max_segments(64),
    );
    let reference = engine.index_corpus(DOCS);
    let dir = temp_dir("flip");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("index.nlnk");
    newslink_core::save_newslink_index(&reference, &g, &snap).unwrap();
    let pristine = std::fs::read(&snap).unwrap();
    let spans = segment_byte_spans(&pristine).unwrap();
    let all_ids = ids(&reference);

    let fs = FsDirectory::create(&dir).unwrap();
    let reader = MmapSegmentReader;
    for (si, &(start, end)) in spans.iter().enumerate() {
        // Striding keeps the sweep fast while still probing headers,
        // tables, posting data and the doc-store blob of each section.
        for at in (start..end).step_by(7).chain([end - 1]) {
            let mut bytes = pristine.clone();
            bytes[at] ^= 0xA5;
            std::fs::write(&snap, &bytes).unwrap();

            // Strict: typed error, never a panic.
            let strict = reader.read_snapshot(&fs, "index.nlnk", &g, false);
            assert!(strict.is_err(), "section {si} byte {at}: strict must fail");

            // Tolerant: exactly that section quarantined; survivors and
            // their scores are untouched.
            let (index, report) = reader
                .read_snapshot(&fs, "index.nlnk", &g, true)
                .unwrap_or_else(|e| panic!("section {si} byte {at}: tolerant load failed: {e}"));
            assert!(report.degraded(), "section {si} byte {at}");
            assert_eq!(report.quarantined_segments, 1, "section {si} byte {at}");
            let survivors = ids(&index);
            let expected: Vec<DocId> = all_ids
                .iter()
                .copied()
                .filter(|d| d.index() != si)
                .collect();
            assert_eq!(survivors, expected, "section {si} byte {at}");
            let out = engine.search(&index, "Pakistan trade", 10);
            for hit in &out.results {
                assert_ne!(hit.doc.index(), si, "quarantined doc must not rank");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The v3 byte image keeps decoding through the version dispatch even
/// when handed over as a mapped buffer — format decides the decode
/// path, backend decides the residence.
#[test]
fn v3_bytes_decode_identically_from_heap_and_mapped_buffers() {
    let (g, li) = world();
    let engine = NewsLink::new(&g, &li, NewsLinkConfig::default().with_segment_docs(1));
    let reference = engine.index_corpus(DOCS);
    let mut v3 = Vec::new();
    write_newslink_index_v3(&reference, &g, &mut v3).unwrap();

    let dir = temp_dir("v3bytes");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("old.nlnk"), &v3).unwrap();
    let fs = FsDirectory::create(&dir).unwrap();

    let (from_heap, _) =
        read_newslink_index_bytes(&g, &Bytes::from_vec(v3), false).expect("heap v3 decode");
    let mapped = fs.open_bytes("old.nlnk").expect("map v3 file");
    assert!(mapped.is_mapped());
    let (from_map, _) = read_newslink_index_bytes(&g, &mapped, false).expect("mapped v3 decode");
    assert_bit_identical(&engine, &from_heap, &from_map, "v3 heap vs mapped");
    std::fs::remove_dir_all(&dir).ok();
}
