//! Property tests for the segmented index: on arbitrary corpora, a
//! multi-segment index must rank *bit-identically* to the monolithic
//! (single-segment) build — before and after deletions, and before and
//! after compaction. The segment layout is an internal storage decision;
//! it must never leak into scores.

use proptest::prelude::*;

use newslink_core::{
    index_corpus, search, write_newslink_index, Directory, FsDirectory, NewsLinkConfig,
    NewsLinkIndex, RamDirectory, StorageBackend,
};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_text::DocId;

/// A small fixed world: enough entities that documents collide on both
/// the BOW side (shared filler words) and the BON side (shared graph
/// neighborhoods).
fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    let unhcr = b.add_node("UNHCR", EntityType::Organization);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    b.add_edge(unhcr, kabul, "operates in", 1);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

/// Words documents and queries are drawn from: entity labels (which hit
/// the BON side) plus plain filler (BOW only).
const VOCAB: &[&str] = &[
    "Khyber", "Kunar", "Taliban", "Pakistan", "Kabul", "UNHCR", "trade", "talks", "storm",
    "attack", "aid", "festival",
];

fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..12)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" ") + ".")
}

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(doc_strategy(), 1..10)
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..5)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" "))
}

/// Assert two indexes rank `query` bit-identically.
#[allow(clippy::too_many_arguments)]
fn assert_same_ranking(
    g: &KnowledgeGraph,
    li: &LabelIndex,
    cfg: &NewsLinkConfig,
    a: &NewsLinkIndex,
    b: &NewsLinkIndex,
    query: &str,
    k: usize,
    label: &str,
) {
    let ra = search(g, li, cfg, a, query, k);
    let rb = search(g, li, cfg, b, query, k);
    assert_eq!(ra.results.len(), rb.results.len(), "{label}: result count");
    for (x, y) in ra.results.iter().zip(&rb.results) {
        assert_eq!(x.doc, y.doc, "{label}: doc order");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: score bits for doc {}",
            x.doc.0
        );
        assert_eq!(x.bow.to_bits(), y.bow.to_bits(), "{label}: bow bits");
        assert_eq!(x.bon.to_bits(), y.bon.to_bits(), "{label}: bon bits");
    }
}

/// Save `index` as a v4 snapshot and load it back through both storage
/// backends: heap over an in-memory directory, mmap over a real file.
/// The storage seam is an internal decision just like segmentation — it
/// must never leak into scores.
fn round_trip_both_backends(
    g: &KnowledgeGraph,
    index: &NewsLinkIndex,
    tag: &str,
) -> (NewsLinkIndex, NewsLinkIndex) {
    let mut buf = Vec::new();
    write_newslink_index(index, g, &mut buf).expect("encode v4");

    let ram = RamDirectory::new();
    ram.atomic_write("index.nlnk", &buf).expect("ram write");
    let (heap, report) = StorageBackend::Heap
        .reader()
        .read_snapshot(&ram, "index.nlnk", g, false)
        .expect("heap load");
    assert!(!report.degraded(), "{tag}");

    let dir = std::env::temp_dir().join(format!(
        "newslink_segment_prop_{}_{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let fs = FsDirectory::create(&dir).expect("fs dir");
    fs.atomic_write("index.nlnk", &buf).expect("fs write");
    let (mmap, report) = StorageBackend::Mmap
        .reader()
        .read_snapshot(&fs, "index.nlnk", g, false)
        .expect("mmap load");
    assert!(!report.degraded(), "{tag}");
    // The mapping outlives the unlink: the inode stays alive until the
    // index (and its mapped views) drop.
    std::fs::remove_dir_all(&dir).ok();
    (heap, mmap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharding the build (any segment size, including one doc per
    /// segment, with any thread count) never changes a single ranking bit.
    #[test]
    fn segmented_build_ranks_bit_identically(
        docs in corpus_strategy(),
        query in query_strategy(),
        k in 1usize..6,
        segment_docs in 1usize..4,
        threads in 1usize..4,
    ) {
        let (g, li) = world();
        let mono_cfg = NewsLinkConfig::default();
        let mono = index_corpus(&g, &li, &mono_cfg, &docs);
        let seg_cfg = NewsLinkConfig::default()
            .with_segment_docs(segment_docs)
            .with_threads(threads);
        let seg = index_corpus(&g, &li, &seg_cfg, &docs);
        if segment_docs < docs.len() {
            prop_assert!(seg.segment_count() > 1, "sharding must actually happen");
        }
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &seg, &query, k, "sharded build");

        // Compaction back to one segment converges on the monolithic
        // layout and, again, the same bits.
        let mut compacted = index_corpus(&g, &li, &seg_cfg, &docs);
        compacted.compact();
        prop_assert_eq!(compacted.segment_count(), 1);
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &compacted, &query, k, "compacted");

        // A v4 snapshot round-trip through either storage backend
        // reproduces the segmented ranking bit for bit.
        let (heap, mmap) = round_trip_both_backends(&g, &seg, "build");
        assert_same_ranking(&g, &li, &seg_cfg, &seg, &heap, &query, k, "heap reload");
        assert_same_ranking(&g, &li, &seg_cfg, &seg, &mmap, &query, k, "mmap reload");
    }

    /// Deletions behave identically however the index is sharded, both
    /// while the tombstones are live and after compaction expunges them.
    #[test]
    fn tombstones_rank_bit_identically_across_layouts(
        docs in corpus_strategy(),
        query in query_strategy(),
        k in 1usize..6,
        delete_mask in prop::collection::vec(any::<bool>(), 10..11),
    ) {
        let (g, li) = world();
        let mono_cfg = NewsLinkConfig::default();
        let seg_cfg = NewsLinkConfig::default().with_segment_docs(2);
        let mut mono = index_corpus(&g, &li, &mono_cfg, &docs);
        let mut seg = index_corpus(&g, &li, &seg_cfg, &docs);
        // Delete the same subset from both; keep at least one doc live.
        let mut live = docs.len();
        for (i, _) in docs.iter().enumerate() {
            if live > 1 && delete_mask[i % delete_mask.len()] {
                prop_assert!(mono.delete(DocId(i as u32)));
                prop_assert!(seg.delete(DocId(i as u32)));
                live -= 1;
            }
        }
        prop_assert_eq!(mono.doc_count(), live);
        prop_assert_eq!(seg.doc_count(), live);
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &seg, &query, k, "tombstoned");

        // Tombstones persist through the v4 round-trip on both backends.
        let (heap, mmap) = round_trip_both_backends(&g, &seg, "tombstoned");
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &heap, &query, k, "tombstoned heap");
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &mmap, &query, k, "tombstoned mmap");

        // Compacting the segmented index expunges its tombstones but
        // must not change what a search returns.
        seg.compact();
        prop_assert_eq!(seg.segment_count(), 1);
        prop_assert_eq!(seg.tombstone_count(), 0, "compaction expunges");
        assert_same_ranking(&g, &li, &mono_cfg, &mono, &seg, &query, k, "expunged");

        // Surviving ids are stable: every live doc keeps its identity.
        let mono_ids: Vec<u32> = mono.doc_ids().map(|d| d.0).collect();
        let seg_ids: Vec<u32> = seg.doc_ids().map(|d| d.0).collect();
        prop_assert_eq!(mono_ids, seg_ids);
    }
}
