//! Property tests: the engine caches never change what a search returns.
//!
//! A cache-enabled engine and a cache-disabled engine, run over the same
//! randomized synthetic corpus and query stream, must produce bit-identical
//! rankings and scores — cold, warm, and with the request-level cache
//! bypass.

use proptest::prelude::*;

use newslink_core::{NewsLink, NewsLinkConfig, SearchRequest};
use newslink_kg::{synth, LabelIndex, NodeId, SynthConfig};

fn entity_pool(world: &synth::SynthWorld) -> Vec<NodeId> {
    world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect()
}

/// Deterministic sentences naming 2–3 pooled entities each.
fn synth_docs(world: &synth::SynthWorld, pool: &[NodeId], n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 5 + 1) % pool.len()]);
            let c = world.graph.label(pool[(i * 7 + 2) % pool.len()]);
            format!("Reports said {a} met {b} while unrest spread near {c}.")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cached_and_uncached_searches_are_bit_identical(
        seed in 0u64..24,
        beta_raw in any::<f64>(),
        qpicks in prop::collection::vec(any::<usize>(), 2..5),
        k in 1usize..8,
    ) {
        let world = synth::generate(&SynthConfig::small(seed));
        let labels = LabelIndex::build(&world.graph);
        let pool = entity_pool(&world);
        prop_assume!(pool.len() >= 4);
        let docs = synth_docs(&world, &pool, 12);

        let beta = beta_raw.abs().fract();
        let cfg = NewsLinkConfig::default().with_beta(beta);
        let cached = NewsLink::new(&world.graph, &labels, cfg.clone());
        let uncached = NewsLink::new(&world.graph, &labels, cfg.without_cache());

        let index_cached = cached.index_corpus(&docs);
        let index_plain = uncached.index_corpus(&docs);
        prop_assert_eq!(index_cached.embedded_docs, index_plain.embedded_docs);
        prop_assert_eq!(index_plain.cache_stats.lookups(), 0);

        let queries: Vec<String> = qpicks
            .iter()
            .map(|&p| {
                let a = world.graph.label(pool[p % pool.len()]);
                let b = world.graph.label(pool[(p / 7 + 1) % pool.len()]);
                format!("news about {a} and {b}")
            })
            .collect();

        for q in &queries {
            let want = uncached.search(&index_plain, q, k);
            // Cold, then warm (query-memo hit), then explicit bypass.
            let cold = cached.execute(&index_cached, &SearchRequest::new(q).with_k(k));
            let warm = cached.execute(&index_cached, &SearchRequest::new(q).with_k(k));
            let bypass = cached.execute(
                &index_cached,
                &SearchRequest::new(q).with_k(k).without_cache(),
            );
            prop_assert!(warm.cache.query_hit);
            prop_assert!(!bypass.cache.enabled);
            for got in [&cold.results, &warm.results, &bypass.results] {
                prop_assert_eq!(got, &want.results, "query {}", q);
            }
        }
    }
}
