//! Property tests for the intra-query parallel segment fan-out: on
//! arbitrary corpora, with any blend of β, normalization, segmentation,
//! tombstones, and storage backend, the pruned blended top-k must return
//! *bit-identical* results — scores, tie order, and explanations —
//! whether segments are scanned sequentially (each pruning against the
//! merged heap of its left neighbors) or concurrently (all pruning
//! against the shared atomic floor). Parallelism is a wall-clock
//! strategy, never a ranking change — not even in the last bit.

use proptest::prelude::*;

use newslink_core::{
    index_corpus, search, write_newslink_index, Directory, ExplainOptions, FsDirectory, NewsLink,
    NewsLinkConfig, NewsLinkIndex, RamDirectory, SearchRequest, StorageBackend,
};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_text::DocId;

/// A small fixed world: enough entities that documents collide on both
/// the BOW side (shared filler words) and the BON side (shared graph
/// neighborhoods).
fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    let unhcr = b.add_node("UNHCR", EntityType::Organization);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    b.add_edge(unhcr, kabul, "operates in", 1);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

/// Words documents and queries are drawn from: entity labels (which hit
/// the BON side) plus plain filler (BOW only).
const VOCAB: &[&str] = &[
    "Khyber", "Kunar", "Taliban", "Pakistan", "Kabul", "UNHCR", "trade", "talks", "storm",
    "attack", "aid", "festival",
];

fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..12)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" ") + ".")
}

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(doc_strategy(), 1..13)
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..5)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" "))
}

/// Save `index` as a v4 snapshot and load it back through both storage
/// backends (heap over a [`RamDirectory`], mmap over a real file).
fn round_trip_both_backends(
    g: &KnowledgeGraph,
    index: &NewsLinkIndex,
    tag: &str,
) -> (NewsLinkIndex, NewsLinkIndex) {
    let mut buf = Vec::new();
    write_newslink_index(index, g, &mut buf).expect("encode v4");
    let ram = RamDirectory::new();
    ram.atomic_write("index.nlnk", &buf).expect("ram write");
    let (heap, _) = StorageBackend::Heap
        .reader()
        .read_snapshot(&ram, "index.nlnk", g, false)
        .expect("heap load");
    let dir = std::env::temp_dir().join(format!(
        "newslink_parallel_prop_{}_{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let fs = FsDirectory::create(&dir).expect("fs dir");
    fs.atomic_write("index.nlnk", &buf).expect("fs write");
    let (mmap, _) = StorageBackend::Mmap
        .reader()
        .read_snapshot(&fs, "index.nlnk", g, false)
        .expect("mmap load");
    std::fs::remove_dir_all(&dir).ok();
    (heap, mmap)
}

/// Assert two result vectors agree bit for bit, including tie order.
fn assert_results_identical(
    a: &[newslink_core::SearchResult],
    b: &[newslink_core::SearchResult],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "result count ({label})");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.doc, y.doc, "doc / tie order ({label})");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "score bits for doc {} ({label})",
            x.doc.0
        );
        assert_eq!(x.bow.to_bits(), y.bow.to_bits(), "bow bits ({label})");
        assert_eq!(x.bon.to_bits(), y.bon.to_bits(), "bon bits ({label})");
    }
}

/// The deterministic tie-retention regression from the pruned-evaluator
/// PR, replayed under the parallel fan-out: two segments hold tied
/// documents whose survival depends on the per-segment-heaps-then-merge
/// structure, and concurrent workers racing the shared floor must keep
/// exactly the docs the sequential oracle keeps, at every k.
#[test]
fn tied_docs_across_segments_match_oracle_in_parallel() {
    let (g, li) = world();
    // Segments (segment_docs = 3): [P, A, Z] and [B, C, Q] with
    // score(P) > score(Q) > score(A) = score(B) = score(C) > 0 = score(Z).
    // At k = 3 the oracle keeps {P, Q, A}; a structure-perturbing merge
    // would keep {P, Q, B}.
    let docs: Vec<String> = [
        "Pakistan Pakistan Pakistan talks talks talks.", // P
        "Pakistan aid talks.",                           // A
        "storm.",                                        // Z
        "Pakistan aid talks.",                           // B
        "Pakistan aid talks.",                           // C
        "Pakistan Pakistan aid talks talks.",            // Q
    ]
    .map(String::from)
    .to_vec();
    let par_cfg = NewsLinkConfig::default()
        .with_segment_docs(3)
        .with_search_threads(4);
    let oracle_cfg = par_cfg.clone().with_prune_topk(false).with_search_threads(1);
    let idx = index_corpus(&g, &li, &par_cfg, &docs);

    let oracle = search(&g, &li, &oracle_cfg, &idx, "Pakistan talks", 3);
    // Precondition: the corpus really produces the P > Q > tie shape.
    assert_eq!(oracle.results.len(), 3);
    assert_eq!(oracle.results[0].doc, DocId(0), "P must rank first");
    assert_eq!(oracle.results[1].doc, DocId(5), "Q must rank second");
    assert!(oracle.results[1].score > oracle.results[2].score);

    for k in [1usize, 2, 3, 4, 6, 100] {
        let par = search(&g, &li, &par_cfg, &idx, "Pakistan talks", k);
        let oracle = search(&g, &li, &oracle_cfg, &idx, "Pakistan talks", k);
        assert_eq!(par.results.len(), oracle.results.len(), "k={k}");
        for (x, y) in par.results.iter().zip(&oracle.results) {
            assert_eq!(x.doc, y.doc, "tied-doc retention under parallelism (k={k})");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "k={k}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential ≡ parallel: pinned 4-worker and auto fan-outs return
    /// the same ranked vector as the single-threaded scan, bit for bit,
    /// across β ∈ {0, 0.3, 1}, k ∈ {1, 5, 100}, 1–6+ segments,
    /// normalization on/off, tombstones, and both storage backends —
    /// and request-level explanations agree too.
    #[test]
    fn parallel_pruned_topk_is_bit_identical_to_sequential(
        docs in corpus_strategy(),
        query in query_strategy(),
        beta_i in 0usize..3,
        k_i in 0usize..3,
        normalize in any::<bool>(),
        segment_docs in 1usize..4,
        do_delete in any::<bool>(),
        delete_mask in prop::collection::vec(any::<bool>(), 10..11),
    ) {
        let beta = [0.0, 0.3, 1.0][beta_i];
        let k = [1usize, 5, 100][k_i];
        let (g, li) = world();
        let mut seq_cfg = NewsLinkConfig::default()
            .with_beta(beta)
            .with_segment_docs(segment_docs)
            .with_search_threads(1);
        seq_cfg.normalize_scores = normalize;
        let par_cfg = seq_cfg.clone().with_search_threads(4);
        let auto_cfg = seq_cfg.clone().with_search_threads(0);

        let mut idx = index_corpus(&g, &li, &seq_cfg, &docs);
        if do_delete {
            // Delete a pseudo-random subset, keeping at least one doc.
            let mut live = docs.len();
            for i in 0..docs.len() {
                if live > 1 && delete_mask[i % delete_mask.len()] {
                    prop_assert!(idx.delete(DocId(i as u32)));
                    live -= 1;
                }
            }
        }

        let seq = search(&g, &li, &seq_cfg, &idx, &query, k);
        let par = search(&g, &li, &par_cfg, &idx, &query, k);
        let auto = search(&g, &li, &auto_cfg, &idx, &query, k);
        assert_results_identical(&seq.results, &par.results, "4 workers");
        assert_results_identical(&seq.results, &auto.results, "auto workers");

        // Explanations ride the ranked list: identical ranking must
        // yield identical relationship paths through the engine path.
        let request = SearchRequest::new(&query)
            .with_k(k)
            .with_explanations(ExplainOptions::default());
        let seq_resp = NewsLink::new(&g, &li, seq_cfg.clone()).execute(&idx, &request);
        let par_resp = NewsLink::new(&g, &li, par_cfg.clone()).execute(&idx, &request);
        assert_results_identical(&seq_resp.results, &par_resp.results, "engine");
        prop_assert_eq!(
            format!("{:?}", seq_resp.explanations),
            format!("{:?}", par_resp.explanations),
            "explanations must agree"
        );

        // The fan-out must stay bit-identical whether the postings live
        // on the heap or straight in a file mapping.
        let (heap_idx, mmap_idx) = round_trip_both_backends(&g, &idx, "parallel");
        for (reloaded, label) in [(&heap_idx, "heap"), (&mmap_idx, "mmap")] {
            let seq_r = search(&g, &li, &seq_cfg, reloaded, &query, k);
            let par_r = search(&g, &li, &par_cfg, reloaded, &query, k);
            assert_results_identical(&seq.results, &seq_r.results, label);
            assert_results_identical(&seq_r.results, &par_r.results, label);
        }
    }
}
