//! Property tests for the block-max pruned evaluator: on arbitrary
//! corpora, with any blend of β, score normalization, Threshold-Algorithm
//! routing, segmentation, and tombstones, the pruned path
//! (`prune_topk = true`, the default) must return *bit-identical*
//! results to the exhaustive full-scoring oracle
//! (`with_prune_topk(false)`). Pruning is a work-avoidance strategy,
//! never a ranking change — not even in the last bit of a score.

use proptest::prelude::*;

use newslink_core::{
    index_corpus, search, write_newslink_index, Directory, FsDirectory, NewsLinkConfig,
    NewsLinkIndex, RamDirectory, StorageBackend,
};
use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};
use newslink_text::DocId;

/// A small fixed world: enough entities that documents collide on both
/// the BOW side (shared filler words) and the BON side (shared graph
/// neighborhoods).
fn world() -> (KnowledgeGraph, LabelIndex) {
    let mut b = GraphBuilder::new();
    let khyber = b.add_node("Khyber", EntityType::Gpe);
    let kunar = b.add_node("Kunar", EntityType::Gpe);
    let taliban = b.add_node("Taliban", EntityType::Organization);
    let pakistan = b.add_node("Pakistan", EntityType::Gpe);
    let kabul = b.add_node("Kabul", EntityType::Gpe);
    let unhcr = b.add_node("UNHCR", EntityType::Organization);
    b.add_edge(kunar, khyber, "borders", 1);
    b.add_edge(taliban, kunar, "operates in", 1);
    b.add_edge(khyber, pakistan, "located in", 1);
    b.add_edge(kabul, pakistan, "trades with", 2);
    b.add_edge(unhcr, kabul, "operates in", 1);
    let g = b.freeze();
    let idx = LabelIndex::build(&g);
    (g, idx)
}

/// Words documents and queries are drawn from: entity labels (which hit
/// the BON side) plus plain filler (BOW only).
const VOCAB: &[&str] = &[
    "Khyber", "Kunar", "Taliban", "Pakistan", "Kabul", "UNHCR", "trade", "talks", "storm",
    "attack", "aid", "festival",
];

fn doc_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..12)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" ") + ".")
}

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(doc_strategy(), 1..14)
}

fn query_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0..VOCAB.len(), 1..5)
        .prop_map(|ws| ws.into_iter().map(|w| VOCAB[w]).collect::<Vec<_>>().join(" "))
}

/// Regression for the tie-retention class the random corpora are too
/// small to hit. Which of several *tied* documents a bounded heap keeps
/// depends on how higher-scoring pushes interleave with the tied ones;
/// the exhaustive oracle feeds each segment's survivors to the merge
/// heap in *descending score* order, while a single heap carried across
/// segments would see them in *doc-id* order. The two disagree exactly
/// when a segment holds tied docs followed by a higher scorer: at merge
/// the high scorer fills the heap first and the same-segment tie is
/// rejected, but in doc-id order the tie lands first and the high
/// scorer later evicts a *previous* segment's tie. The pruned path must
/// mirror the oracle's per-segment-heaps-then-merge structure.
#[test]
fn tied_docs_across_segments_match_oracle() {
    let (g, li) = world();
    // Segments (segment_docs = 3): [P, A, Z] and [B, C, Q] with
    // score(P) > score(Q) > score(A) = score(B) = score(C) > 0 = score(Z)
    // for the query below. At k = 3 the oracle keeps {P, Q, A}; a heap
    // shared across segments would keep {P, Q, B}.
    let docs: Vec<String> = [
        "Pakistan Pakistan Pakistan talks talks talks.", // P
        "Pakistan aid talks.",                           // A
        "storm.",                                        // Z
        "Pakistan aid talks.",                           // B
        "Pakistan aid talks.",                           // C
        "Pakistan Pakistan aid talks talks.",            // Q
    ]
    .map(String::from)
    .to_vec();
    let pruned_cfg = NewsLinkConfig::default().with_segment_docs(3);
    let oracle_cfg = pruned_cfg.clone().with_prune_topk(false);
    let idx = index_corpus(&g, &li, &pruned_cfg, &docs);

    let oracle = search(&g, &li, &oracle_cfg, &idx, "Pakistan talks", 3);
    // Precondition: the corpus really produces the P > Q > tie shape the
    // regression needs (fails loudly if scorer changes perturb it).
    assert_eq!(oracle.results.len(), 3);
    assert_eq!(oracle.results[0].doc, DocId(0), "P must rank first");
    assert_eq!(oracle.results[1].doc, DocId(5), "Q must rank second");
    assert!(
        oracle.results[1].score > oracle.results[2].score,
        "Q must score strictly above the tie group"
    );

    for k in [1usize, 2, 3, 4, 6, 100] {
        let pruned = search(&g, &li, &pruned_cfg, &idx, "Pakistan talks", k);
        let oracle = search(&g, &li, &oracle_cfg, &idx, "Pakistan talks", k);
        assert_eq!(pruned.results.len(), oracle.results.len(), "k={k}");
        for (x, y) in pruned.results.iter().zip(&oracle.results) {
            assert_eq!(x.doc, y.doc, "tied-doc retention (k={k})");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "k={k}");
        }
    }
}

/// Save `index` as a v4 snapshot and load it back through both storage
/// backends (heap over a [`RamDirectory`], mmap over a real file).
fn round_trip_both_backends(
    g: &KnowledgeGraph,
    index: &NewsLinkIndex,
    tag: &str,
) -> (NewsLinkIndex, NewsLinkIndex) {
    let mut buf = Vec::new();
    write_newslink_index(index, g, &mut buf).expect("encode v4");
    let ram = RamDirectory::new();
    ram.atomic_write("index.nlnk", &buf).expect("ram write");
    let (heap, _) = StorageBackend::Heap
        .reader()
        .read_snapshot(&ram, "index.nlnk", g, false)
        .expect("heap load");
    let dir = std::env::temp_dir().join(format!(
        "newslink_prune_prop_{}_{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let fs = FsDirectory::create(&dir).expect("fs dir");
    fs.atomic_write("index.nlnk", &buf).expect("fs write");
    let (mmap, _) = StorageBackend::Mmap
        .reader()
        .read_snapshot(&fs, "index.nlnk", g, false)
        .expect("mmap load");
    std::fs::remove_dir_all(&dir).ok();
    (heap, mmap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pruned evaluator returns the same `SearchResult` vector as
    /// the exhaustive oracle, bit for bit, across the whole configuration
    /// surface: β ∈ {0, 0.3, 1}, normalization on/off, TA on/off, one to
    /// four segments, with and without tombstones, and k from 1 up to
    /// well past the corpus size.
    #[test]
    fn pruned_path_is_bit_identical_to_exhaustive(
        docs in corpus_strategy(),
        query in query_strategy(),
        beta_i in 0usize..3,
        k_i in 0usize..3,
        normalize in any::<bool>(),
        use_ta in any::<bool>(),
        segment_docs in 0usize..4,
        do_delete in any::<bool>(),
        delete_mask in prop::collection::vec(any::<bool>(), 10..11),
    ) {
        let beta = [0.0, 0.3, 1.0][beta_i];
        let k = [1usize, 5, 100][k_i];
        let (g, li) = world();
        let mut pruned_cfg = NewsLinkConfig::default()
            .with_beta(beta)
            .with_threshold_algorithm(use_ta)
            .with_segment_docs(segment_docs);
        pruned_cfg.normalize_scores = normalize;
        prop_assert!(pruned_cfg.prune_topk, "pruning must be the default");
        let oracle_cfg = pruned_cfg.clone().with_prune_topk(false);

        let mut idx = index_corpus(&g, &li, &pruned_cfg, &docs);
        if do_delete {
            // Delete a pseudo-random subset, keeping at least one doc.
            let mut live = docs.len();
            for i in 0..docs.len() {
                if live > 1 && delete_mask[i % delete_mask.len()] {
                    prop_assert!(idx.delete(DocId(i as u32)));
                    live -= 1;
                }
            }
        }

        let pruned = search(&g, &li, &pruned_cfg, &idx, &query, k);
        let oracle = search(&g, &li, &oracle_cfg, &idx, &query, k);
        prop_assert_eq!(
            pruned.results.len(),
            oracle.results.len(),
            "result count (β={} k={} norm={} ta={} segdocs={})",
            beta, k, normalize, use_ta, segment_docs
        );
        for (x, y) in pruned.results.iter().zip(&oracle.results) {
            prop_assert_eq!(x.doc, y.doc, "doc order for β={} k={}", beta, k);
            prop_assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits for doc {} (β={} k={} norm={} ta={} segdocs={})",
                x.doc.0, beta, k, normalize, use_ta, segment_docs
            );
            prop_assert_eq!(x.bow.to_bits(), y.bow.to_bits(), "bow bits for doc {}", x.doc.0);
            prop_assert_eq!(x.bon.to_bits(), y.bon.to_bits(), "bon bits for doc {}", x.doc.0);
        }

        // Block-max pruning over reloaded snapshots: the pruned path
        // must stay bit-identical whether the postings live on the heap
        // or straight in a file mapping.
        let (heap_idx, mmap_idx) = round_trip_both_backends(&g, &idx, "pruned");
        for (reloaded, label) in [(&heap_idx, "heap"), (&mmap_idx, "mmap")] {
            let again = search(&g, &li, &pruned_cfg, reloaded, &query, k);
            prop_assert_eq!(again.results.len(), pruned.results.len(), "{} reload", label);
            for (x, y) in again.results.iter().zip(&pruned.results) {
                prop_assert_eq!(x.doc, y.doc, "{} reload doc order", label);
                prop_assert_eq!(
                    x.score.to_bits(), y.score.to_bits(),
                    "{} reload score bits for doc {}", label, x.doc.0
                );
            }
        }
    }

    /// The escape hatch really is exhaustive: with pruning off, every
    /// pruning counter stays zero; with it on (and no TA), the evaluator
    /// reports its work.
    #[test]
    fn prune_counters_only_tick_on_the_pruned_path(
        docs in corpus_strategy(),
        query in query_strategy(),
    ) {
        let (g, li) = world();
        let pruned_cfg = NewsLinkConfig::default();
        let oracle_cfg = NewsLinkConfig::default().with_prune_topk(false);
        let idx = index_corpus(&g, &li, &pruned_cfg, &docs);
        let oracle = search(&g, &li, &oracle_cfg, &idx, &query, 5);
        prop_assert_eq!(oracle.prune.candidates, 0);
        prop_assert_eq!(oracle.prune.scored, 0);
        prop_assert_eq!(oracle.prune.blocks_skipped, 0);
        let pruned = search(&g, &li, &pruned_cfg, &idx, &query, 5);
        if !pruned.results.is_empty() {
            prop_assert!(pruned.prune.candidates > 0, "matches imply candidates");
            prop_assert!(pruned.prune.scored > 0, "results imply scored docs");
            prop_assert!(pruned.prune.scored <= pruned.prune.candidates);
        }
    }
}
