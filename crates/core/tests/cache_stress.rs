//! Concurrency stress: one engine's caches hammered simultaneously by
//! corpus indexing (crossbeam workers) and batch search (scoped threads),
//! with capacities tiny enough to force constant eviction. Every result
//! must still match a cache-disabled reference engine.

use newslink_core::{CacheConfig, NewsLink, NewsLinkConfig, SearchRequest};
use newslink_kg::{synth, LabelIndex, SynthConfig};

#[test]
fn concurrent_indexing_and_search_under_eviction_pressure() {
    let world = synth::generate(&SynthConfig::small(11));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();
    assert!(pool.len() >= 8);

    // Enough distinct entity groups to overflow a 4-entry group memo.
    let docs: Vec<String> = (0..16)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 5 + 1) % pool.len()]);
            format!("Clashes involving {a} were reported close to {b}.")
        })
        .collect();
    let queries: Vec<String> = (0..6)
        .map(|i| {
            let a = world.graph.label(pool[(i * 11 + 2) % pool.len()]);
            format!("latest developments around {a}")
        })
        .collect();

    let tiny = CacheConfig {
        enabled: true,
        group_capacity: 4,
        distance_capacity: 2,
        query_capacity: 2,
    };
    let cfg = NewsLinkConfig::default().with_threads(2).with_cache(tiny);
    let engine = NewsLink::new(&world.graph, &labels, cfg.clone());
    let reference = NewsLink::new(&world.graph, &labels, cfg.without_cache());

    let ref_index = reference.index_corpus(&docs);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| reference.search(&ref_index, q, 5).results)
        .collect();

    // 4 workers × 3 rounds, each round indexing the corpus (which fans
    // out to crossbeam workers internally) and batch-searching it (scoped
    // threads), all through the same shared caches.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..3 {
                    let index = engine.index_corpus(&docs);
                    assert_eq!(index.embedded_docs, ref_index.embedded_docs);
                    let requests: Vec<SearchRequest> =
                        queries.iter().map(|q| SearchRequest::new(q).with_k(5)).collect();
                    let batch = engine.execute_batch(&index, &requests);
                    for (response, want) in batch.responses.iter().zip(&expected) {
                        assert_eq!(&response.results, want);
                    }
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert!(stats.combined().lookups() > 0, "caches were never consulted");
    assert!(
        stats.groups.evictions > 0,
        "tiny group capacity must evict under this load: {stats:?}"
    );
    assert!(stats.groups.hits > 0, "repeat groups must hit");
}
