//! Write-ahead log for live index mutations.
//!
//! The segmented live path (§6e) applies `POST /docs` / `DELETE
//! /docs/<id>` mutations in memory; snapshots make them durable only at
//! checkpoint time. The WAL closes the gap: every mutation is appended
//! here and fsynced *before* the caller acknowledges it, so a `kill -9`
//! at any byte loses nothing that was acknowledged. On open, the log is
//! replayed over the latest snapshot (see
//! [`DurableStore`](crate::store::DurableStore)); a checkpoint writes an
//! atomic snapshot and resets the log.
//!
//! ## On-disk format
//!
//! ```text
//! "NLWL" (4)  version (1)
//! record*  where  record = [payload-len varint][payload][CRC-32 LE (4)]
//! payload  = 0x01 [doc-id varint][text-len varint][text UTF-8]   insert
//!          | 0x02 [doc-id varint]                                 delete
//! ```
//!
//! The length prefix frames records; the CRC detects torn or corrupted
//! appends. [`scan`] is total: on *any* byte slice it returns the
//! longest prefix of intact records plus how many trailing bytes are
//! torn — it never panics and never returns a half-record. A torn tail
//! can only be the final append (appends are sequential and fsynced),
//! which by construction was never acknowledged, so truncating it on
//! open is exactly the crash contract.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use newslink_util::failpoint::FaultMedia;
use newslink_util::{crc32, varint};

/// File magic for WAL files.
pub const WAL_MAGIC: &[u8; 4] = b"NLWL";
/// Current WAL format version.
pub const WAL_VERSION: u8 = 1;
/// Bytes of magic + version before the first record.
pub const WAL_HEADER_LEN: u64 = 5;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
/// Documents are measured in kilobytes; a longer payload length means a
/// corrupt prefix. [`Wal::append`] enforces the same bound on the way
/// in, so a record it acknowledges is always one [`scan`] will accept.
pub const MAX_RECORD_BYTES: u64 = 1 << 28;
/// Upper bound handed to [`varint::read_str`] when decoding a payload.
const MAX_TEXT_BYTES: usize = MAX_RECORD_BYTES as usize;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A document insert: the id the live path assigned and the raw text
    /// (replay re-embeds it; embeddings are deterministic given the
    /// graph and config, so the replayed segment is bit-identical).
    Insert {
        /// The global id reserved for the document.
        id: u32,
        /// The document text.
        text: String,
    },
    /// A document delete (tombstone).
    Delete {
        /// The global id being tombstoned.
        id: u32,
    },
}

/// Append `record`'s framed encoding to `out`.
pub fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = Vec::new();
    match record {
        WalRecord::Insert { id, text } => {
            payload.push(TAG_INSERT);
            varint::write_u32(&mut payload, *id).expect("vec write is infallible");
            varint::write_str(&mut payload, text).expect("vec write is infallible");
        }
        WalRecord::Delete { id } => {
            payload.push(TAG_DELETE);
            varint::write_u32(&mut payload, *id).expect("vec write is infallible");
        }
    }
    varint::write_u64(out, payload.len() as u64).expect("vec write is infallible");
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut cursor = payload;
    let input = &mut cursor;
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag).ok()?;
    let record = match tag[0] {
        TAG_INSERT => WalRecord::Insert {
            id: varint::read_u32(input).ok()?,
            text: varint::read_str(input, MAX_TEXT_BYTES).ok()?,
        },
        TAG_DELETE => WalRecord::Delete {
            id: varint::read_u32(input).ok()?,
        },
        _ => return None,
    };
    // Trailing bytes under a valid CRC mean an encoder/decoder mismatch;
    // treat the record as unreadable rather than silently dropping data.
    if !input.is_empty() {
        return None;
    }
    Some(record)
}

/// What [`scan`] recovered from a WAL byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Intact records, in append order.
    pub records: Vec<WalRecord>,
    /// Whether the magic + version header was intact. When false there
    /// are no records and the whole file length counts as torn.
    pub header_ok: bool,
    /// Byte length of the valid prefix (header + intact records); the
    /// file should be truncated to this on open.
    pub valid_len: u64,
    /// Bytes beyond the valid prefix: a torn final append (or, with
    /// `header_ok == false`, a file that never finished its header).
    pub torn_bytes: u64,
}

/// Parse a WAL byte image, stopping at the first record that is torn
/// (length prefix or body runs past the end) or corrupt (CRC mismatch,
/// unknown tag, payload underrun). Total: never panics, never errors.
pub fn scan(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_HEADER_LEN as usize
        || &bytes[..4] != WAL_MAGIC
        || bytes[4] != WAL_VERSION
    {
        return WalScan {
            records: Vec::new(),
            header_ok: false,
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
        };
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN as usize;
    loop {
        let mut cursor = &bytes[at..];
        if cursor.is_empty() {
            break;
        }
        let Ok(len) = varint::read_u64(&mut cursor) else {
            break; // torn length prefix
        };
        if len > MAX_RECORD_BYTES || (len as usize + 4) > cursor.len() {
            break; // implausible length, or body/CRC runs past the end
        }
        let (payload, rest) = cursor.split_at(len as usize);
        let stored = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if crc32(payload) != stored {
            break; // torn or bit-flipped append
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        records.push(record);
        at = bytes.len() - rest.len() + 4;
    }
    WalScan {
        records,
        header_ok: true,
        valid_len: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
    }
}

/// The storage operations [`Wal`] needs from its backing file.
///
/// Production code uses [`File`]; crash tests substitute
/// [`FaultMedia`] to drive the append *error* path (torn write, failed
/// fsync, failed repair) deterministically at every byte offset — the
/// shapes a real disk produces at the worst possible moments.
pub trait WalStorage {
    /// Write all of `buf` at the current cursor.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make every prior write durable (fsync).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncate (or zero-extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the cursor to absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

impl WalStorage for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        File::set_len(self, len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        self.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl WalStorage for FaultMedia {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        FaultMedia::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        FaultMedia::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        FaultMedia::set_len(self, len)
    }

    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        FaultMedia::seek_to(self, pos)
    }
}

/// An open WAL file: appends are fsynced before they return, so a
/// record that [`Wal::append`] acknowledged survives any crash.
///
/// A *failed* append repairs the file back to its pre-append length
/// before returning the error, so the log stays usable: later appends
/// land after the acknowledged prefix, never after garbage. If the
/// repair itself fails the log is **poisoned** — every further append
/// and reset refuses with an error until the file is reopened (which
/// re-runs torn-tail recovery) — because continuing to write at an
/// unknown offset could bury acknowledged records behind an unscannable
/// frame.
#[derive(Debug)]
pub struct Wal<S: WalStorage = File> {
    storage: S,
    len: u64,
    poisoned: bool,
}

impl Wal<File> {
    /// Open (or create) the log at `path`, recover its intact records
    /// and truncate any torn tail. Returns the log positioned for
    /// appends, the recovered records, and how many torn bytes were
    /// discarded.
    pub fn open(path: &Path) -> io::Result<(Self, Vec<WalRecord>, u64)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scanned = scan(&bytes);
        let (records, torn) = if scanned.header_ok {
            if scanned.torn_bytes > 0 {
                file.set_len(scanned.valid_len)?;
                file.sync_data()?;
            }
            (scanned.records, scanned.torn_bytes)
        } else {
            // Unreadable header: either a brand-new file (0 bytes, the
            // common case) or one that died mid-header before any record
            // was acknowledged. Start it over.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            Write::write_all(&mut file, WAL_MAGIC)?;
            Write::write_all(&mut file, &[WAL_VERSION])?;
            file.sync_data()?;
            (Vec::new(), bytes.len() as u64)
        };
        let len = if scanned.header_ok {
            scanned.valid_len
        } else {
            WAL_HEADER_LEN
        };
        file.seek(SeekFrom::Start(len))?;
        Ok((
            Self {
                storage: file,
                len,
                poisoned: false,
            },
            records,
            torn,
        ))
    }
}

impl<S: WalStorage> Wal<S> {
    /// Start an empty log on `storage` (writing and syncing the header).
    /// This is the fault-injection entry point: production opens go
    /// through [`Wal::open`], which also recovers existing records.
    pub fn over(mut storage: S) -> io::Result<Self> {
        storage.set_len(0)?;
        storage.seek_to(0)?;
        storage.write_all(WAL_MAGIC)?;
        storage.write_all(&[WAL_VERSION])?;
        storage.sync_data()?;
        Ok(Self {
            storage,
            len: WAL_HEADER_LEN,
            poisoned: false,
        })
    }

    /// The backing storage (for inspecting the byte image in tests).
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Mutable access to the backing storage, for arming injected
    /// failures. Mutating the file image itself voids the `Wal`'s
    /// invariants — reopen to recover.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Append one record and fsync it. When this returns `Ok`, the
    /// record is durable; on `Err`, the caller must NOT acknowledge the
    /// mutation. An `Err` leaves the log consistent: the file has been
    /// truncated back to its pre-append length (acknowledged records are
    /// untouched and later appends land cleanly after them), or — if
    /// that repair also failed — the log is poisoned and every further
    /// append fails until the file is reopened.
    ///
    /// A record whose payload exceeds [`MAX_RECORD_BYTES`] is rejected
    /// up front (`InvalidInput`) without touching the file: [`scan`]
    /// would refuse the frame on reopen, silently dropping it and every
    /// record after it.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an unrepaired append failure; reopen the log to recover",
            ));
        }
        let payload = payload_len(record);
        if payload > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "wal record payload is {payload} bytes, over the \
                     {MAX_RECORD_BYTES}-byte scan limit"
                ),
            ));
        }
        let mut buf = Vec::new();
        encode_record(&mut buf, record);
        let wrote = self
            .storage
            .write_all(&buf)
            .and_then(|()| self.storage.sync_data());
        match wrote {
            Ok(()) => {
                self.len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Partial (or fully written but unacknowledged) frame
                // bytes sit at the cursor: cut them off so the next
                // append continues from the acknowledged prefix, and so
                // a sync-failed-but-written record cannot resurrect on
                // replay.
                if self.repair().is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Restore the on-disk invariant `file == acknowledged prefix` after
    /// a failed write: truncate to the last acknowledged length, move
    /// the cursor back, and sync the truncation.
    fn repair(&mut self) -> io::Result<()> {
        self.storage.set_len(self.len)?;
        self.storage.seek_to(self.len)?;
        self.storage.sync_data()
    }

    /// Discard all records (the snapshot now owns them): truncate back
    /// to the header and fsync. On `Err` the log is poisoned — the file
    /// may or may not have shrunk, so the in-memory length can no longer
    /// be trusted; reopen to recover. (The records themselves stay safe
    /// either way: they are idempotent against the snapshot that
    /// prompted the reset.)
    pub fn reset(&mut self) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an unrepaired append failure; reopen the log to recover",
            ));
        }
        let result = self
            .storage
            .set_len(WAL_HEADER_LEN)
            .and_then(|()| self.storage.seek_to(WAL_HEADER_LEN))
            .and_then(|()| self.storage.sync_data());
        match result {
            Ok(()) => {
                self.len = WAL_HEADER_LEN;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Current file length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN
    }

    /// True when a failed append could not be repaired: the log refuses
    /// all writes until reopened.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

fn varint_len(mut v: u64) -> u64 {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Byte length of `record`'s frame payload (tag + varints + text),
/// computed without building it.
fn payload_len(record: &WalRecord) -> u64 {
    match record {
        WalRecord::Insert { id, text } => {
            1 + varint_len(u64::from(*id))
                + varint_len(text.len() as u64)
                + text.len() as u64
        }
        WalRecord::Delete { id } => 1 + varint_len(u64::from(*id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                id: 0,
                text: "Taliban attacked Kunar.".into(),
            },
            WalRecord::Delete { id: 0 },
            WalRecord::Insert {
                id: 1,
                text: "Pakistan held talks in Khyber — über déjà-vu.".into(),
            },
            WalRecord::Insert {
                id: 2,
                text: String::new(),
            },
            WalRecord::Delete { id: 2 },
        ]
    }

    fn image(records: &[WalRecord]) -> (Vec<u8>, Vec<u64>) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(WAL_MAGIC);
        bytes.push(WAL_VERSION);
        // Byte offset at which each record's frame *ends*.
        let mut ends = Vec::new();
        for r in records {
            encode_record(&mut bytes, r);
            ends.push(bytes.len() as u64);
        }
        (bytes, ends)
    }

    #[test]
    fn encode_scan_round_trip() {
        let records = sample_records();
        let (bytes, _) = image(&records);
        let scanned = scan(&bytes);
        assert!(scanned.header_ok);
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len() as u64);
        assert_eq!(scanned.torn_bytes, 0);
    }

    #[test]
    fn scan_of_every_prefix_recovers_exactly_the_whole_frames() {
        let records = sample_records();
        let (bytes, ends) = image(&records);
        for cut in 0..=bytes.len() {
            let scanned = scan(&bytes[..cut]);
            if cut < WAL_HEADER_LEN as usize {
                assert!(!scanned.header_ok, "cut {cut}");
                assert_eq!(scanned.torn_bytes, cut as u64);
                continue;
            }
            // Exactly the records whose frames fit wholly in the prefix.
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(scanned.records.len(), expect, "cut {cut}");
            assert_eq!(scanned.records[..], records[..expect], "cut {cut}");
            let valid = ends[..expect].last().copied().unwrap_or(WAL_HEADER_LEN);
            assert_eq!(scanned.valid_len, valid, "cut {cut}");
            assert_eq!(scanned.torn_bytes, cut as u64 - valid, "cut {cut}");
        }
    }

    #[test]
    fn scan_stops_at_any_flipped_byte_and_keeps_the_prefix() {
        let records = sample_records();
        let (bytes, ends) = image(&records);
        for at in WAL_HEADER_LEN as usize..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            let scanned = scan(&bad);
            assert!(scanned.header_ok, "flip at {at}");
            // Recovered records must be a prefix of the originals: a
            // flip never invents or reorders mutations. Records whose
            // frames end at or before the flipped byte are untouched.
            let intact = ends.iter().filter(|&&e| e <= at as u64).count();
            assert!(scanned.records.len() >= intact, "flip at {at}");
            assert_eq!(
                scanned.records[..],
                records[..scanned.records.len()],
                "flip at {at}"
            );
        }
    }

    #[test]
    fn scan_rejects_foreign_headers() {
        for bytes in [
            &b""[..],
            &b"NLW"[..],
            &b"XXXX\x01"[..],
            &b"NLWL\x09"[..], // wrong version
        ] {
            let scanned = scan(bytes);
            assert!(!scanned.header_ok);
            assert!(scanned.records.is_empty());
            assert_eq!(scanned.torn_bytes, bytes.len() as u64);
        }
    }

    fn temp_wal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("newslink_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_append_reopen_and_reset() {
        let path = temp_wal("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        {
            let (mut wal, recovered, torn) = Wal::open(&path).unwrap();
            assert!(recovered.is_empty());
            assert_eq!(torn, 0);
            assert!(wal.is_empty());
            for r in &records {
                wal.append(r).unwrap();
            }
            assert!(!wal.is_empty());
        }
        // Reopen: every acknowledged record is back, none torn.
        let (mut wal, recovered, torn) = Wal::open(&path).unwrap();
        assert_eq!(recovered, records);
        assert_eq!(torn, 0);
        // Checkpoint: reset empties the log durably.
        wal.reset().unwrap();
        drop(wal);
        let (wal, recovered, torn) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(torn, 0);
        assert!(wal.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends_continue() {
        let path = temp_wal("torn.wal");
        std::fs::remove_file(&path).ok();
        let records = sample_records();
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            for r in &records[..3] {
                wal.append(r).unwrap();
            }
        }
        // Simulate a crash mid-append: half of a fourth record on disk.
        let mut torn_frame = Vec::new();
        encode_record(&mut torn_frame, &records[3]);
        let keep = torn_frame.len() / 2;
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            Write::write_all(&mut f, &torn_frame[..keep]).unwrap();
        }
        let (mut wal, recovered, torn) = Wal::open(&path).unwrap();
        assert_eq!(recovered, records[..3], "acknowledged records survive");
        assert_eq!(torn, keep as u64, "the torn tail is measured and dropped");
        // The log is usable immediately: a fresh append lands cleanly.
        wal.append(&records[4]).unwrap();
        drop(wal);
        let (_, recovered, torn) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 4);
        assert_eq!(recovered[3], records[4]);
        assert_eq!(torn, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unreadable_header_restarts_the_file() {
        let path = temp_wal("badheader.wal");
        std::fs::write(&path, b"NL").unwrap(); // died mid-header
        let (wal, recovered, torn) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(torn, 2);
        assert!(wal.is_empty());
        drop(wal);
        assert_eq!(std::fs::read(&path).unwrap(), b"NLWL\x01");
        std::fs::remove_file(&path).ok();
    }

    use newslink_util::failpoint::{is_injected, FailMode, FaultMedia};

    /// A failed append (torn at every byte offset of the frame, in both
    /// failure modes) repairs the file back to the acknowledged prefix,
    /// and the log keeps accepting appends.
    #[test]
    fn failed_append_repairs_the_file_and_the_log_continues() {
        let records = sample_records();
        let mut frame = Vec::new();
        encode_record(&mut frame, &records[1]);
        for mode in [FailMode::Clean, FailMode::ShortWrite] {
            for cut in 0..frame.len() {
                let label = format!("mode {mode:?}, cut {cut}");
                let mut wal = Wal::over(FaultMedia::new()).unwrap();
                wal.append(&records[0]).unwrap();
                let len_before = wal.len();

                wal.storage_mut().fail_write_after(cut as u64, mode);
                let err = wal.append(&records[1]).unwrap_err();
                assert!(is_injected(&err), "{label}: {err}");
                assert!(!wal.is_poisoned(), "{label}: repair succeeded");
                assert_eq!(wal.len(), len_before, "{label}: length not advanced");

                // The file holds exactly the acknowledged record: no
                // partial frame bytes survive the repair.
                let scanned = scan(wal.storage().contents());
                assert_eq!(scanned.records, records[..1], "{label}");
                assert_eq!(scanned.torn_bytes, 0, "{label}: garbage truncated");

                // The next append lands cleanly after the prefix — not
                // after garbage — so nothing acknowledged is ever lost.
                wal.append(&records[2]).unwrap();
                let scanned = scan(wal.storage().contents());
                assert_eq!(
                    scanned.records,
                    vec![records[0].clone(), records[2].clone()],
                    "{label}"
                );
                assert_eq!(scanned.torn_bytes, 0, "{label}");
            }
        }
    }

    /// The subtle case: the frame is *fully written* but the fsync
    /// fails. The record was never acknowledged, so the repair must
    /// remove it — otherwise a crash-free continuation (or a replay)
    /// would resurrect a mutation the caller rolled back.
    #[test]
    fn failed_fsync_rolls_the_unacknowledged_frame_back() {
        let records = sample_records();
        let mut wal = Wal::over(FaultMedia::new()).unwrap();
        wal.append(&records[0]).unwrap();

        wal.storage_mut().fail_next_sync();
        let err = wal.append(&records[1]).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(!wal.is_poisoned());
        let scanned = scan(wal.storage().contents());
        assert_eq!(scanned.records, records[..1], "unsynced frame removed");
        assert_eq!(scanned.torn_bytes, 0);

        wal.append(&records[2]).unwrap();
        let scanned = scan(wal.storage().contents());
        assert_eq!(scanned.records, vec![records[0].clone(), records[2].clone()]);
    }

    /// When the repair itself fails, the log poisons itself: every later
    /// append and reset refuses, and reopening the image recovers
    /// exactly the acknowledged records (the garbage tail scans as torn).
    #[test]
    fn failed_repair_poisons_the_log() {
        let records = sample_records();
        let mut wal = Wal::over(FaultMedia::new()).unwrap();
        wal.append(&records[0]).unwrap();

        wal.storage_mut().fail_write_after(3, FailMode::ShortWrite);
        wal.storage_mut().fail_next_set_len();
        let err = wal.append(&records[1]).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(wal.is_poisoned());

        let err = wal.append(&records[2]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        let err = wal.reset().unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");

        // The image still recovers every acknowledged record; the three
        // torn bytes the failed repair left behind scan as a torn tail.
        let scanned = scan(wal.storage().contents());
        assert_eq!(scanned.records, records[..1]);
        assert_eq!(scanned.torn_bytes, 3);
    }

    /// A failed reset poisons (the file may or may not have shrunk), and
    /// the acknowledged records survive for the reopen.
    #[test]
    fn failed_reset_poisons_the_log() {
        let records = sample_records();
        let mut wal = Wal::over(FaultMedia::new()).unwrap();
        wal.append(&records[0]).unwrap();
        wal.storage_mut().fail_next_set_len();
        assert!(wal.reset().is_err());
        assert!(wal.is_poisoned());
        assert!(wal.append(&records[1]).is_err());
        let scanned = scan(wal.storage().contents());
        assert_eq!(scanned.records, records[..1]);
    }

    /// An oversized record is refused before any byte reaches the file:
    /// fsyncing a frame `scan` would reject silently drops it (and every
    /// record after it) on reopen.
    #[test]
    fn oversized_record_is_rejected_before_touching_the_file() {
        let records = sample_records();
        let mut wal = Wal::over(FaultMedia::new()).unwrap();
        wal.append(&records[0]).unwrap();
        let len_before = wal.len();

        let big = String::from_utf8(vec![b'x'; MAX_RECORD_BYTES as usize]).unwrap();
        let err = wal
            .append(&WalRecord::Insert { id: 7, text: big })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{err}");
        assert!(!wal.is_poisoned(), "a rejected record is not a failure");
        assert_eq!(wal.len(), len_before);
        assert_eq!(
            wal.storage().contents().len() as u64,
            len_before,
            "nothing was written"
        );
        wal.append(&records[1]).unwrap();
    }

    /// `payload_len` agrees with the encoder exactly, so the
    /// `MAX_RECORD_BYTES` gate keys off the real frame size.
    #[test]
    fn payload_len_matches_the_encoder() {
        let mut records = sample_records();
        records.push(WalRecord::Insert {
            id: u32::MAX,
            text: "x".repeat(300), // two-byte length varint
        });
        for r in &records {
            let mut frame = Vec::new();
            encode_record(&mut frame, r);
            let framed = payload_len(r)
                + varint_len(payload_len(r)) // length prefix
                + 4; // CRC
            assert_eq!(frame.len() as u64, framed, "{r:?}");
        }
    }
}
