//! Lucene-style score explanations.
//!
//! Lucene's `explain()` API decomposes a document's score into per-term
//! contributions; since NewsLink's NS component is Lucene-compatible by
//! design (§VI), we provide the same introspection for the *blended* score:
//! the BOW side lists word-term BM25 contributions, the BON side lists
//! node-term contributions with their knowledge-graph labels, and the
//! blend shows how β combined the two normalized sides.

use std::fmt;

use newslink_embed::{bon_terms, parse_node_term};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::{query_tf, Bm25, DocId};

use crate::config::NewsLinkConfig;
use crate::indexer::{embed_one, NewsLinkIndex};
use crate::segment::Side;

/// One term's contribution to one side of the score.
#[derive(Debug, Clone, PartialEq)]
pub struct TermContribution {
    /// The index term (word, or `n<id>` node term).
    pub term: String,
    /// Human-readable rendering (the node's KG label for BON terms).
    pub display: String,
    /// Term frequency in the document / embedding.
    pub tf: u32,
    /// Document frequency in the index.
    pub df: u32,
    /// Query-side term frequency.
    pub qtf: u32,
    /// BM25 contribution.
    pub score: f64,
}

/// One side (BOW or BON) of the blended score.
#[derive(Debug, Clone, Default)]
pub struct SideExplanation {
    /// Per-term contributions, largest first.
    pub contributions: Vec<TermContribution>,
    /// Raw accumulated score.
    pub raw: f64,
    /// The normalization divisor (the side's maximum over all candidates),
    /// 0 when normalization is off or the side is empty.
    pub max_raw: f64,
    /// The normalized value entering the blend.
    pub normalized: f64,
}

/// The full explanation of `F(query, doc)`.
#[derive(Debug, Clone)]
pub struct ScoreExplanation {
    /// The explained document.
    pub doc: DocId,
    /// β used in the blend.
    pub beta: f64,
    /// `(1-β)·bow.normalized + β·bon.normalized`.
    pub total: f64,
    /// The text side.
    pub bow: SideExplanation,
    /// The subgraph-embedding side.
    pub bon: SideExplanation,
}

impl fmt::Display for ScoreExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "doc {}: F = {:.4} = {:.2}·{:.4} (BOW) + {:.2}·{:.4} (BON)",
            self.doc.0,
            self.total,
            1.0 - self.beta,
            self.bow.normalized,
            self.beta,
            self.bon.normalized
        )?;
        for (name, side) in [("BOW", &self.bow), ("BON", &self.bon)] {
            writeln!(
                f,
                "  {name}: raw {:.4}{}",
                side.raw,
                if side.max_raw > 0.0 {
                    format!(" / max {:.4} = {:.4}", side.max_raw, side.normalized)
                } else {
                    String::new()
                }
            )?;
            for c in &side.contributions {
                writeln!(
                    f,
                    "    {:<28} tf={:<3} df={:<4} qtf={} -> {:.4}",
                    c.display, c.tf, c.df, c.qtf, c.score
                )?;
            }
        }
        Ok(())
    }
}

/// Per-term contributions of `query_terms` against `doc` on one side of
/// the segmented index. The document's term frequencies come from its own
/// segment; document frequencies and collection statistics use the same
/// global overlay as ranking, so each contribution replays the searcher's
/// float operations exactly.
fn side_contributions(
    index: &NewsLinkIndex,
    side: Side,
    scorer: Bm25,
    query_terms: &[String],
    doc: DocId,
    display: impl Fn(&str) -> String,
) -> SideExplanation {
    let Some((seg, local)) = index.locate(doc) else {
        return SideExplanation::default();
    };
    if !index.is_live(doc) {
        return SideExplanation::default();
    }
    let seg_index = seg.side(side);
    let stats = index.side_stats(side);
    let qtf = query_tf(query_terms);
    let global_df = index.side_global_df(side, &qtf);
    let mut contributions = Vec::new();
    let mut raw = 0.0;
    for (term, &qtf) in &qtf {
        let tf = seg_index.term_freq(term, local);
        if tf == 0 {
            continue;
        }
        let df = global_df.get(term).copied().unwrap_or(0);
        let score = scorer.contribution_with(stats, seg_index.doc_len(local), tf, df, qtf);
        raw += score;
        contributions.push(TermContribution {
            term: term.to_string(),
            display: display(term),
            tf,
            df,
            qtf,
            score,
        });
    }
    contributions.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.term.cmp(&b.term)));
    SideExplanation {
        contributions,
        raw,
        max_raw: 0.0,
        normalized: raw,
    }
}

/// Explain the blended score of `doc` for `query_text`.
///
/// Runs the same NLP/NE path as [`crate::searcher::search`] and, when
/// `config.normalize_scores` is on, recomputes each side's normalization
/// divisor over the whole candidate set so the reported numbers match the
/// ranking exactly.
pub fn explain_score(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    index: &NewsLinkIndex,
    query_text: &str,
    doc: DocId,
) -> ScoreExplanation {
    let artifacts = embed_one(graph, label_index, config, query_text);
    let beta = config.beta;
    let bow_scorer = Bm25::default();
    let bon_scorer = Bm25 { k1: 1.2, b: 0.0 };
    let bon_query = bon_terms(&artifacts.embedding);

    let mut bow = if beta < 1.0 {
        side_contributions(
            index,
            Side::Bow,
            bow_scorer,
            &artifacts.analysis.terms,
            doc,
            |t| t.to_string(),
        )
    } else {
        SideExplanation::default()
    };
    let mut bon = if beta > 0.0 {
        side_contributions(index, Side::Bon, bon_scorer, &bon_query, doc, |t| {
            match parse_node_term(t) {
                Some(node) if graph.contains(node) => {
                    format!("{t} ({})", graph.label(node))
                }
                _ => t.to_string(),
            }
        })
    } else {
        SideExplanation::default()
    };

    if config.normalize_scores {
        let side_max = |side: Side, terms: &[String]| -> f64 {
            index
                .score_side_parts(side, match side {
                    Side::Bow => bow_scorer,
                    Side::Bon => bon_scorer,
                }, terms, 1)
                .iter()
                .flat_map(|m| m.values().copied())
                .fold(0.0, f64::max)
        };
        if beta < 1.0 {
            bow.max_raw = side_max(Side::Bow, &artifacts.analysis.terms);
            bow.normalized = if bow.max_raw > 0.0 { bow.raw / bow.max_raw } else { 0.0 };
        }
        if beta > 0.0 {
            bon.max_raw = side_max(Side::Bon, &bon_query);
            bon.normalized = if bon.max_raw > 0.0 { bon.raw / bon.max_raw } else { 0.0 };
        }
    }

    ScoreExplanation {
        doc,
        beta,
        total: (1.0 - beta) * bow.normalized + beta * bon.normalized,
        bow,
        bon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held trade talks.",
    ];

    #[test]
    fn explanation_total_matches_search_score() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let q = "Taliban clashes near Kunar in Pakistan";
        let outcome = search(&g, &li, &cfg, &idx, q, 5);
        for hit in &outcome.results {
            let ex = explain_score(&g, &li, &cfg, &idx, q, hit.doc);
            assert!(
                (ex.total - hit.score).abs() < 1e-9,
                "doc {}: explain {} vs search {}",
                hit.doc.0,
                ex.total,
                hit.score
            );
            assert!((ex.bow.normalized - hit.bow).abs() < 1e-9);
            assert!((ex.bon.normalized - hit.bon).abs() < 1e-9);
        }
    }

    #[test]
    fn bon_contributions_show_node_labels() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let ex = explain_score(&g, &li, &cfg, &idx, "Taliban in Kunar", DocId(0));
        assert!(!ex.bon.contributions.is_empty());
        assert!(
            ex.bon
                .contributions
                .iter()
                .any(|c| c.display.contains("Taliban") || c.display.contains("Kunar")),
            "{:?}",
            ex.bon.contributions
        );
    }

    #[test]
    fn display_renders_both_sides() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let ex = explain_score(&g, &li, &cfg, &idx, "Pakistan talks", DocId(1));
        let text = ex.to_string();
        assert!(text.contains("BOW"));
        assert!(text.contains("BON"));
        assert!(text.contains("F ="));
    }

    #[test]
    fn contributions_sorted_descending() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let ex = explain_score(&g, &li, &cfg, &idx, "Taliban Kunar Pakistan Khyber", DocId(0));
        assert!(ex
            .bow
            .contributions
            .windows(2)
            .all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn non_matching_doc_scores_zero() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let ex = explain_score(&g, &li, &cfg, &idx, "cricket stadium", DocId(0));
        assert_eq!(ex.total, 0.0);
        assert!(ex.bow.contributions.is_empty());
        assert!(ex.bon.contributions.is_empty());
    }
}
