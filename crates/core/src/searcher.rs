//! Query processing: the NS component's scoring half (§VI, Equation 3).
//!
//! A query is treated exactly like a document: NLP analysis, `G*`
//! embedding, then
//!
//! ```text
//! F(Tq, Tc) = (1-β) · F_BOW(Tq, Tc) + β · F_BON(G*q, G*c)
//! ```
//!
//! over the union of candidates from both inverted indexes (BM25 on each),
//! followed by top-k selection.

use std::sync::Arc;
use std::time::{Duration, Instant};

use newslink_embed::{bon_terms, relationship_paths, DocEmbedding, RelationshipPath};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::{Bm25, DocId, ParallelStats, PruneStats};
use newslink_util::{ComponentTimer, FxHashMap, TopK};

use crate::api::QueryCacheInfo;
use crate::cache::{EngineCaches, QueryArtifacts};
use crate::config::NewsLinkConfig;
use crate::indexer::{embed_one_with, NewsLinkIndex};
use crate::segment::Side;
use crate::ta::threshold_algorithm;

/// One blended search result.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SearchResult {
    /// The matched document.
    pub doc: DocId,
    /// The blended score `F`.
    pub score: f64,
    /// The BOW component (already normalized if configured).
    pub bow: f64,
    /// The BON component (already normalized if configured).
    pub bon: f64,
}

/// The artifacts of processing one query (reused for explanations).
#[derive(Debug)]
pub struct QueryOutcome {
    /// Ranked results, best first.
    pub results: Vec<SearchResult>,
    /// The query's own subgraph embedding.
    pub embedding: DocEmbedding,
    /// Per-component latency ("nlp", "ne", "ns").
    pub timer: ComponentTimer,
    /// How the engine's caches served this query (all-false for the
    /// uncached free-function entry points).
    pub cache: QueryCacheInfo,
    /// The deadline expired between pipeline stages; `results` is empty
    /// and `timer` reports only the stages that ran.
    pub timed_out: bool,
    /// Pruned-evaluator work counters (all zero on the exhaustive and
    /// Threshold-Algorithm paths, which do their own accounting).
    pub prune: PruneStats,
    /// Intra-query segment fan-out counters (all zero when the NS stage
    /// ran sequentially or took a non-pruned path).
    pub parallel: ParallelStats,
}

/// Max-normalize per-segment score maps in place against their *global*
/// maximum. `max` over a set is order-independent, so this is
/// bit-identical to normalizing one monolithic map.
fn max_normalize_parts(parts: &mut [FxHashMap<DocId, f64>]) {
    let max = parts
        .iter()
        .flat_map(|m| m.values().copied())
        .fold(0.0f64, f64::max);
    if max > 0.0 {
        for m in parts.iter_mut() {
            for v in m.values_mut() {
                *v /= max;
            }
        }
    }
}

/// Collapse per-segment maps into one global map. Segments hold disjoint
/// documents, so this union is exact.
fn flatten_parts(parts: Vec<FxHashMap<DocId, f64>>) -> FxHashMap<DocId, f64> {
    let mut out = FxHashMap::default();
    for m in parts {
        if out.is_empty() {
            out = m;
        } else {
            out.extend(m);
        }
    }
    out
}

/// Execute a blended NewsLink query (uncached entry point; the engine's
/// [`crate::NewsLink::execute`] routes through the shared caches).
pub fn search(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    index: &NewsLinkIndex,
    query_text: &str,
    k: usize,
) -> QueryOutcome {
    run_query(graph, label_index, config, index, None, query_text, k, None, None)
}

/// The full query path: NLP + NE (through `caches` when provided), then
/// Equation 3 blended scoring and top-k. `beta_override` replaces the
/// configured β for this query only. `deadline` is the request's time
/// budget, checked between pipeline stages: if it has passed once NLP +
/// NE finish, scoring is skipped and the outcome comes back
/// [`timed_out`](QueryOutcome::timed_out) with the partial timer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_query(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    index: &NewsLinkIndex,
    caches: Option<&EngineCaches>,
    query_text: &str,
    k: usize,
    beta_override: Option<f64>,
    deadline: Option<Instant>,
) -> QueryOutcome {
    let mut timer = ComponentTimer::new();
    let mut cache_info = QueryCacheInfo {
        enabled: caches.is_some(),
        query_hit: false,
    };
    let (terms, embedding) = analyze_query_text(
        graph,
        label_index,
        config,
        caches,
        query_text,
        &mut timer,
        &mut cache_info,
    );

    // Deadline gate between the NLP/NE and NS stages: embedding work is
    // already spent (and cached for a retry), but scoring is skipped and
    // the caller gets the partial timer report.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return QueryOutcome {
            results: Vec::new(),
            embedding,
            timer,
            cache: cache_info,
            timed_out: true,
            prune: PruneStats::default(),
            parallel: ParallelStats::default(),
        };
    }

    let t_ns = Instant::now();
    let beta = beta_override.unwrap_or(config.beta).clamp(0.0, 1.0);
    let fan_threads = config.effective_threads(index.segment_count());
    let search_threads = config.effective_search_threads(index.segment_count());
    let mut prune = PruneStats::default();
    let mut parallel = ParallelStats::default();

    let results = if config.prune_topk && !config.use_threshold_algorithm {
        // Block-max pruned blended top-k straight off the posting cursors
        // (bit-identical to the exhaustive oracle below — the escape
        // hatch is `with_prune_topk(false)`).
        let (ranked, stats, fan) = index.blended_topk(
            beta,
            &terms,
            &bon_terms(&embedding),
            config.normalize_scores,
            k,
            search_threads,
        );
        prune = stats;
        parallel = fan;
        ranked
            .into_iter()
            .map(|(score, (doc, bow, bon))| SearchResult {
                doc,
                score,
                bow,
                bon,
            })
            .collect()
    } else if config.prune_topk {
        // TA over cursor-driven side scans: each side's per-segment
        // vectors concatenate into one doc-ascending list whose per-doc
        // sums are bit-identical to the exhaustive score maps, so ranking
        // and probing reproduce the oracle path exactly while skipping
        // its hash-map accumulation. BOW is skipped entirely at β = 1
        // (the paper's NewsLink(1)); BON at β = 0 (reduces to Lucene).
        // Node streams are not prose, so BON's BM25 runs without length
        // normalization (b = 0).
        let scan = |side, scorer, query_terms: &[String], active: bool| -> Vec<(DocId, f64)> {
            if !active {
                return Vec::new();
            }
            let mut flat: Vec<(DocId, f64)> = index
                .side_scan_parts(side, scorer, query_terms, fan_threads)
                .into_iter()
                .flatten()
                .collect();
            if config.normalize_scores {
                let max = flat.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
                if max > 0.0 {
                    for (_, s) in flat.iter_mut() {
                        *s /= max;
                    }
                }
            }
            flat
        };
        let bow_flat = scan(Side::Bow, Bm25::default(), &terms, beta < 1.0);
        let bon_flat = scan(
            Side::Bon,
            Bm25 { k1: 1.2, b: 0.0 },
            &bon_terms(&embedding),
            beta > 0.0,
        );
        let probe = |flat: &[(DocId, f64)], d: DocId| match flat
            .binary_search_by_key(&d, |&(doc, _)| doc)
        {
            Ok(i) => flat[i].1,
            Err(_) => 0.0,
        };
        let mut bow_ranked = bow_flat.clone();
        bow_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut bon_ranked = bon_flat.clone();
        bon_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        threshold_algorithm(
            &bow_ranked,
            &bon_ranked,
            |d| probe(&bow_flat, d),
            |d| probe(&bon_flat, d),
            beta,
            k,
        )
        .results
    } else {
        // Exhaustive oracle path. Both sides fan out across segments under
        // the global-stats overlay, yielding one global-id-keyed score map
        // per segment (disjoint keys). BOW is skipped entirely at β = 1,
        // as in the paper's NewsLink(1).
        let mut bow_parts = if beta < 1.0 {
            index.score_side_parts(Side::Bow, Bm25::default(), &terms, fan_threads)
        } else {
            Vec::new()
        };
        // BON side (skipped at β = 0, which reduces to Lucene). Node
        // streams are not prose: penalizing documents with rich embeddings
        // would contradict the coverage goal, so BM25 runs without length
        // normalization (b = 0) on the BON index.
        let mut bon_parts = if beta > 0.0 {
            let bon_bm25 = Bm25 { k1: 1.2, b: 0.0 };
            index.score_side_parts(Side::Bon, bon_bm25, &bon_terms(&embedding), fan_threads)
        } else {
            Vec::new()
        };
        if config.normalize_scores {
            max_normalize_parts(&mut bow_parts);
            max_normalize_parts(&mut bon_parts);
        }

        if config.use_threshold_algorithm {
            // Ranked-list construction + Fagin's TA (§VI's cited top-k
            // algorithm); equivalent results with an early-terminating
            // scan. TA walks both lists globally, so the parts flatten
            // first.
            let bow_scores = flatten_parts(bow_parts);
            let bon_scores = flatten_parts(bon_parts);
            let mut bow_ranked: Vec<(DocId, f64)> =
                bow_scores.iter().map(|(&d, &s)| (d, s)).collect();
            bow_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut bon_ranked: Vec<(DocId, f64)> =
                bon_scores.iter().map(|(&d, &s)| (d, s)).collect();
            bon_ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            threshold_algorithm(
                &bow_ranked,
                &bon_ranked,
                |d| bow_scores.get(&d).copied().unwrap_or(0.0),
                |d| bon_scores.get(&d).copied().unwrap_or(0.0),
                beta,
                k,
            )
            .results
        } else {
            // Per-segment blended top-k, then a top-k merge in segment
            // order. Segment ranges ascend and `TopK` favors earlier
            // insertions on ties, so the merged heap reproduces the
            // monolithic ascending-doc-id scan bit for bit: a document
            // beaten inside its own segment's top-k can never reach the
            // global top-k.
            let nsegs = bow_parts.len().max(bon_parts.len());
            let empty = FxHashMap::default();
            let mut merged = TopK::new(k);
            for si in 0..nsegs {
                let bow_scores = bow_parts.get(si).unwrap_or(&empty);
                let bon_scores = bon_parts.get(si).unwrap_or(&empty);
                let mut docs: Vec<DocId> = bow_scores
                    .keys()
                    .chain(bon_scores.keys())
                    .copied()
                    .collect();
                docs.sort_unstable();
                docs.dedup();
                let mut seg_topk = TopK::new(k);
                for doc in docs {
                    let bow = bow_scores.get(&doc).copied().unwrap_or(0.0);
                    let bon = bon_scores.get(&doc).copied().unwrap_or(0.0);
                    let score = (1.0 - beta) * bow + beta * bon;
                    if score > 0.0 {
                        seg_topk.push(score, (doc, bow, bon));
                    }
                }
                for (score, item) in seg_topk.into_sorted() {
                    merged.push(score, item);
                }
            }
            merged
                .into_sorted()
                .into_iter()
                .map(|(score, (doc, bow, bon))| SearchResult {
                    doc,
                    score,
                    bow,
                    bon,
                })
                .collect()
        }
    };
    timer.record("ns", t_ns.elapsed());

    QueryOutcome {
        results,
        embedding,
        timer,
        cache: cache_info,
        timed_out: false,
        prune,
        parallel,
    }
}

/// NLP + NE on the query, reusing the document path. A whole-query memo
/// hit skips both components; zero-duration records keep the
/// per-component work-item counts identical either way. Shared by
/// [`run_query`] and the router's scatter-side
/// [`crate::NewsLink::analyze_query`], so both derive the exact same
/// canonical term sequences.
pub(crate) fn analyze_query_text(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    caches: Option<&EngineCaches>,
    query_text: &str,
    timer: &mut ComponentTimer,
    cache_info: &mut QueryCacheInfo,
) -> (Vec<String>, DocEmbedding) {
    match caches {
        Some(c) => {
            if let Some(art) = c.query.get(query_text) {
                cache_info.query_hit = true;
                timer.record("nlp", Duration::ZERO);
                timer.record("ne", Duration::ZERO);
                (art.terms.clone(), art.embedding.clone())
            } else {
                let artifacts =
                    embed_one_with(graph, label_index, config, Some(&c.embed), query_text);
                timer.record("nlp", Duration::from_nanos(artifacts.nlp_nanos));
                timer.record("ne", Duration::from_nanos(artifacts.ne_nanos));
                let art = Arc::new(QueryArtifacts {
                    terms: artifacts.analysis.terms,
                    embedding: artifacts.embedding,
                });
                c.query.insert(query_text.to_string(), Arc::clone(&art));
                (art.terms.clone(), art.embedding.clone())
            }
        }
        None => {
            let artifacts = embed_one_with(graph, label_index, config, None, query_text);
            timer.record("nlp", Duration::from_nanos(artifacts.nlp_nanos));
            timer.record("ne", Duration::from_nanos(artifacts.ne_nanos));
            (artifacts.analysis.terms, artifacts.embedding)
        }
    }
}

/// Execute many queries in parallel (scoped threads), preserving input
/// order. The index and graph are shared read-only; results are identical
/// to sequential [`search`] calls. `config.threads == 0` sizes the worker
/// pool to the machine.
pub fn search_batch<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    index: &NewsLinkIndex,
    queries: &[S],
    k: usize,
) -> Vec<QueryOutcome> {
    run_batch(graph, label_index, config, index, None, queries, k).0
}

/// [`search_batch`] through the engine caches, additionally aggregating
/// every per-query component timer into one batch timer with a `"batch"`
/// entry for the whole call's wall-clock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    index: &NewsLinkIndex,
    caches: Option<&EngineCaches>,
    queries: &[S],
    k: usize,
) -> (Vec<QueryOutcome>, ComponentTimer) {
    let t0 = Instant::now();
    let threads = config.effective_threads(queries.len());
    let outcomes = parallel_map(queries, threads, |q| {
        run_query(graph, label_index, config, index, caches, q.as_ref(), k, None, None)
    });
    let mut timer = ComponentTimer::new();
    for outcome in &outcomes {
        timer.merge(&outcome.timer);
    }
    timer.record("batch", t0.elapsed());
    (outcomes, timer)
}

/// Apply `f` to every item on `threads` scoped workers (contiguous
/// chunks), preserving input order. `threads <= 1` runs inline.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|scope| {
        let f = &f;
        let mut slots = out.as_mut_slice();
        let mut offset = 0usize;
        while offset < items.len() {
            let take = chunk.min(items.len() - offset);
            let (head, rest) = slots.split_at_mut(take);
            slots = rest;
            let batch = &items[offset..offset + take];
            scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(batch) {
                    *slot = Some(f(item));
                }
            });
            offset += take;
        }
    });
    out.into_iter().map(|o| o.expect("all items mapped")).collect()
}

/// Explain why `doc` matched: relationship paths linking the query's
/// entities to the result's entities through the overlap of their subgraph
/// embeddings (§VII-E).
pub fn explain(
    index: &NewsLinkIndex,
    query_embedding: &DocEmbedding,
    doc: DocId,
    max_len: usize,
    max_paths: usize,
) -> Vec<RelationshipPath> {
    let Some(result_embedding) = index.embedding(doc) else {
        return Vec::new();
    };
    relationship_paths(query_embedding, result_embedding, max_len, max_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::index_corpus;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let lahore = b.add_node("Lahore", EntityType::Gpe);
        let peshawar = b.add_node("Peshawar", EntityType::Gpe);
        b.add_edge(kunar, khyber, "shares border with", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(lahore, pakistan, "located in", 1);
        b.add_edge(peshawar, khyber, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        // 0: the Tq-like doc (conflict around Upper-Dir-ish places)
        "Military conflicts between Pakistan and Taliban intensified near Kunar.",
        // 1: the Tr-like doc: different words, related entities
        "Explosions rocked Lahore and Peshawar. Authorities suspected Taliban operatives.",
        // 2: unrelated sports story
        "The championship match drew huge crowds and ended in a draw.",
    ];

    fn setup() -> (KnowledgeGraph, LabelIndex) {
        world()
    }

    #[test]
    fn blended_search_ranks_related_doc_above_unrelated() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "Pakistan and Taliban clash.", 3);
        assert!(!out.results.is_empty());
        let ranked: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
        assert!(ranked.contains(&0));
        // The sports doc shares no words or entities.
        assert!(!ranked.contains(&2));
    }

    #[test]
    fn beta_one_uses_only_embeddings() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_beta(1.0);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        // Query shares entities (via KG) but few words with doc 1.
        let out = search(&g, &li, &cfg, &idx, "Taliban attack in Khyber.", 3);
        for r in &out.results {
            assert_eq!(r.bow, 0.0, "β=1 must ignore text");
            assert!(r.bon > 0.0);
        }
        let ranked: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
        assert!(ranked.contains(&1), "KG overlap must retrieve doc 1");
    }

    #[test]
    fn beta_zero_reduces_to_lucene() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_beta(0.0);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "championship match crowds", 3);
        assert_eq!(out.results[0].doc, DocId(2));
        for r in &out.results {
            assert_eq!(r.bon, 0.0);
        }
    }

    #[test]
    fn vocabulary_mismatch_bridged_by_embeddings() {
        // Query about Kunar; doc 1 never mentions Kunar, but both embed
        // near Khyber. With β > 0 doc 1 scores; with β = 0 it may not.
        let (g, li) = setup();
        let cfg1 = NewsLinkConfig::default().with_beta(0.8);
        let idx = index_corpus(&g, &li, &cfg1, DOCS);
        let out = search(&g, &li, &cfg1, &idx, "Clashes near Kunar and Peshawar.", 3);
        let with_kg: Vec<u32> = out.results.iter().map(|r| r.doc.0).collect();
        assert!(with_kg.contains(&1));
        assert!(with_kg.contains(&0));
    }

    #[test]
    fn results_sorted_descending() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "Taliban Pakistan Lahore Peshawar", 10);
        assert!(out
            .results
            .windows(2)
            .all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "", 5);
        assert!(out.results.is_empty());
        assert!(out.embedding.is_empty());
    }

    #[test]
    fn timer_records_all_components() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "Taliban in Pakistan", 5);
        for c in ["nlp", "ne", "ns"] {
            assert_eq!(out.timer.count(c), 1, "component {c}");
        }
    }

    #[test]
    fn explain_produces_paths_for_kg_matched_result() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_beta(1.0);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "Taliban strikes in Kunar.", 3);
        let top = out.results.first().expect("has a result");
        let paths = explain(&idx, &out.embedding, top.doc, 4, 10);
        assert!(!paths.is_empty(), "expected relationship-path evidence");
        // All rendered paths mention real labels.
        for p in &paths {
            let s = p.render(&g);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn threshold_algorithm_matches_exhaustive_ranking() {
        let (g, li) = setup();
        let exhaustive_cfg = NewsLinkConfig::default();
        let ta_cfg = NewsLinkConfig::default().with_threshold_algorithm(true);
        let idx = index_corpus(&g, &li, &exhaustive_cfg, DOCS);
        for query in [
            "Taliban in Pakistan",
            "Explosions near Peshawar and Lahore",
            "Kunar conflict",
        ] {
            let a = search(&g, &li, &exhaustive_cfg, &idx, query, 3);
            let b = search(&g, &li, &ta_cfg, &idx, query, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {query}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert!((x.score - y.score).abs() < 1e-12, "query {query}");
                assert_eq!(x.doc, y.doc, "query {query}");
            }
        }
    }

    #[test]
    fn batch_search_matches_sequential() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_threads(3);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let queries = [
            "Taliban in Pakistan",
            "Explosions near Peshawar",
            "championship crowds",
            "",
        ];
        let batch = search_batch(&g, &li, &cfg, &idx, &queries, 3);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(&batch) {
            let want = search(&g, &li, &cfg, &idx, q, 3);
            assert_eq!(got.results.len(), want.results.len(), "query {q}");
            for (x, y) in got.results.iter().zip(&want.results) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_query_path_is_bit_identical_and_observable() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let caches = crate::cache::EngineCaches::from_config(&cfg.cache).unwrap();
        let q = "Taliban in Pakistan near Kunar";

        let plain = search(&g, &li, &cfg, &idx, q, 3);
        assert_eq!(plain.cache, crate::api::QueryCacheInfo::default());

        let cold = run_query(&g, &li, &cfg, &idx, Some(&caches), q, 3, None, None);
        assert!(cold.cache.enabled && !cold.cache.query_hit);
        let warm = run_query(&g, &li, &cfg, &idx, Some(&caches), q, 3, None, None);
        assert!(warm.cache.query_hit);
        // Warm hits skip NLP/NE but keep the work-item counts.
        for c in ["nlp", "ne", "ns"] {
            assert_eq!(warm.timer.count(c), 1, "component {c}");
        }
        for out in [&cold, &warm] {
            assert_eq!(out.results, plain.results);
        }
        assert_eq!(caches.stats().queries.hits, 1);
    }

    #[test]
    fn beta_override_changes_blend_without_touching_config() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let q = "Taliban attack in Khyber.";
        let pure_bon = run_query(&g, &li, &cfg, &idx, None, q, 3, Some(1.0), None);
        for r in &pure_bon.results {
            assert_eq!(r.bow, 0.0);
        }
        let want = search(&g, &li, &NewsLinkConfig::default().with_beta(1.0), &idx, q, 3);
        assert_eq!(pure_bon.results, want.results);
    }

    #[test]
    fn batch_timer_aggregates_components() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_threads(2);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let queries = ["Taliban in Pakistan", "Explosions near Peshawar", "Kunar"];
        let (outcomes, timer) = run_batch(&g, &li, &cfg, &idx, None, &queries, 3);
        assert_eq!(outcomes.len(), 3);
        for c in ["nlp", "ne", "ns"] {
            assert_eq!(timer.count(c), 3, "component {c}");
        }
        assert_eq!(timer.count("batch"), 1);
    }

    #[test]
    fn auto_threads_batch_matches_sequential() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default().with_auto_threads();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let queries = ["Taliban in Pakistan", "championship crowds"];
        let batch = search_batch(&g, &li, &cfg, &idx, &queries, 3);
        for (q, got) in queries.iter().zip(&batch) {
            let want = search(&g, &li, &cfg, &idx, q, 3);
            assert_eq!(got.results, want.results, "query {q}");
        }
    }

    #[test]
    fn expired_deadline_skips_scoring_with_partial_timer() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let q = "Taliban in Pakistan";
        // A deadline in the past: NLP + NE still run (budget is checked
        // *between* stages), scoring never does.
        let expired = Instant::now() - Duration::from_millis(1);
        let out = run_query(&g, &li, &cfg, &idx, None, q, 3, None, Some(expired));
        assert!(out.timed_out);
        assert!(out.results.is_empty());
        assert_eq!(out.timer.count("nlp"), 1, "NLP stage ran before the gate");
        assert_eq!(out.timer.count("ne"), 1, "NE stage ran before the gate");
        assert_eq!(out.timer.count("ns"), 0, "scoring must be skipped");
        assert!(!out.embedding.is_empty(), "embedding survives for the report");

        // A generous deadline changes nothing.
        let far = Instant::now() + Duration::from_secs(3600);
        let ok = run_query(&g, &li, &cfg, &idx, None, q, 3, None, Some(far));
        assert!(!ok.timed_out);
        assert_eq!(ok.results, search(&g, &li, &cfg, &idx, q, 3).results);
    }

    #[test]
    fn segmented_search_is_bit_identical_to_monolithic() {
        let (g, li) = setup();
        for use_ta in [false, true] {
            let cfg = NewsLinkConfig::default().with_threshold_algorithm(use_ta);
            let mono = index_corpus(&g, &li, &cfg, DOCS);
            assert_eq!(mono.segment_count(), 1);
            for segment_docs in [1, 2] {
                let sharded_cfg = cfg.clone().with_segment_docs(segment_docs).with_threads(3);
                let sharded = index_corpus(&g, &li, &sharded_cfg, DOCS);
                for q in [
                    "Taliban in Pakistan",
                    "Explosions near Peshawar and Lahore",
                    "championship crowds",
                ] {
                    let a = search(&g, &li, &cfg, &mono, q, 3);
                    let b = search(&g, &li, &sharded_cfg, &sharded, q, 3);
                    assert_eq!(a.results.len(), b.results.len(), "query {q}");
                    for (x, y) in a.results.iter().zip(&b.results) {
                        assert_eq!(x.doc, y.doc, "query {q}");
                        assert_eq!(
                            x.score.to_bits(),
                            y.score.to_bits(),
                            "query {q} ta={use_ta} segdocs={segment_docs}"
                        );
                        assert_eq!(x.bow.to_bits(), y.bow.to_bits());
                        assert_eq!(x.bon.to_bits(), y.bon.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn explain_out_of_range_doc_is_empty() {
        let (g, li) = setup();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let out = search(&g, &li, &cfg, &idx, "Taliban", 1);
        assert!(explain(&idx, &out.embedding, DocId(99), 4, 10).is_empty());
    }
}
