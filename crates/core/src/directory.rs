//! [`Directory`]: the storage layer's file-system seam.
//!
//! Snapshot I/O goes through a small named-blob abstraction instead of
//! raw paths, so the same persistence code runs against a real directory
//! ([`FsDirectory`] — crash-atomic writes, optional memory-mapped reads)
//! or an in-memory map ([`RamDirectory`] — unit tests and failpoint
//! harnesses that want no disk at all). The two read methods encode the
//! storage-backend choice:
//!
//! - [`Directory::read`] always returns *heap* bytes — the file copied
//!   into one owned buffer.
//! - [`Directory::open_bytes`] returns the cheapest zero-copy view the
//!   directory can offer: a shared memory mapping for [`FsDirectory`],
//!   a shared heap buffer for [`RamDirectory`]. Slices taken from the
//!   returned [`Bytes`] keep the backing alive.
//!
//! Writes are atomic-by-name: [`Directory::atomic_write`] publishes the
//! whole blob or nothing (temp file + fsync + rename on disk, a single
//! map insert in RAM), so a reader never observes a torn file. Because
//! replacement happens by *rename*, an open memory mapping keeps reading
//! the old inode — live [`MmapSegmentReader`](crate::reader) snapshots
//! stay valid across checkpoints.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use newslink_util::{Bytes, Mmap};

use crate::persist::atomic_write_file;

/// A flat namespace of immutable-once-published byte blobs.
///
/// Implementations must make [`atomic_write`](Directory::atomic_write)
/// all-or-nothing with respect to concurrent readers of the same name.
pub trait Directory: Send + Sync + std::fmt::Debug {
    /// Read a whole blob into owned heap bytes.
    fn read(&self, name: &str) -> io::Result<Bytes>;

    /// Open a blob for zero-copy access: memory-mapped when the
    /// directory is file-backed, a shared heap buffer otherwise.
    fn open_bytes(&self, name: &str) -> io::Result<Bytes>;

    /// Publish `bytes` under `name`, atomically replacing any previous
    /// blob of that name.
    fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// True when a blob named `name` exists.
    fn exists(&self, name: &str) -> bool;

    /// Delete the blob named `name` (ok if absent).
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// A [`Directory`] over one real file-system directory.
///
/// `read` copies the file into the heap; `open_bytes` memory-maps it
/// (empty files map to the empty region). `atomic_write` is the
/// temp-file + fsync + rename protocol of
/// [`atomic_write_file`](crate::persist::atomic_write_file).
#[derive(Debug, Clone)]
pub struct FsDirectory {
    root: PathBuf,
}

impl FsDirectory {
    /// Open (creating if needed) a directory rooted at `root`.
    pub fn create(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The directory's root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path of a named blob.
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Directory for FsDirectory {
    fn read(&self, name: &str) -> io::Result<Bytes> {
        std::fs::read(self.path_of(name)).map(Bytes::from_vec)
    }

    fn open_bytes(&self, name: &str) -> io::Result<Bytes> {
        let file = std::fs::File::open(self.path_of(name))?;
        Ok(Bytes::from_mmap(Arc::new(Mmap::map(&file)?)))
    }

    fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        atomic_write_file(&self.path_of(name), bytes)
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path_of(name)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

/// An in-memory [`Directory`] for tests and failpoint harnesses.
///
/// Blobs live in a mutex-guarded map of shared buffers; `read` and
/// `open_bytes` both hand out zero-copy views of the stored
/// `Arc<[u8]>`, and `atomic_write` replaces the entry in one step.
#[derive(Debug, Default)]
pub struct RamDirectory {
    files: Mutex<BTreeMap<String, Arc<[u8]>>>,
}

impl RamDirectory {
    /// An empty in-memory directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names of every stored blob, sorted.
    pub fn names(&self) -> Vec<String> {
        self.files.lock().unwrap().keys().cloned().collect()
    }

    fn get(&self, name: &str) -> io::Result<Arc<[u8]>> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {name:?}")))
    }
}

impl Directory for RamDirectory {
    fn read(&self, name: &str) -> io::Result<Bytes> {
        self.get(name).map(Bytes::from_arc)
    }

    fn open_bytes(&self, name: &str) -> io::Result<Bytes> {
        self.get(name).map(Bytes::from_arc)
    }

    fn atomic_write(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::from(bytes));
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.files.lock().unwrap().contains_key(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files.lock().unwrap().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(dir: &dyn Directory) {
        assert!(!dir.exists("a"));
        assert!(dir.read("a").is_err());
        assert!(dir.open_bytes("a").is_err());
        dir.atomic_write("a", b"hello").unwrap();
        assert!(dir.exists("a"));
        assert_eq!(&*dir.read("a").unwrap(), b"hello");
        assert_eq!(&*dir.open_bytes("a").unwrap(), b"hello");
        // Atomic replace: the new contents fully supersede the old.
        dir.atomic_write("a", b"world!").unwrap();
        assert_eq!(&*dir.read("a").unwrap(), b"world!");
        // Zero-copy views survive replacement (rename keeps the old
        // inode alive; Arc keeps the old buffer alive).
        let old = dir.open_bytes("a").unwrap();
        dir.atomic_write("a", b"next").unwrap();
        assert_eq!(&*old, b"world!");
        assert_eq!(&*dir.open_bytes("a").unwrap(), b"next");
        dir.remove("a").unwrap();
        assert!(!dir.exists("a"));
        dir.remove("a").unwrap(); // idempotent
    }

    #[test]
    fn ram_directory_contract() {
        exercise(&RamDirectory::new());
    }

    #[test]
    fn fs_directory_contract() {
        let root = std::env::temp_dir().join(format!(
            "newslink_dir_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let dir = FsDirectory::create(&root).unwrap();
        exercise(&dir);
        // No temp residue after atomic writes.
        dir.atomic_write("b", b"x").unwrap();
        assert!(!root.join("b.tmp").exists());
        assert_eq!(dir.path_of("b"), root.join("b"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fs_open_bytes_is_mapped() {
        let root = std::env::temp_dir().join(format!(
            "newslink_dir_map_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let dir = FsDirectory::create(&root).unwrap();
        dir.atomic_write("m", b"mapped bytes").unwrap();
        let b = dir.open_bytes("m").unwrap();
        assert!(b.is_mapped());
        assert_eq!(b.heap_bytes(), 0);
        let h = dir.read("m").unwrap();
        assert!(!h.is_mapped());
        assert_eq!(h.heap_bytes(), 12);
        std::fs::remove_dir_all(&root).ok();
    }
}
