//! The durable store: snapshot + write-ahead log under one directory.
//!
//! [`DurableStore`] composes the two crash-safety primitives into the
//! recovery protocol a serving process uses:
//!
//! 1. **Open** — load the latest snapshot in degraded-tolerant mode
//!    (quarantining damaged segments rather than refusing to start),
//!    then replay the WAL over it, truncating any torn final append.
//!    A [`LoadReport`] records exactly what happened.
//! 2. **Serve** — every acknowledged mutation is appended to the WAL
//!    and fsynced *before* the acknowledgement ([`log_insert`] /
//!    [`log_delete`]); the in-memory index is the authority for reads.
//! 3. **Checkpoint** — write a crash-atomic snapshot (temp + fsync +
//!    rename + directory fsync), then reset the WAL. A crash between
//!    the two steps leaves stale-but-idempotent records behind: replay
//!    skips inserts the snapshot already holds and deletes of already
//!    tombstoned docs.
//!
//! The directory layout is two files: `index.nlnk` (snapshot, format
//! v4) and `wal.log`. A leftover `index.nlnk.tmp` from a checkpoint
//! that crashed before its rename is deleted on open — it was never
//! made visible, so it is garbage by construction.
//!
//! Snapshot I/O goes through the [`Directory`]/[`SegmentReader`] seam:
//! [`open_with`](DurableStore::open_with) selects the storage backend
//! ([`StorageBackend::Heap`] copies the snapshot into the process heap;
//! [`StorageBackend::Mmap`] memory-maps it and serves postings and the
//! doc store zero-copy from the mapping). Checkpoints publish by atomic
//! rename, so a live mapping keeps reading the replaced inode. The WAL
//! is always file-backed — durability is its whole point.
//!
//! [`log_insert`]: DurableStore::log_insert
//! [`log_delete`]: DurableStore::log_delete

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use newslink_kg::KnowledgeGraph;
use newslink_text::DocId;

use crate::directory::{Directory, FsDirectory};
use crate::indexer::NewsLinkIndex;
use crate::persist::{write_newslink_index, LoadReport, PersistError};
use crate::pipeline::NewsLink;
use crate::reader::{SegmentReader, StorageBackend, StoreOptions};
use crate::wal::{Wal, WalRecord};

/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "index.nlnk";
/// Write-ahead-log file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";

/// A data directory holding one index: snapshot + WAL. See the module
/// docs for the recovery protocol.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    fs: FsDirectory,
    reader: Box<dyn SegmentReader>,
    wal: Wal,
    report: LoadReport,
}

impl DurableStore {
    /// Open (creating if needed) the data directory `dir`, recover the
    /// index it holds, and return the store ready for logging. When no
    /// snapshot exists yet, `seed` builds the initial index (e.g. from
    /// the corpus file) and it is checkpointed immediately so the next
    /// open skips the build.
    ///
    /// Uses the default [`StoreOptions`] (heap backend); see
    /// [`open_with`](Self::open_with).
    ///
    /// Recovery also checkpoints when the WAL held records and the
    /// snapshot loaded clean, folding them in so the log stays short. A
    /// *degraded* load (quarantined segments) is deliberately never
    /// auto-checkpointed: overwriting the damaged snapshot would destroy
    /// the evidence an operator may want for repair. An explicit
    /// [`checkpoint`](Self::checkpoint) accepts the loss.
    pub fn open(
        engine: &NewsLink<'_>,
        dir: &Path,
        seed: impl FnOnce() -> NewsLinkIndex,
    ) -> Result<(Self, NewsLinkIndex), PersistError> {
        Self::open_with(engine, dir, &StoreOptions::new(), seed)
    }

    /// [`open`](Self::open) with explicit [`StoreOptions`]: the
    /// snapshot loads through the selected storage backend's
    /// [`SegmentReader`] (config overrides are applied earlier, by
    /// [`NewsLink::open_with`](crate::pipeline::NewsLink::open_with)).
    pub fn open_with(
        engine: &NewsLink<'_>,
        dir: &Path,
        options: &StoreOptions,
        seed: impl FnOnce() -> NewsLinkIndex,
    ) -> Result<(Self, NewsLinkIndex), PersistError> {
        let fsdir = FsDirectory::create(dir)?;
        let reader = options.segment_reader();
        fsdir.remove(&format!("{SNAPSHOT_FILE}.tmp"))?;
        let fresh = !fsdir.exists(SNAPSHOT_FILE);
        let (mut index, mut report) = if fresh {
            (seed(), LoadReport::default())
        } else {
            reader.read_snapshot(&fsdir, SNAPSHOT_FILE, engine.graph(), true)?
        };
        let (wal, records, torn) = Wal::open(&dir.join(WAL_FILE))?;
        report.wal_truncated_bytes = torn;
        for record in &records {
            if engine.replay_wal(&mut index, record)? {
                report.wal_records_replayed += 1;
            } else {
                report.wal_records_skipped += 1;
            }
        }
        let mut store = Self {
            dir: dir.to_path_buf(),
            fs: fsdir,
            reader,
            wal,
            report,
        };
        if fresh || (!records.is_empty() && !store.report.degraded()) {
            store.checkpoint(&index, engine.graph())?;
        }
        Ok((store, index))
    }

    /// What recovery salvaged, replayed and dropped.
    pub fn report(&self) -> &LoadReport {
        &self.report
    }

    /// Which storage backend snapshots load through.
    pub fn backend(&self) -> StorageBackend {
        self.reader.backend()
    }

    /// Current WAL length in bytes (its 5-byte header included).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// The snapshot's path (for tooling/tests).
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Size of the current snapshot file in bytes (0 when absent).
    pub fn snapshot_len(&self) -> u64 {
        fs::metadata(self.snapshot_path()).map_or(0, |m| m.len())
    }

    /// Log an insert durably. Returns only after the record is fsynced;
    /// on `Err` the caller must not acknowledge the mutation.
    pub fn log_insert(&mut self, id: DocId, text: &str) -> io::Result<()> {
        self.wal.append(&WalRecord::Insert {
            id: id.0,
            text: text.to_string(),
        })
    }

    /// Log a delete durably (same contract as [`log_insert`](Self::log_insert)).
    pub fn log_delete(&mut self, id: DocId) -> io::Result<()> {
        self.wal.append(&WalRecord::Delete { id: id.0 })
    }

    /// Write a crash-atomic snapshot of `index`, then reset the WAL.
    /// `index` must reflect every record currently in the log (it does,
    /// whenever mutations go through the apply-then-log discipline).
    pub fn checkpoint(
        &mut self,
        index: &NewsLinkIndex,
        graph: &KnowledgeGraph,
    ) -> Result<(), PersistError> {
        let mut bytes = Vec::new();
        write_newslink_index(index, graph, &mut bytes)?;
        self.fs.atomic_write(SNAPSHOT_FILE, &bytes)?;
        self.wal.reset()?;
        // `report` is deliberately left alone: it describes what this
        // open recovered (and what was lost), which stays true and
        // worth surfacing even after the log has been folded in.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "newslink_store_test_{}_{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber.",
    ];

    #[test]
    fn fresh_open_seeds_and_checkpoints() {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("fresh");
        let (store, index) =
            DurableStore::open(&engine, &dir, || engine.index_corpus(DOCS)).unwrap();
        assert_eq!(index.doc_count(), 2);
        assert!(store.snapshot_path().exists(), "seed build is checkpointed");
        assert_eq!(store.wal_len(), crate::wal::WAL_HEADER_LEN);
        assert_eq!(store.report(), &LoadReport::default());
        // Second open loads the snapshot instead of seeding.
        drop(store);
        let (_, reloaded) = DurableStore::open(&engine, &dir, || {
            panic!("snapshot exists; seed must not run")
        })
        .unwrap();
        assert_eq!(reloaded.doc_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logged_mutations_survive_reopen_and_checkpoint_resets() {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("replay");
        {
            let (mut store, mut index) =
                DurableStore::open(&engine, &dir, || engine.index_corpus(DOCS)).unwrap();
            let id = engine.insert_document(&mut index, "Kunar aid convoy arrived.");
            store.log_insert(id, "Kunar aid convoy arrived.").unwrap();
            assert!(engine.delete_document(&mut index, DocId(0)));
            store.log_delete(DocId(0)).unwrap();
            assert!(store.wal_len() > crate::wal::WAL_HEADER_LEN);
            // No checkpoint: the mutations live only in the WAL.
        }
        let (store, index) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
        assert_eq!(index.doc_count(), 2, "insert and delete both replayed");
        assert!(index.locate(DocId(2)).is_some());
        let report = store.report();
        assert_eq!(report.wal_records_replayed, 2);
        assert_eq!(report.wal_records_skipped, 0);
        assert!(!report.degraded());
        // Replay folded into a fresh snapshot, so the WAL is empty and a
        // third open replays nothing.
        assert_eq!(store.wal_len(), crate::wal::WAL_HEADER_LEN);
        drop(store);
        let (store, index) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
        assert_eq!(index.doc_count(), 2);
        assert_eq!(store.report().wal_records_replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_checkpoint_replays_idempotently() {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("idempotent");
        let (mut store, mut index) =
            DurableStore::open(&engine, &dir, || engine.index_corpus(DOCS)).unwrap();
        let id = engine.insert_document(&mut index, "Khyber border reopened.");
        store.log_insert(id, "Khyber border reopened.").unwrap();
        // Simulate a checkpoint that crashed after the snapshot rename
        // but before the WAL reset: snapshot reflects the insert, the
        // log still carries it.
        crate::persist::save_newslink_index(&index, &g, &store.snapshot_path()).unwrap();
        drop(store);
        let (store, reloaded) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
        assert_eq!(reloaded.doc_count(), 3);
        assert_eq!(store.report().wal_records_replayed, 0);
        assert_eq!(store.report().wal_records_skipped, 1, "stale record skipped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_snapshot_is_discarded() {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("tmp");
        let (store, _) = DurableStore::open(&engine, &dir, || engine.index_corpus(DOCS)).unwrap();
        drop(store);
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        std::fs::write(&tmp, b"half a snapshot").unwrap();
        let (_, index) = DurableStore::open(&engine, &dir, || unreachable!()).unwrap();
        assert_eq!(index.doc_count(), 2);
        assert!(!tmp.exists(), "garbage temp file removed on open");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_backend_round_trips_and_survives_checkpoint() {
        let (g, li) = world();
        let engine = NewsLink::new(&g, &li, NewsLinkConfig::default());
        let dir = temp_dir("mmap");
        let opts = StoreOptions::new().backend(StorageBackend::Mmap);
        let (store, index) =
            DurableStore::open_with(&engine, &dir, &opts, || engine.index_corpus(DOCS)).unwrap();
        assert_eq!(store.backend(), StorageBackend::Mmap);
        assert_eq!(index.doc_count(), 2);
        assert!(store.snapshot_len() > 0);
        drop(store);
        // Reopen: the snapshot loads through the mapping and the live
        // index keeps it alive while a checkpoint replaces the file.
        let (mut store, mut index) =
            DurableStore::open_with(&engine, &dir, &opts, || unreachable!()).unwrap();
        assert_eq!(index.doc_count(), 2);
        let id = engine.insert_document(&mut index, "Kunar aid convoy arrived.");
        store.log_insert(id, "Kunar aid convoy arrived.").unwrap();
        store.checkpoint(&index, &g).unwrap();
        // The pre-checkpoint mapping (inside `index`) is still readable.
        assert!(index.locate(DocId(0)).is_some());
        drop(store);
        let (store, reloaded) =
            DurableStore::open_with(&engine, &dir, &opts, || unreachable!()).unwrap();
        assert_eq!(reloaded.doc_count(), 3);
        assert_eq!(store.report().wal_records_replayed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
