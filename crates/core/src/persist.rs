//! Whole-index persistence: save a built [`NewsLinkIndex`] to one file and
//! reload it without re-embedding the corpus.
//!
//! Corpus embedding dominates indexing cost (Figure 7), so a production
//! deployment builds once and serves many sessions. The format is a
//! versioned *manifest* over per-segment snapshots: a header with a graph
//! fingerprint (node and edge counts — embeddings reference node ids, so
//! loading against a different graph build is rejected), the id
//! allocator and tombstone set, then each immutable segment (global ids,
//! BOW index, BON index, doc store) in order. Failures surface as typed
//! [`PersistError`]s — a corrupt or truncated file, a version mismatch
//! and a foreign graph are distinguishable without string matching.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use newslink_embed::codec as embed_codec;
use newslink_kg::KnowledgeGraph;
use newslink_nlp::MatchStats;
use newslink_text::{read_index, write_index};
use newslink_util::{varint, ComponentTimer, FxHashSet};

use crate::indexer::NewsLinkIndex;
use crate::segment::IndexSegment;

const MAGIC: &[u8; 4] = b"NLNK";
/// Version 2 introduced the segmented manifest (v1 stored one monolithic
/// BOW/BON pair and cannot represent tombstones or id gaps).
const VERSION: u8 = 2;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed (includes truncation, which
    /// surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The file does not start with the `NLNK` magic.
    BadMagic,
    /// The file's format version is not the one this build understands.
    UnsupportedVersion(u8),
    /// The snapshot was built against a different graph build.
    GraphMismatch {
        /// Node count recorded in the file.
        file_nodes: usize,
        /// Edge count recorded in the file.
        file_edges: usize,
        /// Node count of the graph given to the loader.
        graph_nodes: usize,
        /// Edge count of the graph given to the loader.
        graph_edges: usize,
    },
    /// The manifest decoded but violates a structural invariant.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "bad magic (not a NewsLink index file)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported index version {v} (this build reads {VERSION})")
            }
            Self::GraphMismatch {
                file_nodes,
                file_edges,
                graph_nodes,
                graph_edges,
            } => write!(
                f,
                "index was built against a different graph \
                 ({file_nodes} nodes / {file_edges} edges vs {graph_nodes} / {graph_edges})"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt index manifest: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serialize a built index (header + per-segment snapshots).
pub fn write_newslink_index<W: Write>(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    out: &mut W,
) -> Result<(), PersistError> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    // Graph fingerprint.
    varint::write_u64(out, graph.node_count() as u64)?;
    varint::write_u64(out, graph.edge_count() as u64)?;
    // Id allocator + lifecycle counters.
    varint::write_u64(out, u64::from(index.next_id))?;
    varint::write_u64(out, index.compactions)?;
    varint::write_u64(out, index.match_stats.identified as u64)?;
    varint::write_u64(out, index.match_stats.matched as u64)?;
    varint::write_u64(out, index.embedded_docs as u64)?;
    // Tombstones, sorted for determinism.
    let mut tombstones: Vec<u32> = index.tombstones.iter().copied().collect();
    tombstones.sort_unstable();
    varint::write_u64(out, tombstones.len() as u64)?;
    for t in tombstones {
        varint::write_u64(out, u64::from(t))?;
    }
    // Segment manifest.
    varint::write_u64(out, index.segments.len() as u64)?;
    for seg in &index.segments {
        varint::write_u64(out, seg.len() as u64)?;
        for &g in seg.globals() {
            varint::write_u64(out, u64::from(g))?;
        }
        write_index(seg.bow(), out)?;
        write_index(seg.bon(), out)?;
        for e in seg.embeddings() {
            embed_codec::write_embedding(e, out)?;
        }
    }
    Ok(())
}

/// Deserialize an index, verifying it was built against `graph` and that
/// the manifest's structural invariants hold.
pub fn read_newslink_index<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> Result<NewsLinkIndex, PersistError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(PersistError::UnsupportedVersion(version[0]));
    }
    let file_nodes = varint::read_u64(input)? as usize;
    let file_edges = varint::read_u64(input)? as usize;
    if file_nodes != graph.node_count() || file_edges != graph.edge_count() {
        return Err(PersistError::GraphMismatch {
            file_nodes,
            file_edges,
            graph_nodes: graph.node_count(),
            graph_edges: graph.edge_count(),
        });
    }
    let next_id = read_u32(input, "next_id")?;
    let compactions = varint::read_u64(input)?;
    let identified = varint::read_u64(input)? as usize;
    let matched = varint::read_u64(input)? as usize;
    let embedded_docs = varint::read_u64(input)? as usize;

    let n_tombstones = varint::read_u64(input)? as usize;
    let mut tombstones = FxHashSet::default();
    for _ in 0..n_tombstones {
        let t = read_u32(input, "tombstone id")?;
        if t >= next_id {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} beyond allocator ({next_id})"
            )));
        }
        tombstones.insert(t);
    }

    let n_segments = varint::read_u64(input)? as usize;
    let mut segments = Vec::with_capacity(n_segments.min(1024));
    let mut prev_global: Option<u32> = None;
    for si in 0..n_segments {
        let len = varint::read_u64(input)? as usize;
        if len == 0 {
            return Err(PersistError::Corrupt(format!("segment {si} is empty")));
        }
        let mut globals = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let g = read_u32(input, "global id")?;
            if prev_global.is_some_and(|p| p >= g) {
                return Err(PersistError::Corrupt(format!(
                    "segment {si}: global ids not strictly ascending at {g}"
                )));
            }
            if g >= next_id {
                return Err(PersistError::Corrupt(format!(
                    "segment {si}: global id {g} beyond allocator ({next_id})"
                )));
            }
            prev_global = Some(g);
            globals.push(g);
        }
        let bow = read_index(input)?;
        let bon = read_index(input)?;
        if bow.doc_count() != len || bon.doc_count() != len {
            return Err(PersistError::Corrupt(format!(
                "segment {si}: doc counts misaligned (globals {len}, BOW {}, BON {})",
                bow.doc_count(),
                bon.doc_count()
            )));
        }
        let mut embeddings = Vec::with_capacity(len);
        for _ in 0..len {
            embeddings.push(embed_codec::read_embedding(input)?);
        }
        segments.push(IndexSegment::from_parts(bow, bon, embeddings, globals));
    }

    let index = NewsLinkIndex {
        segments,
        tombstones,
        next_id,
        compactions,
        match_stats: MatchStats {
            identified,
            matched,
        },
        embedded_docs,
        timer: ComponentTimer::new(),
        cache_stats: Default::default(),
    };
    for &t in &index.tombstones {
        if index.locate(newslink_text::DocId(t)).is_none() {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} not stored in any segment"
            )));
        }
    }
    Ok(index)
}

fn read_u32<R: Read>(input: &mut R, what: &str) -> Result<u32, PersistError> {
    let v = varint::read_u64(input)?;
    u32::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} overflows u32")))
}

/// Save to a file.
pub fn save_newslink_index(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<(), PersistError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_newslink_index(index, graph, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Load from a file.
pub fn load_newslink_index(
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<NewsLinkIndex, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index(graph, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};
    use newslink_text::DocId;

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber.",
        "A story with no entities whatsoever.",
    ];

    #[test]
    fn round_trip_preserves_search_behaviour() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.embedded_docs, idx.embedded_docs);
        assert_eq!(back.match_stats, idx.match_stats);
        for q in ["Taliban near Kunar", "Pakistan talks"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn multi_segment_round_trip_with_tombstones() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        assert_eq!(idx.segment_count(), 3);
        assert_eq!(idx.tombstone_count(), 1);

        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.segment_count(), 3);
        assert_eq!(back.tombstone_count(), 1);
        assert_eq!(back.compactions(), idx.compactions());
        assert_eq!(back.doc_count(), 2);
        for q in ["Taliban near Kunar", "Pakistan talks", "story entities"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {q}");
            }
        }
        // Ids and the allocator survive the round trip: a reloaded index
        // keeps assigning fresh ids.
        let mut back = back;
        assert_eq!(back.reserve_id(), DocId(3));
    }

    #[test]
    fn graph_fingerprint_mismatch_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // A different graph: one extra node.
        let mut b = GraphBuilder::new();
        b.add_node("Lonely", EntityType::Gpe);
        let other = b.freeze();
        let err = read_newslink_index(&other, &mut &buf[..]).unwrap_err();
        assert!(matches!(err, PersistError::GraphMismatch { .. }), "{err}");
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Every truncation point must produce an error, never a panic.
        for cut in [3, 5, 9, buf.len() / 2, buf.len() - 3] {
            let err = read_newslink_index(&g, &mut &buf[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        buf[4] = 1; // the pre-segmentation format version
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::UnsupportedVersion(1)) => {}
            other => panic!("expected UnsupportedVersion(1), got {other:?}"),
        }
        buf[0] = b'X';
        assert!(matches!(
            read_newslink_index(&g, &mut &buf[..]),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn corrupt_manifest_is_typed_not_a_panic() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Header layout: magic(4) version(1) nodes(1) edges(1) next_id(1)
        // compactions(1) identified(1) matched(1) embedded(1) — all small
        // varints in this fixture. Zeroing next_id makes every stored
        // global id fall beyond the allocator.
        let next_id_at = 7;
        assert_eq!(buf[next_id_at], 3, "fixture layout changed");
        buf[next_id_at] = 0;
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("beyond allocator"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let dir = std::env::temp_dir().join("newslink_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlnk");
        save_newslink_index(&idx, &g, &path).unwrap();
        let back = load_newslink_index(&g, &path).unwrap();
        assert_eq!(back.doc_count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
