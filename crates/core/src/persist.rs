//! Whole-index persistence: save a built [`NewsLinkIndex`] to one file and
//! reload it without re-embedding the corpus.
//!
//! Corpus embedding dominates indexing cost (Figure 7), so a production
//! deployment builds once and serves many sessions. The format is a
//! versioned manifest of *checksummed frames*: after the magic and
//! version bytes, every structural unit — one header, then one frame per
//! immutable segment — is written as `[length varint][body][CRC-32]`.
//! The header carries a graph fingerprint (node and edge counts —
//! embeddings reference node ids, so loading against a different graph
//! build is rejected), the id allocator, lifecycle counters and the
//! tombstone set; each segment frame holds the segment's global ids, BOW
//! index, BON index and embedded doc store.
//!
//! Framing buys two properties v2 lacked:
//!
//! - **Detection**: a bit flip anywhere in a frame fails its CRC instead
//!   of deserializing into silently wrong postings.
//! - **Isolation**: a corrupt segment frame can be *skipped* — its length
//!   prefix says where the next frame starts — so
//!   [`read_newslink_index_tolerant`] quarantines damaged segments and
//!   loads the rest, reporting what was lost in a [`LoadReport`].
//!
//! [`save_newslink_index`] is crash-atomic: it writes `<path>.tmp`,
//! fsyncs the file, renames it over `path` and fsyncs the parent
//! directory, so a crash mid-save leaves the previous snapshot intact.
//! Failures surface as typed [`PersistError`]s — a corrupt or truncated
//! file, a checksum mismatch, a version mismatch and a foreign graph are
//! distinguishable without string matching.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use newslink_embed::codec as embed_codec;
use newslink_kg::KnowledgeGraph;
use newslink_nlp::MatchStats;
use newslink_text::{read_index, write_index};
use newslink_util::{crc32, varint, ComponentTimer, FxHashSet};

use crate::indexer::NewsLinkIndex;
use crate::segment::IndexSegment;

const MAGIC: &[u8; 4] = b"NLNK";
/// Version 2 introduced the segmented manifest; version 3 wraps the
/// header and every segment in length-prefixed CRC-32 frames so
/// corruption is detected and containable.
const VERSION: u8 = 3;

/// No frame in a real index approaches this; a longer length prefix
/// means the prefix itself is corrupt.
const MAX_FRAME_BYTES: u64 = 1 << 32;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed (includes truncation, which
    /// surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The file does not start with the `NLNK` magic.
    BadMagic,
    /// The file's format version is not the one this build understands.
    UnsupportedVersion(u8),
    /// The snapshot was built against a different graph build.
    GraphMismatch {
        /// Node count recorded in the file.
        file_nodes: usize,
        /// Edge count recorded in the file.
        file_edges: usize,
        /// Node count of the graph given to the loader.
        graph_nodes: usize,
        /// Edge count of the graph given to the loader.
        graph_edges: usize,
    },
    /// A frame's stored CRC-32 does not match its bytes: the file was
    /// corrupted at rest or in transit.
    ChecksumMismatch {
        /// Which frame failed ("header" or "segment N").
        what: String,
        /// The checksum recorded in the file.
        stored: u32,
        /// The checksum of the bytes actually read.
        computed: u32,
    },
    /// The manifest decoded but violates a structural invariant.
    Corrupt(String),
    /// Replaying a WAL insert did not land on the id the log recorded:
    /// the engine allocating ids during recovery disagrees with the one
    /// that wrote the log (e.g. a config change between runs). Serving
    /// the result would corrupt every later delete replay, so recovery
    /// fails instead.
    ReplayDiverged {
        /// The id the WAL recorded for the insert.
        logged: u32,
        /// The id the replayed insert actually received.
        got: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "bad magic (not a NewsLink index file)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported index version {v} (this build reads {VERSION})")
            }
            Self::GraphMismatch {
                file_nodes,
                file_edges,
                graph_nodes,
                graph_edges,
            } => write!(
                f,
                "index was built against a different graph \
                 ({file_nodes} nodes / {file_edges} edges vs {graph_nodes} / {graph_edges})"
            ),
            Self::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {what}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt index manifest: {msg}"),
            Self::ReplayDiverged { logged, got } => write!(
                f,
                "wal replay diverged: logged insert id {logged} landed on {got} \
                 (was the engine config changed since the log was written?)"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What a tolerant load salvaged and what it had to give up, plus the
/// write-ahead-log replay counters filled in by
/// [`DurableStore::open`](crate::store::DurableStore::open).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Segments that decoded and validated.
    pub segments_loaded: usize,
    /// Segments dropped because their frame failed its checksum, was
    /// truncated, or violated a structural invariant. Their documents
    /// are gone until the corpus is re-indexed; the id allocator still
    /// accounts for them, so fresh inserts never reuse their ids.
    pub quarantined_segments: usize,
    /// Tombstones referencing documents that no longer resolve (their
    /// segment was quarantined).
    pub dropped_tombstones: usize,
    /// WAL records re-applied over the snapshot on open.
    pub wal_records_replayed: usize,
    /// WAL records skipped during replay because the snapshot already
    /// reflected them (replay is idempotent).
    pub wal_records_skipped: usize,
    /// Bytes discarded from the WAL tail: a torn final append.
    pub wal_truncated_bytes: u64,
}

impl LoadReport {
    /// True when data was lost: the store is serving a subset of the
    /// corpus and operators should re-index.
    pub fn degraded(&self) -> bool {
        self.quarantined_segments > 0
    }
}

/// Serialize a built index (header frame + one frame per segment).
pub fn write_newslink_index<W: Write>(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    out: &mut W,
) -> Result<(), PersistError> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;

    let mut body = Vec::new();
    // Graph fingerprint.
    varint::write_u64(&mut body, graph.node_count() as u64)?;
    varint::write_u64(&mut body, graph.edge_count() as u64)?;
    // Id allocator + lifecycle counters.
    varint::write_u64(&mut body, u64::from(index.next_id))?;
    varint::write_u64(&mut body, index.compactions)?;
    varint::write_u64(&mut body, index.match_stats.identified as u64)?;
    varint::write_u64(&mut body, index.match_stats.matched as u64)?;
    varint::write_u64(&mut body, index.embedded_docs as u64)?;
    // Tombstones, sorted for determinism.
    let mut tombstones: Vec<u32> = index.tombstones.iter().copied().collect();
    tombstones.sort_unstable();
    varint::write_u64(&mut body, tombstones.len() as u64)?;
    for t in tombstones {
        varint::write_u64(&mut body, u64::from(t))?;
    }
    varint::write_u64(&mut body, index.segments.len() as u64)?;
    write_frame(out, &body)?;

    for seg in &index.segments {
        body.clear();
        varint::write_u64(&mut body, seg.len() as u64)?;
        for &g in seg.globals() {
            varint::write_u64(&mut body, u64::from(g))?;
        }
        write_index(seg.bow(), &mut body)?;
        write_index(seg.bon(), &mut body)?;
        for e in seg.embeddings() {
            embed_codec::write_embedding(e, &mut body)?;
        }
        write_frame(out, &body)?;
    }
    Ok(())
}

fn write_frame<W: Write>(out: &mut W, body: &[u8]) -> io::Result<()> {
    varint::write_u64(out, body.len() as u64)?;
    out.write_all(body)?;
    out.write_all(&crc32(body).to_le_bytes())
}

/// Read one `[len][body][crc]` frame, verifying the checksum.
fn read_frame<R: Read>(input: &mut R, what: &str) -> Result<Vec<u8>, PersistError> {
    let len = varint::read_u64(input)?;
    if len > MAX_FRAME_BYTES {
        return Err(PersistError::Corrupt(format!(
            "{what} frame length {len} is implausible"
        )));
    }
    let mut body = vec![0u8; len as usize];
    input.read_exact(&mut body)?;
    let mut stored = [0u8; 4];
    input.read_exact(&mut stored)?;
    let stored = u32::from_le_bytes(stored);
    let computed = crc32(&body);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            what: what.to_string(),
            stored,
            computed,
        });
    }
    Ok(body)
}

struct Header {
    file_nodes: usize,
    file_edges: usize,
    next_id: u32,
    compactions: u64,
    identified: usize,
    matched: usize,
    embedded_docs: usize,
    tombstones: Vec<u32>,
    n_segments: usize,
}

/// Parse the header frame body. The frame's CRC already passed, so any
/// failure here means the writer produced an invalid manifest: always
/// [`PersistError::Corrupt`].
fn parse_header(mut body: &[u8]) -> Result<Header, PersistError> {
    let input = &mut body;
    let oops = |e: io::Error| PersistError::Corrupt(format!("header frame underruns: {e}"));
    let file_nodes = varint::read_u64(input).map_err(oops)? as usize;
    let file_edges = varint::read_u64(input).map_err(oops)? as usize;
    let next_id = read_u32(input, "next_id")?;
    let compactions = varint::read_u64(input).map_err(oops)?;
    let identified = varint::read_u64(input).map_err(oops)? as usize;
    let matched = varint::read_u64(input).map_err(oops)? as usize;
    let embedded_docs = varint::read_u64(input).map_err(oops)? as usize;
    let n_tombstones = varint::read_u64(input).map_err(oops)? as usize;
    let mut tombstones = Vec::with_capacity(n_tombstones.min(1 << 20));
    for _ in 0..n_tombstones {
        let t = read_u32(input, "tombstone id")?;
        if t >= next_id {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} beyond allocator ({next_id})"
            )));
        }
        tombstones.push(t);
    }
    let n_segments = varint::read_u64(input).map_err(oops)? as usize;
    if !input.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "header frame has {} trailing bytes",
            input.len()
        )));
    }
    Ok(Header {
        file_nodes,
        file_edges,
        next_id,
        compactions,
        identified,
        matched,
        embedded_docs,
        tombstones,
        n_segments,
    })
}

/// Parse one segment frame body and validate its invariants against the
/// allocator and the last global id of the previous kept segment.
fn parse_segment(
    mut body: &[u8],
    si: usize,
    next_id: u32,
    prev_global: Option<u32>,
) -> Result<(IndexSegment, u32), PersistError> {
    let input = &mut body;
    let oops = |e: io::Error| PersistError::Corrupt(format!("segment {si} frame underruns: {e}"));
    let len = varint::read_u64(input).map_err(oops)? as usize;
    if len == 0 {
        return Err(PersistError::Corrupt(format!("segment {si} is empty")));
    }
    let mut globals = Vec::with_capacity(len.min(1 << 20));
    let mut prev = prev_global;
    for _ in 0..len {
        let g = read_u32(input, "global id")?;
        if prev.is_some_and(|p| p >= g) {
            return Err(PersistError::Corrupt(format!(
                "segment {si}: global ids not strictly ascending at {g}"
            )));
        }
        if g >= next_id {
            return Err(PersistError::Corrupt(format!(
                "segment {si}: global id {g} beyond allocator ({next_id})"
            )));
        }
        prev = Some(g);
        globals.push(g);
    }
    let bow = read_index(input).map_err(oops)?;
    let bon = read_index(input).map_err(oops)?;
    if bow.doc_count() != len || bon.doc_count() != len {
        return Err(PersistError::Corrupt(format!(
            "segment {si}: doc counts misaligned (globals {len}, BOW {}, BON {})",
            bow.doc_count(),
            bon.doc_count()
        )));
    }
    let mut embeddings = Vec::with_capacity(len);
    for _ in 0..len {
        embeddings.push(embed_codec::read_embedding(input).map_err(oops)?);
    }
    if !input.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "segment {si} frame has {} trailing bytes",
            input.len()
        )));
    }
    let last = globals[globals.len() - 1];
    Ok((IndexSegment::from_parts(bow, bon, embeddings, globals), last))
}

/// Deserialize an index, verifying it was built against `graph` and that
/// every frame checksum and structural invariant holds. Any damage —
/// one flipped bit anywhere — fails the whole load; use
/// [`read_newslink_index_tolerant`] to salvage what survives.
pub fn read_newslink_index<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> Result<NewsLinkIndex, PersistError> {
    read_with(graph, input, false).map(|(index, _)| index)
}

/// Deserialize an index in degraded mode: segment frames that fail their
/// checksum or validation are *quarantined* (skipped) rather than fatal,
/// and tombstones pointing into quarantined segments are dropped. The
/// envelope — magic, version, graph fingerprint and the header frame —
/// must still be intact; without the allocator and manifest there is
/// nothing safe to serve.
///
/// The returned [`LoadReport`] says exactly what was lost;
/// [`LoadReport::degraded`] is the "page the operator" bit.
pub fn read_newslink_index_tolerant<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    read_with(graph, input, true)
}

fn read_with<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
    tolerant: bool,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(PersistError::UnsupportedVersion(version[0]));
    }
    let header = parse_header(&read_frame(input, "header")?)?;
    if header.file_nodes != graph.node_count() || header.file_edges != graph.edge_count() {
        return Err(PersistError::GraphMismatch {
            file_nodes: header.file_nodes,
            file_edges: header.file_edges,
            graph_nodes: graph.node_count(),
            graph_edges: graph.edge_count(),
        });
    }

    let mut report = LoadReport::default();
    let mut segments = Vec::with_capacity(header.n_segments.min(1024));
    let mut prev_global: Option<u32> = None;
    for si in 0..header.n_segments {
        let what = format!("segment {si}");
        let body = match read_frame(input, &what) {
            Ok(body) => body,
            Err(PersistError::ChecksumMismatch { .. }) if tolerant => {
                // The frame's extent was intact (length prefix consumed,
                // body + CRC read) — quarantine it and keep scanning.
                report.quarantined_segments += 1;
                continue;
            }
            Err(_) if tolerant => {
                // Truncation or a corrupt length prefix: the rest of the
                // file cannot be located. Everything from here on is lost.
                report.quarantined_segments += header.n_segments - si;
                break;
            }
            Err(e) => return Err(e),
        };
        match parse_segment(&body, si, header.next_id, prev_global) {
            Ok((seg, last)) => {
                prev_global = Some(last);
                segments.push(seg);
            }
            Err(_) if tolerant => {
                report.quarantined_segments += 1;
            }
            Err(e) => return Err(e),
        }
    }
    report.segments_loaded = segments.len();

    let mut index = NewsLinkIndex {
        segments,
        tombstones: FxHashSet::default(),
        next_id: header.next_id,
        compactions: header.compactions,
        match_stats: MatchStats {
            identified: header.identified,
            matched: header.matched,
        },
        embedded_docs: header.embedded_docs,
        timer: ComponentTimer::new(),
        cache_stats: Default::default(),
    };
    for t in header.tombstones {
        if index.locate(newslink_text::DocId(t)).is_some() {
            index.tombstones.insert(t);
        } else if tolerant {
            report.dropped_tombstones += 1;
        } else {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} not stored in any segment"
            )));
        }
    }
    Ok((index, report))
}

fn read_u32<R: Read>(input: &mut R, what: &str) -> Result<u32, PersistError> {
    let v = varint::read_u64(input)
        .map_err(|e| PersistError::Corrupt(format!("{what} underruns: {e}")))?;
    u32::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} overflows u32")))
}

/// Write `bytes` to `path` crash-atomically: write `<path>.tmp`, fsync
/// it, rename over `path`, fsync the parent directory. A crash at any
/// point leaves either the old file or the new one, never a torn mix.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // The rename is only durable once the directory entry is on
            // disk. Best-effort: some filesystems refuse dir fsync.
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Save to a file, crash-atomically (see [`atomic_write_file`]).
pub fn save_newslink_index(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    write_newslink_index(index, graph, &mut bytes)?;
    atomic_write_file(path, &bytes)?;
    Ok(())
}

/// Load from a file, strictly (any damage is fatal).
pub fn load_newslink_index(
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<NewsLinkIndex, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index(graph, &mut f)
}

/// Load from a file in degraded mode (see
/// [`read_newslink_index_tolerant`]).
pub fn load_newslink_index_tolerant(
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index_tolerant(graph, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};
    use newslink_text::DocId;

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber.",
        "A story with no entities whatsoever.",
    ];

    /// `(frame_start, body_start, body_end)` for every frame in `buf`
    /// (frame 0 is the header). `body_end` is also where the CRC starts.
    fn frame_spans(buf: &[u8]) -> Vec<(usize, usize, usize)> {
        let mut spans = Vec::new();
        let mut at = 5; // magic + version
        while at < buf.len() {
            let mut cursor = &buf[at..];
            let len = varint::read_u64(&mut cursor).unwrap() as usize;
            let body_start = buf.len() - cursor.len();
            spans.push((at, body_start, body_start + len));
            at = body_start + len + 4;
        }
        assert_eq!(at, buf.len(), "frames must tile the file exactly");
        spans
    }

    /// Re-stamp the CRC of the frame whose body spans `[start, end)`
    /// after a deliberate body edit (so the edit reaches the structural
    /// validators instead of tripping the checksum).
    fn restamp_crc(buf: &mut [u8], body_start: usize, body_end: usize) {
        let crc = crc32(&buf[body_start..body_end]);
        buf[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn round_trip_preserves_search_behaviour() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.embedded_docs, idx.embedded_docs);
        assert_eq!(back.match_stats, idx.match_stats);
        for q in ["Taliban near Kunar", "Pakistan talks"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn multi_segment_round_trip_with_tombstones() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        assert_eq!(idx.segment_count(), 3);
        assert_eq!(idx.tombstone_count(), 1);

        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.segment_count(), 3);
        assert_eq!(back.tombstone_count(), 1);
        assert_eq!(back.compactions(), idx.compactions());
        assert_eq!(back.doc_count(), 2);
        for q in ["Taliban near Kunar", "Pakistan talks", "story entities"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {q}");
            }
        }
        // Ids and the allocator survive the round trip: a reloaded index
        // keeps assigning fresh ids.
        let mut back = back;
        assert_eq!(back.reserve_id(), DocId(3));
    }

    #[test]
    fn graph_fingerprint_mismatch_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // A different graph: one extra node.
        let mut b = GraphBuilder::new();
        b.add_node("Lonely", EntityType::Gpe);
        let other = b.freeze();
        let err = read_newslink_index(&other, &mut &buf[..]).unwrap_err();
        assert!(matches!(err, PersistError::GraphMismatch { .. }), "{err}");
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Every truncation point must produce an error, never a panic.
        for cut in [3, 5, 9, buf.len() / 2, buf.len() - 3] {
            let err = read_newslink_index(&g, &mut &buf[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn truncation_mid_varint_and_mid_segment_is_io() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        let (seg_frame_start, seg_body_start, seg_body_end) = spans[1];
        // The segment frame's length prefix is a multi-byte varint in
        // this fixture; cutting one byte into it is a mid-varint tear.
        assert!(
            seg_body_start - seg_frame_start > 1,
            "fixture's segment frame length must be a multi-byte varint"
        );
        for cut in [seg_frame_start + 1, (seg_body_start + seg_body_end) / 2] {
            match read_newslink_index(&g, &mut &buf[..cut]) {
                Err(PersistError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected Io(UnexpectedEof), got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_flip_is_typed_and_names_the_frame() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        assert_eq!(spans.len(), 4, "header + three single-doc segments");
        // Flip one bit in the middle of segment 1's body.
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x40;
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::ChecksumMismatch { what, stored, computed }) => {
                assert_eq!(what, "segment 1");
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        buf[4] = 2; // the pre-checksum format version
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
        buf[0] = b'X';
        assert!(matches!(
            read_newslink_index(&g, &mut &buf[..]),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn corrupt_manifest_is_typed_not_a_panic() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Header body layout: nodes(1) edges(1) next_id(1) … — all small
        // varints in this fixture. Zeroing next_id makes every stored
        // global id fall beyond the allocator; the CRC is re-stamped so
        // the edit reaches the structural validator, not the checksum.
        let (_, body_start, body_end) = frame_spans(&buf)[0];
        assert_eq!(buf[body_start + 2], 3, "fixture layout changed");
        buf[body_start + 2] = 0;
        restamp_crc(&mut buf, body_start, body_end);
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("beyond allocator"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn tolerant_load_quarantines_checksum_failing_segment() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Corrupt segment 1 (holding doc 1).
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x01;

        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert!(report.degraded());
        assert_eq!(report.quarantined_segments, 1);
        assert_eq!(report.segments_loaded, 2);
        assert_eq!(report.dropped_tombstones, 0);
        assert_eq!(back.doc_count(), 2);
        assert!(back.locate(DocId(0)).is_some());
        assert!(back.locate(DocId(1)).is_none(), "doc 1 was quarantined");
        assert!(back.locate(DocId(2)).is_some());
        // The surviving docs still serve queries.
        let out = search(&g, &li, &cfg, &back, "Taliban near Kunar", 3);
        assert!(out.results.iter().any(|r| r.doc == DocId(0)));
        // The allocator still accounts for the lost doc: fresh ids are new.
        let mut back = back;
        assert_eq!(back.reserve_id(), DocId(3));
    }

    #[test]
    fn tolerant_load_quarantines_truncated_tail() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Cut mid-way through segment 1: segments 1 and 2 are both lost.
        let cut = (spans[2].1 + spans[2].2) / 2;
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..cut]).unwrap();
        assert_eq!(report.quarantined_segments, 2);
        assert_eq!(report.segments_loaded, 1);
        assert_eq!(back.doc_count(), 1);
        assert!(back.locate(DocId(0)).is_some());
    }

    #[test]
    fn tolerant_load_drops_tombstones_into_quarantined_segments() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Quarantine segment 1, which holds the tombstoned doc 1.
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x08;
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert_eq!(report.quarantined_segments, 1);
        assert_eq!(report.dropped_tombstones, 1);
        assert_eq!(back.tombstone_count(), 0);
        assert_eq!(back.doc_count(), 2);
        // Strict mode refuses the same bytes outright.
        assert!(matches!(
            read_newslink_index(&g, &mut &buf[..]),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn tolerant_load_on_clean_bytes_reports_nothing_lost() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert!(!report.degraded());
        assert_eq!(report, LoadReport {
            segments_loaded: 3,
            ..LoadReport::default()
        });
        assert_eq!(back.doc_count(), 3);
    }

    #[test]
    fn display_formats_every_variant() {
        let cases: Vec<(PersistError, &str)> = vec![
            (
                PersistError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "early eof")),
                "i/o error: early eof",
            ),
            (PersistError::BadMagic, "bad magic"),
            (
                PersistError::UnsupportedVersion(9),
                "unsupported index version 9",
            ),
            (
                PersistError::GraphMismatch {
                    file_nodes: 1,
                    file_edges: 2,
                    graph_nodes: 3,
                    graph_edges: 4,
                },
                "different graph (1 nodes / 2 edges vs 3 / 4)",
            ),
            (
                PersistError::ChecksumMismatch {
                    what: "segment 7".into(),
                    stored: 0xDEAD_BEEF,
                    computed: 0x0BAD_F00D,
                },
                "checksum mismatch in segment 7: stored 0xdeadbeef, computed 0x0badf00d",
            ),
            (
                PersistError::Corrupt("segment 0 is empty".into()),
                "corrupt index manifest: segment 0 is empty",
            ),
            (
                PersistError::ReplayDiverged { logged: 5, got: 7 },
                "wal replay diverged: logged insert id 5 landed on 7",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
        // The source chain exposes the io error and nothing else.
        use std::error::Error;
        assert!(PersistError::Io(io::Error::other("x")).source().is_some());
        assert!(PersistError::BadMagic.source().is_none());
    }

    #[test]
    fn file_round_trip_is_atomic_and_overwrites() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let dir = std::env::temp_dir().join(format!(
            "newslink_persist_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlnk");
        save_newslink_index(&idx, &g, &path).unwrap();
        let back = load_newslink_index(&g, &path).unwrap();
        assert_eq!(back.doc_count(), 3);
        // No temp residue, and saving over an existing file works.
        assert!(!dir.join("index.nlnk.tmp").exists());
        save_newslink_index(&back, &g, &path).unwrap();
        let (again, report) = load_newslink_index_tolerant(&g, &path).unwrap();
        assert_eq!(again.doc_count(), 3);
        assert!(!report.degraded());
        std::fs::remove_dir_all(&dir).ok();
    }
}
