//! Whole-index persistence: save a built [`NewsLinkIndex`] to one file and
//! reload it without re-embedding the corpus.
//!
//! Corpus embedding dominates indexing cost (Figure 7), so a production
//! deployment builds once and serves many sessions. The file embeds a
//! *graph fingerprint* (node and edge counts); loading against a different
//! graph build is rejected, since embeddings reference node ids.

use std::io::{self, Read, Write};
use std::path::Path;

use newslink_embed::codec as embed_codec;
use newslink_kg::KnowledgeGraph;
use newslink_nlp::MatchStats;
use newslink_text::{read_index, write_index};
use newslink_util::{varint, ComponentTimer};

use crate::indexer::NewsLinkIndex;

const MAGIC: &[u8; 4] = b"NLNK";
const VERSION: u8 = 1;

/// Serialize a built index.
pub fn write_newslink_index<W: Write>(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    out: &mut W,
) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    // Graph fingerprint.
    varint::write_u64(out, graph.node_count() as u64)?;
    varint::write_u64(out, graph.edge_count() as u64)?;
    write_index(&index.bow, out)?;
    write_index(&index.bon, out)?;
    varint::write_u64(out, index.embeddings.len() as u64)?;
    for e in &index.embeddings {
        embed_codec::write_embedding(e, out)?;
    }
    varint::write_u64(out, index.match_stats.identified as u64)?;
    varint::write_u64(out, index.match_stats.matched as u64)?;
    varint::write_u64(out, index.embedded_docs as u64)?;
    Ok(())
}

/// Deserialize an index, verifying it was built against `graph`.
pub fn read_newslink_index<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> io::Result<NewsLinkIndex> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {}", version[0]),
        ));
    }
    let nodes = varint::read_u64(input)? as usize;
    let edges = varint::read_u64(input)? as usize;
    if nodes != graph.node_count() || edges != graph.edge_count() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "index was built against a different graph \
                 ({nodes} nodes / {edges} edges vs {} / {})",
                graph.node_count(),
                graph.edge_count()
            ),
        ));
    }
    let bow = read_index(input)?;
    let bon = read_index(input)?;
    let n = varint::read_u64(input)? as usize;
    if n != bow.doc_count() || n != bon.doc_count() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "embedding count does not match index doc count",
        ));
    }
    let mut embeddings = Vec::with_capacity(n);
    for _ in 0..n {
        embeddings.push(embed_codec::read_embedding(input)?);
    }
    let identified = varint::read_u64(input)? as usize;
    let matched = varint::read_u64(input)? as usize;
    let embedded_docs = varint::read_u64(input)? as usize;
    Ok(NewsLinkIndex {
        bow,
        bon,
        embeddings,
        match_stats: MatchStats {
            identified,
            matched,
        },
        embedded_docs,
        timer: ComponentTimer::new(),
        cache_stats: Default::default(),
    })
}

/// Save to a file.
pub fn save_newslink_index(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    path: &Path,
) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_newslink_index(index, graph, &mut f)?;
    f.flush()
}

/// Load from a file.
pub fn load_newslink_index(graph: &KnowledgeGraph, path: &Path) -> io::Result<NewsLinkIndex> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index(graph, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber.",
        "A story with no entities whatsoever.",
    ];

    #[test]
    fn round_trip_preserves_search_behaviour() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.embedded_docs, idx.embedded_docs);
        assert_eq!(back.match_stats, idx.match_stats);
        for q in ["Taliban near Kunar", "Pakistan talks"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn graph_fingerprint_mismatch_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // A different graph: one extra node.
        let mut b = GraphBuilder::new();
        b.add_node("Lonely", EntityType::Gpe);
        let other = b.freeze();
        let err = read_newslink_index(&other, &mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        assert!(read_newslink_index(&g, &mut &buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let dir = std::env::temp_dir().join("newslink_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlnk");
        save_newslink_index(&idx, &g, &path).unwrap();
        let back = load_newslink_index(&g, &path).unwrap();
        assert_eq!(back.doc_count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
