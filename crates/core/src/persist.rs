//! Whole-index persistence: save a built [`NewsLinkIndex`] to one file and
//! reload it without re-embedding the corpus.
//!
//! Corpus embedding dominates indexing cost (Figure 7), so a production
//! deployment builds once and serves many sessions. Two on-disk formats
//! are understood:
//!
//! ## Version 4 (written by this build) — mmap-friendly sections
//!
//! ```text
//! [NLNK][4][header frame]  …pad…  [section 0] …pad… [section N-1]
//! [directory: N × {offset u64, len u64, crc u32}][dir CRC u32][NL4F]
//! ```
//!
//! The header frame keeps the v3 shape (`[len varint][body][CRC-32]`,
//! carrying the graph fingerprint, id allocator, lifecycle counters,
//! tombstones and segment count). Every segment then lives in its own
//! **64-byte-aligned, CRC-framed section** addressed by the offset
//! directory at the tail — no pointer chasing, no length-prefixed
//! deserialization walk. Inside a section every table is fixed-width
//! little-endian (globals, embedding record ends, the columnar
//! BOW/BON indexes of [`newslink_text::read_index_columnar`]), so a
//! reader hands out `&[u8]` slices of the file instead of decoding:
//! opening a snapshot from a memory mapping is "map, validate footers,
//! go", and posting data plus the encoded doc store stay in the OS page
//! cache rather than the process heap. Because each section is located
//! by the directory — not by walking its predecessors — a corrupt
//! section quarantines *alone*; later segments still load (v3 loses
//! everything after a torn length prefix).
//!
//! ## Version 3 (read for compatibility) — sequential CRC frames
//!
//! A stream of `[length varint][body][CRC-32]` frames (header, then one
//! per segment); segment bodies use the v2 varint index sections.
//! [`write_newslink_index_v3`] keeps the writer available so migration
//! can be tested; [`read_newslink_index_bytes`] dispatches on the
//! version byte, so v3 snapshots load transparently and the next
//! checkpoint rewrites them as v4.
//!
//! Both formats share the same guarantees:
//!
//! - **Detection**: a bit flip anywhere fails a CRC instead of
//!   deserializing into silently wrong postings.
//! - **Isolation**: [`read_newslink_index_tolerant`] quarantines damaged
//!   segments and loads the rest, reporting what was lost in a
//!   [`LoadReport`].
//!
//! [`save_newslink_index`] is crash-atomic: it writes `<path>.tmp`,
//! fsyncs the file, renames it over `path` and fsyncs the parent
//! directory, so a crash mid-save leaves the previous snapshot intact —
//! and live memory mappings keep reading the replaced inode. Failures
//! surface as typed [`PersistError`]s — a corrupt or truncated file, a
//! checksum mismatch, a version mismatch and a foreign graph are
//! distinguishable without string matching.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use newslink_embed::codec as embed_codec;
use newslink_kg::KnowledgeGraph;
use newslink_nlp::MatchStats;
use newslink_text::{
    read_index, read_index_columnar, read_index_columnar_lazy, write_index, write_index_columnar,
};
use newslink_util::{crc32, varint, xxh64, Bytes, ComponentTimer, FxHashSet};

use crate::indexer::NewsLinkIndex;
use crate::segment::{DocStore, IndexSegment};

const MAGIC: &[u8; 4] = b"NLNK";
/// Version 2 introduced the segmented manifest; version 3 wrapped the
/// header and every segment in length-prefixed CRC-32 frames; version 4
/// moves segments into aligned, directory-addressed sections with
/// fixed-width tables so a memory-mapped reader never deserializes.
const VERSION: u8 = 4;
/// The previous sequential-frame format, still readable (and writable,
/// for migration tests) by this build.
const VERSION_V3: u8 = 3;

/// No frame in a real index approaches this; a longer length prefix
/// means the prefix itself is corrupt.
const MAX_FRAME_BYTES: u64 = 1 << 32;

/// Segment sections start on this alignment (cache-line sized; also
/// keeps the fixed-width u32 tables 4-byte aligned within the file).
const SECTION_ALIGN: usize = 64;
/// One directory entry: `offset u64 | len u64 | xxh64 u64`,
/// little-endian. Section payloads are bulk data checked on every open,
/// so they carry XXH64 (see `newslink_util::xxh64` for why); the small
/// envelope frames keep CRC-32.
const DIR_ENTRY_BYTES: usize = 24;
/// Fixed section preamble: `n_docs | bow_len | bon_len | emb_len`.
const SECTION_HEADER_BYTES: usize = 16;
/// Trailing magic confirming the directory + footer are present.
const FOOTER_MAGIC: &[u8; 4] = b"NL4F";
/// Footer: `[directory CRC-32 u32][NL4F]`.
const FOOTER_BYTES: usize = 8;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed (includes truncation, which
    /// surfaces as `UnexpectedEof`).
    Io(io::Error),
    /// The file does not start with the `NLNK` magic.
    BadMagic,
    /// The file's format version is not the one this build understands.
    UnsupportedVersion(u8),
    /// The snapshot was built against a different graph build.
    GraphMismatch {
        /// Node count recorded in the file.
        file_nodes: usize,
        /// Edge count recorded in the file.
        file_edges: usize,
        /// Node count of the graph given to the loader.
        graph_nodes: usize,
        /// Edge count of the graph given to the loader.
        graph_edges: usize,
    },
    /// A frame's stored checksum (CRC-32 for envelope frames, XXH64 for
    /// v4 segment sections) does not match its bytes: the file was
    /// corrupted at rest or in transit.
    ChecksumMismatch {
        /// Which frame failed ("header" or "segment N").
        what: String,
        /// The checksum recorded in the file.
        stored: u64,
        /// The checksum of the bytes actually read.
        computed: u64,
    },
    /// The manifest decoded but violates a structural invariant.
    Corrupt(String),
    /// Replaying a WAL insert did not land on the id the log recorded:
    /// the engine allocating ids during recovery disagrees with the one
    /// that wrote the log (e.g. a config change between runs). Serving
    /// the result would corrupt every later delete replay, so recovery
    /// fails instead.
    ReplayDiverged {
        /// The id the WAL recorded for the insert.
        logged: u32,
        /// The id the replayed insert actually received.
        got: u32,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic => write!(f, "bad magic (not a NewsLink index file)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported index version {v} (this build reads {VERSION_V3} and {VERSION})"
                )
            }
            Self::GraphMismatch {
                file_nodes,
                file_edges,
                graph_nodes,
                graph_edges,
            } => write!(
                f,
                "index was built against a different graph \
                 ({file_nodes} nodes / {file_edges} edges vs {graph_nodes} / {graph_edges})"
            ),
            Self::ChecksumMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {what}: stored {stored:#x}, computed {computed:#x}"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt index manifest: {msg}"),
            Self::ReplayDiverged { logged, got } => write!(
                f,
                "wal replay diverged: logged insert id {logged} landed on {got} \
                 (was the engine config changed since the log was written?)"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// What a tolerant load salvaged and what it had to give up, plus the
/// write-ahead-log replay counters filled in by
/// [`DurableStore::open`](crate::store::DurableStore::open).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Segments that decoded and validated.
    pub segments_loaded: usize,
    /// Segments dropped because their frame failed its checksum, was
    /// truncated, or violated a structural invariant. Their documents
    /// are gone until the corpus is re-indexed; the id allocator still
    /// accounts for them, so fresh inserts never reuse their ids.
    pub quarantined_segments: usize,
    /// Tombstones referencing documents that no longer resolve (their
    /// segment was quarantined).
    pub dropped_tombstones: usize,
    /// WAL records re-applied over the snapshot on open.
    pub wal_records_replayed: usize,
    /// WAL records skipped during replay because the snapshot already
    /// reflected them (replay is idempotent).
    pub wal_records_skipped: usize,
    /// Bytes discarded from the WAL tail: a torn final append.
    pub wal_truncated_bytes: u64,
}

impl LoadReport {
    /// True when data was lost: the store is serving a subset of the
    /// corpus and operators should re-index.
    pub fn degraded(&self) -> bool {
        self.quarantined_segments > 0
    }
}

/// Encode the header frame body (shared by the v3 and v4 writers).
fn encode_header_body(index: &NewsLinkIndex, graph: &KnowledgeGraph) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    // Graph fingerprint.
    varint::write_u64(&mut body, graph.node_count() as u64)?;
    varint::write_u64(&mut body, graph.edge_count() as u64)?;
    // Id allocator + lifecycle counters.
    varint::write_u64(&mut body, u64::from(index.next_id))?;
    varint::write_u64(&mut body, index.compactions)?;
    varint::write_u64(&mut body, index.match_stats.identified as u64)?;
    varint::write_u64(&mut body, index.match_stats.matched as u64)?;
    varint::write_u64(&mut body, index.embedded_docs as u64)?;
    // Tombstones, sorted for determinism.
    let mut tombstones: Vec<u32> = index.tombstones.iter().copied().collect();
    tombstones.sort_unstable();
    varint::write_u64(&mut body, tombstones.len() as u64)?;
    for t in tombstones {
        varint::write_u64(&mut body, u64::from(t))?;
    }
    varint::write_u64(&mut body, index.segments.len() as u64)?;
    Ok(body)
}

/// Serialize a built index in the current (version 4) format: header
/// frame, aligned CRC-framed segment sections, offset directory, footer.
/// The bytes are assembled in memory first (offsets must be known), then
/// streamed to `out` — so failpoint writers still see one sequential
/// write.
pub fn write_newslink_index<W: Write>(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    out: &mut W,
) -> Result<(), PersistError> {
    let bytes = encode_newslink_index(index, graph)?;
    out.write_all(&bytes)?;
    Ok(())
}

/// Encode the version-4 snapshot into one buffer.
fn encode_newslink_index(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_frame(&mut out, &encode_header_body(index, graph)?)?;

    let mut dir = Vec::with_capacity(index.segments.len() * DIR_ENTRY_BYTES);
    for seg in &index.segments {
        // Pad so every section starts on a SECTION_ALIGN boundary.
        out.resize(out.len().next_multiple_of(SECTION_ALIGN), 0);
        let section = encode_segment_section(seg)?;
        dir.extend_from_slice(&(out.len() as u64).to_le_bytes());
        dir.extend_from_slice(&(section.len() as u64).to_le_bytes());
        dir.extend_from_slice(&xxh64(&section).to_le_bytes());
        out.extend_from_slice(&section);
    }
    out.extend_from_slice(&dir);
    out.extend_from_slice(&crc32(&dir).to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    Ok(out)
}

/// Encode one segment as a v4 section: a fixed preamble, the
/// fixed-width global-id and embedding-end tables, the columnar BOW and
/// BON indexes, and the concatenated encoded doc store.
fn encode_segment_section(seg: &IndexSegment) -> Result<Vec<u8>, PersistError> {
    let n = seg.len();
    let mut bow_buf = Vec::new();
    write_index_columnar(seg.bow(), &mut bow_buf)?;
    let mut bon_buf = Vec::new();
    write_index_columnar(seg.bon(), &mut bon_buf)?;
    let mut emb_buf = Vec::new();
    let mut ends = Vec::with_capacity(n);
    for e in seg.embeddings() {
        embed_codec::write_embedding(e, &mut emb_buf)?;
        ends.push(section_u32(emb_buf.len(), "doc store")?);
    }

    let mut out =
        Vec::with_capacity(SECTION_HEADER_BYTES + 8 * n + bow_buf.len() + bon_buf.len() + emb_buf.len());
    out.extend_from_slice(&section_u32(n, "doc count")?.to_le_bytes());
    out.extend_from_slice(&section_u32(bow_buf.len(), "BOW index")?.to_le_bytes());
    out.extend_from_slice(&section_u32(bon_buf.len(), "BON index")?.to_le_bytes());
    out.extend_from_slice(&section_u32(emb_buf.len(), "doc store")?.to_le_bytes());
    for &g in seg.globals() {
        out.extend_from_slice(&g.to_le_bytes());
    }
    for end in ends {
        out.extend_from_slice(&end.to_le_bytes());
    }
    out.extend_from_slice(&bow_buf);
    out.extend_from_slice(&bon_buf);
    out.extend_from_slice(&emb_buf);
    Ok(out)
}

fn section_u32(v: usize, what: &str) -> Result<u32, PersistError> {
    u32::try_from(v)
        .map_err(|_| PersistError::Corrupt(format!("{what} of {v} bytes exceeds a v4 section")))
}

/// Serialize in the previous sequential-frame format (version 3):
/// header frame + one frame per segment. Kept so format migration —
/// old snapshot in, v4 checkpoint out — stays testable.
pub fn write_newslink_index_v3<W: Write>(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    out: &mut W,
) -> Result<(), PersistError> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION_V3])?;
    write_frame(out, &encode_header_body(index, graph)?)?;

    let mut body = Vec::new();
    for seg in &index.segments {
        body.clear();
        varint::write_u64(&mut body, seg.len() as u64)?;
        for &g in seg.globals() {
            varint::write_u64(&mut body, u64::from(g))?;
        }
        write_index(seg.bow(), &mut body)?;
        write_index(seg.bon(), &mut body)?;
        for e in seg.embeddings() {
            embed_codec::write_embedding(e, &mut body)?;
        }
        write_frame(out, &body)?;
    }
    Ok(())
}

fn write_frame<W: Write>(out: &mut W, body: &[u8]) -> io::Result<()> {
    varint::write_u64(out, body.len() as u64)?;
    out.write_all(body)?;
    out.write_all(&crc32(body).to_le_bytes())
}

/// Read one `[len][body][crc]` frame, verifying the checksum.
fn read_frame<R: Read>(input: &mut R, what: &str) -> Result<Vec<u8>, PersistError> {
    let len = varint::read_u64(input)?;
    if len > MAX_FRAME_BYTES {
        return Err(PersistError::Corrupt(format!(
            "{what} frame length {len} is implausible"
        )));
    }
    let mut body = vec![0u8; len as usize];
    input.read_exact(&mut body)?;
    let mut stored = [0u8; 4];
    input.read_exact(&mut stored)?;
    let stored = u32::from_le_bytes(stored);
    let computed = crc32(&body);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            what: what.to_string(),
            stored: stored.into(),
            computed: computed.into(),
        });
    }
    Ok(body)
}

struct Header {
    file_nodes: usize,
    file_edges: usize,
    next_id: u32,
    compactions: u64,
    identified: usize,
    matched: usize,
    embedded_docs: usize,
    tombstones: Vec<u32>,
    n_segments: usize,
}

/// Parse the header frame body. The frame's CRC already passed, so any
/// failure here means the writer produced an invalid manifest: always
/// [`PersistError::Corrupt`].
fn parse_header(mut body: &[u8]) -> Result<Header, PersistError> {
    let input = &mut body;
    let oops = |e: io::Error| PersistError::Corrupt(format!("header frame underruns: {e}"));
    let file_nodes = varint::read_u64(input).map_err(oops)? as usize;
    let file_edges = varint::read_u64(input).map_err(oops)? as usize;
    let next_id = read_u32(input, "next_id")?;
    let compactions = varint::read_u64(input).map_err(oops)?;
    let identified = varint::read_u64(input).map_err(oops)? as usize;
    let matched = varint::read_u64(input).map_err(oops)? as usize;
    let embedded_docs = varint::read_u64(input).map_err(oops)? as usize;
    let n_tombstones = varint::read_u64(input).map_err(oops)? as usize;
    let mut tombstones = Vec::with_capacity(n_tombstones.min(1 << 20));
    for _ in 0..n_tombstones {
        let t = read_u32(input, "tombstone id")?;
        if t >= next_id {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} beyond allocator ({next_id})"
            )));
        }
        tombstones.push(t);
    }
    let n_segments = varint::read_u64(input).map_err(oops)? as usize;
    if !input.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "header frame has {} trailing bytes",
            input.len()
        )));
    }
    Ok(Header {
        file_nodes,
        file_edges,
        next_id,
        compactions,
        identified,
        matched,
        embedded_docs,
        tombstones,
        n_segments,
    })
}

/// Parse one v3 segment frame body and validate its invariants against
/// the allocator and the last global id of the previous kept segment.
fn parse_segment(
    mut body: &[u8],
    si: usize,
    next_id: u32,
    prev_global: Option<u32>,
) -> Result<(IndexSegment, u32), PersistError> {
    let input = &mut body;
    let oops = |e: io::Error| PersistError::Corrupt(format!("segment {si} frame underruns: {e}"));
    let len = varint::read_u64(input).map_err(oops)? as usize;
    if len == 0 {
        return Err(PersistError::Corrupt(format!("segment {si} is empty")));
    }
    let mut globals = Vec::with_capacity(len.min(1 << 20));
    let mut prev = prev_global;
    for _ in 0..len {
        let g = read_u32(input, "global id")?;
        if prev.is_some_and(|p| p >= g) {
            return Err(PersistError::Corrupt(format!(
                "segment {si}: global ids not strictly ascending at {g}"
            )));
        }
        if g >= next_id {
            return Err(PersistError::Corrupt(format!(
                "segment {si}: global id {g} beyond allocator ({next_id})"
            )));
        }
        prev = Some(g);
        globals.push(g);
    }
    let bow = read_index(input).map_err(oops)?;
    let bon = read_index(input).map_err(oops)?;
    if bow.doc_count() != len || bon.doc_count() != len {
        return Err(PersistError::Corrupt(format!(
            "segment {si}: doc counts misaligned (globals {len}, BOW {}, BON {})",
            bow.doc_count(),
            bon.doc_count()
        )));
    }
    let mut embeddings = Vec::with_capacity(len);
    for _ in 0..len {
        embeddings.push(embed_codec::read_embedding(input).map_err(oops)?);
    }
    if !input.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "segment {si} frame has {} trailing bytes",
            input.len()
        )));
    }
    let last = globals[globals.len() - 1];
    Ok((IndexSegment::from_parts(bow, bon, embeddings, globals), last))
}

/// Parse one v4 segment section and validate every invariant the
/// zero-copy views rely on: exact tiling of the fixed-width tables and
/// blobs, ascending global ids, monotone embedding record ends. The
/// section's CRC has already passed; any failure here is [`Corrupt`].
///
/// The returned segment's posting data and doc store are `Bytes` slices
/// of `section` — zero-copy when the section came from a memory mapping.
///
/// [`Corrupt`]: PersistError::Corrupt
fn parse_segment_v4(
    section: &Bytes,
    si: usize,
    next_id: u32,
    prev_global: Option<u32>,
) -> Result<(IndexSegment, u32), PersistError> {
    let raw: &[u8] = section;
    let oops = |msg: String| PersistError::Corrupt(format!("segment {si}: {msg}"));
    let word = |at: usize| -> Result<usize, PersistError> {
        raw.get(at..at + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
            .ok_or_else(|| oops(format!("section underruns at byte {at}")))
    };
    let n = word(0)?;
    if n == 0 {
        return Err(PersistError::Corrupt(format!("segment {si} is empty")));
    }
    let bow_len = word(4)?;
    let bon_len = word(8)?;
    let emb_len = word(12)?;
    let globals_at = SECTION_HEADER_BYTES;
    // Every span is a u32, so u64 arithmetic cannot overflow.
    let total = SECTION_HEADER_BYTES as u64
        + 8 * n as u64
        + bow_len as u64
        + bon_len as u64
        + emb_len as u64;
    if total != raw.len() as u64 {
        return Err(oops(format!(
            "section is {} bytes but its tables claim {total}",
            raw.len()
        )));
    }
    let ends_at = globals_at + 4 * n;
    let bow_at = ends_at + 4 * n;
    let bon_at = bow_at + bow_len;
    let emb_at = bon_at + bon_len;

    // Tiling was just proved exact, so both tables slice cleanly; decode
    // them with straight-line chunk walks (this is the hot O(docs) part
    // of a mapped open).
    let mut globals = Vec::with_capacity(n);
    let mut prev = prev_global;
    for w in raw[globals_at..ends_at].chunks_exact(4) {
        let g = u32::from_le_bytes(w.try_into().expect("4 bytes"));
        if prev.is_some_and(|p| p >= g) {
            return Err(oops(format!("global ids not strictly ascending at {g}")));
        }
        if g >= next_id {
            return Err(oops(format!("global id {g} beyond allocator ({next_id})")));
        }
        prev = Some(g);
        globals.push(g);
    }
    let mut ends = Vec::with_capacity(n);
    for (i, w) in raw[ends_at..bow_at].chunks_exact(4).enumerate() {
        let end = u32::from_le_bytes(w.try_into().expect("4 bytes"));
        if ends.last().is_some_and(|&p| p > end) {
            return Err(oops(format!("embedding record ends regress at doc {i}")));
        }
        ends.push(end);
    }
    if ends.last().copied().unwrap_or(0) as usize != emb_len {
        return Err(oops(format!(
            "doc store is {emb_len} bytes but records end at {}",
            ends.last().copied().unwrap_or(0)
        )));
    }

    // Mapped sections decode lazily — the CRC just verified the bytes,
    // so term lookups can binary-search the mapping and posting lists
    // can materialize on first touch. Heap sections keep the eager,
    // re-validating decode (the classic fail-fast path).
    let read_columnar = if section.is_mapped() {
        read_index_columnar_lazy
    } else {
        read_index_columnar
    };
    let bow = read_columnar(&section.slice(bow_at..bon_at))
        .map_err(|e| oops(format!("BOW index: {e}")))?;
    let bon = read_columnar(&section.slice(bon_at..emb_at))
        .map_err(|e| oops(format!("BON index: {e}")))?;
    if bow.doc_count() != n || bon.doc_count() != n {
        return Err(oops(format!(
            "doc counts misaligned (globals {n}, BOW {}, BON {})",
            bow.doc_count(),
            bon.doc_count()
        )));
    }
    let store = DocStore::lazy(section.slice(emb_at..raw.len()), ends);
    let last = globals[n - 1];
    Ok((
        IndexSegment::from_lazy_parts(bow, bon, store, globals),
        last,
    ))
}

/// Deserialize an index, verifying it was built against `graph` and that
/// every frame checksum and structural invariant holds. Any damage —
/// one flipped bit anywhere — fails the whole load; use
/// [`read_newslink_index_tolerant`] to salvage what survives.
///
/// Reads the stream to its end, then dispatches on the version byte
/// (the v4 layout is directory-addressed and needs random access).
pub fn read_newslink_index<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> Result<NewsLinkIndex, PersistError> {
    let mut buf = Vec::new();
    input.read_to_end(&mut buf)?;
    read_newslink_index_bytes(graph, &Bytes::from_vec(buf), false).map(|(index, _)| index)
}

/// Deserialize an index in degraded mode: segments that fail their
/// checksum or validation are *quarantined* (skipped) rather than fatal,
/// and tombstones pointing into quarantined segments are dropped. The
/// envelope — magic, version, graph fingerprint, the header frame and
/// (v4) the section directory + footer — must still be intact; without
/// the allocator and manifest there is nothing safe to serve.
///
/// The returned [`LoadReport`] says exactly what was lost;
/// [`LoadReport::degraded`] is the "page the operator" bit.
pub fn read_newslink_index_tolerant<R: Read>(
    graph: &KnowledgeGraph,
    input: &mut R,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let mut buf = Vec::new();
    input.read_to_end(&mut buf)?;
    read_newslink_index_bytes(graph, &Bytes::from_vec(buf), true)
}

/// Deserialize an index from a whole-file byte region, dispatching on
/// the format version (3 or 4). This is the storage layer's entry
/// point: hand it a memory-mapped [`Bytes`] and a v4 snapshot loads
/// zero-copy — posting data and the encoded doc store stay views of the
/// mapping. `tolerant` selects quarantine-and-continue over
/// fail-on-first-damage.
pub fn read_newslink_index_bytes(
    graph: &KnowledgeGraph,
    bytes: &Bytes,
    tolerant: bool,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let mut cursor: &[u8] = bytes;
    let input = &mut cursor;
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    match version[0] {
        VERSION_V3 => read_v3_frames(graph, input, tolerant),
        VERSION => read_v4(graph, bytes, tolerant),
        v => Err(PersistError::UnsupportedVersion(v)),
    }
}

/// Reject a snapshot built against a different graph build.
fn check_graph(header: &Header, graph: &KnowledgeGraph) -> Result<(), PersistError> {
    if header.file_nodes != graph.node_count() || header.file_edges != graph.edge_count() {
        return Err(PersistError::GraphMismatch {
            file_nodes: header.file_nodes,
            file_edges: header.file_edges,
            graph_nodes: graph.node_count(),
            graph_edges: graph.edge_count(),
        });
    }
    Ok(())
}

/// The shared load tail: build the index, resolve tombstones against
/// the segments that survived.
fn assemble_index(
    header: Header,
    segments: Vec<IndexSegment>,
    mut report: LoadReport,
    tolerant: bool,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    report.segments_loaded = segments.len();
    let mut index = NewsLinkIndex {
        segments,
        tombstones: FxHashSet::default(),
        next_id: header.next_id,
        id_stride: 1,
        compactions: header.compactions,
        match_stats: MatchStats {
            identified: header.identified,
            matched: header.matched,
        },
        embedded_docs: header.embedded_docs,
        timer: ComponentTimer::new(),
        cache_stats: Default::default(),
    };
    for t in header.tombstones {
        if index.locate(newslink_text::DocId(t)).is_some() {
            index.tombstones.insert(t);
        } else if tolerant {
            report.dropped_tombstones += 1;
        } else {
            return Err(PersistError::Corrupt(format!(
                "tombstone id {t} not stored in any segment"
            )));
        }
    }
    Ok((index, report))
}

/// The v3 body: a sequential frame walk over `input`, which is
/// positioned just past the magic and version bytes.
fn read_v3_frames(
    graph: &KnowledgeGraph,
    input: &mut &[u8],
    tolerant: bool,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let header = parse_header(&read_frame(input, "header")?)?;
    check_graph(&header, graph)?;

    let mut report = LoadReport::default();
    let mut segments = Vec::with_capacity(header.n_segments.min(1024));
    let mut prev_global: Option<u32> = None;
    for si in 0..header.n_segments {
        let what = format!("segment {si}");
        let body = match read_frame(input, &what) {
            Ok(body) => body,
            Err(PersistError::ChecksumMismatch { .. }) if tolerant => {
                // The frame's extent was intact (length prefix consumed,
                // body + CRC read) — quarantine it and keep scanning.
                report.quarantined_segments += 1;
                continue;
            }
            Err(_) if tolerant => {
                // Truncation or a corrupt length prefix: the rest of the
                // file cannot be located. Everything from here on is lost.
                report.quarantined_segments += header.n_segments - si;
                break;
            }
            Err(e) => return Err(e),
        };
        match parse_segment(&body, si, header.next_id, prev_global) {
            Ok((seg, last)) => {
                prev_global = Some(last);
                segments.push(seg);
            }
            Err(_) if tolerant => {
                report.quarantined_segments += 1;
            }
            Err(e) => return Err(e),
        }
    }
    assemble_index(header, segments, report, tolerant)
}

/// Parsed v4 envelope: the header plus each section's `(start, end,
/// crc)` from the tail directory. Fails on any damage to the header
/// frame, directory checksum or footer — the envelope must be intact
/// even for tolerant loads.
struct V4Envelope {
    header: Header,
    sections: Vec<(usize, usize, u64)>,
}

/// Validate the v4 envelope of a whole file (magic and version already
/// checked): header frame, footer magic, directory CRC, and per-section
/// bounds against the data region.
fn parse_v4_envelope(raw: &[u8]) -> Result<V4Envelope, PersistError> {
    let mut cursor = &raw[5..];
    let header = parse_header(&read_frame(&mut cursor, "header")?)?;
    let header_end = raw.len() - cursor.len();

    if raw.len() < header_end + FOOTER_BYTES || &raw[raw.len() - 4..] != FOOTER_MAGIC {
        return Err(PersistError::Corrupt(
            "missing v4 footer (truncated file?)".to_string(),
        ));
    }
    let stored_dir_crc = u32::from_le_bytes(
        raw[raw.len() - FOOTER_BYTES..raw.len() - 4]
            .try_into()
            .expect("4 bytes"),
    );
    let dir_len = header
        .n_segments
        .checked_mul(DIR_ENTRY_BYTES)
        .filter(|&l| l <= raw.len() - FOOTER_BYTES - header_end)
        .ok_or_else(|| {
            PersistError::Corrupt(format!(
                "directory of {} segments does not fit the file",
                header.n_segments
            ))
        })?;
    let dir_start = raw.len() - FOOTER_BYTES - dir_len;
    let dir = &raw[dir_start..raw.len() - FOOTER_BYTES];
    let computed = crc32(dir);
    if computed != stored_dir_crc {
        return Err(PersistError::ChecksumMismatch {
            what: "segment directory".to_string(),
            stored: stored_dir_crc.into(),
            computed: computed.into(),
        });
    }

    let mut sections = Vec::with_capacity(header.n_segments);
    for si in 0..header.n_segments {
        let e = &dir[si * DIR_ENTRY_BYTES..(si + 1) * DIR_ENTRY_BYTES];
        let offset = u64::from_le_bytes(e[0..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
        let sum = u64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
        let (Ok(start), Some(end)) = (usize::try_from(offset), offset.checked_add(len)) else {
            return Err(PersistError::Corrupt(format!(
                "segment {si} span {offset}+{len} overflows"
            )));
        };
        let Ok(end) = usize::try_from(end) else {
            return Err(PersistError::Corrupt(format!(
                "segment {si} span {offset}+{len} overflows"
            )));
        };
        if start < header_end || end > dir_start {
            return Err(PersistError::Corrupt(format!(
                "segment {si} span {start}..{end} escapes the data region \
                 ({header_end}..{dir_start})"
            )));
        }
        sections.push((start, end, sum));
    }
    Ok(V4Envelope { header, sections })
}

/// Per-section XXH64 sums of the v4 data region. On the mapped fast
/// path the open-time work is *only* verification (decode is deferred),
/// and the sections are independent — so large mapped files checksum on
/// multiple threads. Heap loads keep the classic sequential
/// verify-then-decode walk.
fn section_sums(bytes: &Bytes, sections: &[(usize, usize, u64)]) -> Vec<u64> {
    let total: usize = sections.iter().map(|&(s, e, _)| e - s).sum();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1);
    if !bytes.is_mapped() || sections.len() < 2 || total < (1 << 20) || threads < 2 {
        return sections
            .iter()
            .map(|&(start, end, _)| xxh64(&bytes[start..end]))
            .collect();
    }
    let mut out = vec![0u64; sections.len()];
    // Deal sections round-robin: contiguous chunks would serialize on
    // one straggler when sizes are skewed.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                sections
                    .iter()
                    .enumerate()
                    .skip(t)
                    .step_by(threads)
                    .map(|(si, &(start, end, _))| (si, xxh64(&bytes[start..end])))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (si, sum) in h.join().expect("checksum worker panicked") {
                out[si] = sum;
            }
        }
    });
    out
}

/// The v4 body: validate the envelope, then check and parse each
/// directory-addressed section independently. Because sections are
/// located by the directory, a damaged one quarantines alone — later
/// segments still load (v3 loses everything after a torn frame).
fn read_v4(
    graph: &KnowledgeGraph,
    bytes: &Bytes,
    tolerant: bool,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let envelope = parse_v4_envelope(bytes)?;
    check_graph(&envelope.header, graph)?;

    let sums = section_sums(bytes, &envelope.sections);
    let mut report = LoadReport::default();
    let mut segments = Vec::with_capacity(envelope.header.n_segments.min(1024));
    let mut prev_global: Option<u32> = None;
    for (si, &(start, end, stored)) in envelope.sections.iter().enumerate() {
        let section = bytes.slice(start..end);
        let computed = sums[si];
        let parsed = if computed != stored {
            Err(PersistError::ChecksumMismatch {
                what: format!("segment {si}"),
                stored,
                computed,
            })
        } else {
            parse_segment_v4(&section, si, envelope.header.next_id, prev_global)
        };
        match parsed {
            Ok((seg, last)) => {
                prev_global = Some(last);
                segments.push(seg);
            }
            Err(_) if tolerant => {
                report.quarantined_segments += 1;
            }
            Err(e) => return Err(e),
        }
    }
    assemble_index(envelope.header, segments, report, tolerant)
}

/// `(start, end)` byte span of every segment section in a version-4
/// snapshot, in directory order. The fault-injection suites use this to
/// flip bytes inside a chosen segment without hand-walking the layout.
/// Fails exactly when the reader would reject the envelope.
pub fn segment_byte_spans(raw: &[u8]) -> Result<Vec<(usize, usize)>, PersistError> {
    if raw.len() < 5 {
        return Err(PersistError::Corrupt("file too short".to_string()));
    }
    if &raw[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if raw[4] != VERSION {
        return Err(PersistError::UnsupportedVersion(raw[4]));
    }
    let envelope = parse_v4_envelope(raw)?;
    Ok(envelope
        .sections
        .into_iter()
        .map(|(start, end, _)| (start, end))
        .collect())
}

fn read_u32<R: Read>(input: &mut R, what: &str) -> Result<u32, PersistError> {
    let v = varint::read_u64(input)
        .map_err(|e| PersistError::Corrupt(format!("{what} underruns: {e}")))?;
    u32::try_from(v).map_err(|_| PersistError::Corrupt(format!("{what} {v} overflows u32")))
}

/// Write `bytes` to `path` crash-atomically: write `<path>.tmp`, fsync
/// it, rename over `path`, fsync the parent directory. A crash at any
/// point leaves either the old file or the new one, never a torn mix.
pub fn atomic_write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // The rename is only durable once the directory entry is on
            // disk. Best-effort: some filesystems refuse dir fsync.
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

/// Save to a file, crash-atomically (see [`atomic_write_file`]).
pub fn save_newslink_index(
    index: &NewsLinkIndex,
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<(), PersistError> {
    let mut bytes = Vec::new();
    write_newslink_index(index, graph, &mut bytes)?;
    atomic_write_file(path, &bytes)?;
    Ok(())
}

/// Load from a file, strictly (any damage is fatal).
pub fn load_newslink_index(
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<NewsLinkIndex, PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index(graph, &mut f)
}

/// Blob name of the label-automaton artifact inside a [`Directory`].
pub const LABEL_FST_BLOB: &str = "labels.fst";

/// Publish the FST label index into `dir` under [`LABEL_FST_BLOB`],
/// atomically. The blob is self-checksummed (per-section XXH64 plus a
/// CRC-framed directory, same discipline as the v4 snapshot), so
/// [`load_label_fst`] detects any at-rest damage.
pub fn save_label_fst(
    dir: &dyn crate::directory::Directory,
    index: &newslink_kg::FstLabelIndex,
) -> Result<(), PersistError> {
    dir.atomic_write(LABEL_FST_BLOB, &index.encode())?;
    Ok(())
}

/// Open the label automaton from `dir` through the zero-copy seam:
/// file-backed directories hand back a memory mapping, so the FSTs, the
/// postings arena and the node table serve straight from the page cache
/// — cold-start label resolution without decoding. Every section's
/// checksum is verified before the index is handed out; damage surfaces
/// as [`PersistError::Corrupt`] naming the failing section.
pub fn load_label_fst(
    dir: &dyn crate::directory::Directory,
) -> Result<newslink_kg::FstLabelIndex, PersistError> {
    let bytes = dir.open_bytes(LABEL_FST_BLOB)?;
    newslink_kg::FstLabelIndex::decode(bytes)
        .map_err(|e| PersistError::Corrupt(format!("label automaton: {e}")))
}

/// Load from a file in degraded mode (see
/// [`read_newslink_index_tolerant`]).
pub fn load_newslink_index_tolerant(
    graph: &KnowledgeGraph,
    path: &Path,
) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_newslink_index_tolerant(graph, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use crate::directory::FsDirectory;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};
    use newslink_text::DocId;

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber.",
        "A story with no entities whatsoever.",
    ];

    /// `(frame_start, body_start, body_end)` for every frame in a **v3**
    /// buffer (frame 0 is the header). `body_end` is also where the CRC
    /// starts. v4 sections are located with [`segment_byte_spans`].
    fn frame_spans(buf: &[u8]) -> Vec<(usize, usize, usize)> {
        let mut spans = Vec::new();
        let mut at = 5; // magic + version
        while at < buf.len() {
            let mut cursor = &buf[at..];
            let len = varint::read_u64(&mut cursor).unwrap() as usize;
            let body_start = buf.len() - cursor.len();
            spans.push((at, body_start, body_start + len));
            at = body_start + len + 4;
        }
        assert_eq!(at, buf.len(), "frames must tile the file exactly");
        spans
    }

    /// Re-stamp the CRC of the frame whose body spans `[start, end)`
    /// after a deliberate body edit (so the edit reaches the structural
    /// validators instead of tripping the checksum).
    fn restamp_crc(buf: &mut [u8], body_start: usize, body_end: usize) {
        let crc = crc32(&buf[body_start..body_end]);
        buf[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn round_trip_preserves_search_behaviour() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.doc_count(), idx.doc_count());
        assert_eq!(back.embedded_docs, idx.embedded_docs);
        assert_eq!(back.match_stats, idx.match_stats);
        for q in ["Taliban near Kunar", "Pakistan talks"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn label_fst_round_trips_through_ram_directory() {
        let (g, li) = world();
        let fst = newslink_kg::FstLabelIndex::build(&g);
        let dir = crate::directory::RamDirectory::new();
        save_label_fst(&dir, &fst).unwrap();
        let back = load_label_fst(&dir).unwrap();
        assert!(!back.is_mapped(), "RAM blobs stay heap-backed");
        assert_eq!(back.surface_postings(), fst.surface_postings());
        // The reloaded automaton answers like the hash oracle.
        for (surface, nodes) in fst.surface_postings() {
            use newslink_kg::LabelResolver;
            let got: Vec<_> = back.exact(&surface).collect();
            assert_eq!(got, nodes);
            let oracle: Vec<_> = li.exact(&surface).collect();
            assert_eq!(got, oracle, "surface {surface:?}");
        }
    }

    #[test]
    fn label_fst_maps_zero_copy_from_fs_directory() {
        let (g, _) = world();
        let fst = newslink_kg::FstLabelIndex::build(&g);
        let tmp = std::env::temp_dir().join(format!("nl-fst-dir-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let dir = FsDirectory::create(&tmp).unwrap();
        save_label_fst(&dir, &fst).unwrap();
        let back = load_label_fst(&dir).unwrap();
        assert!(back.is_mapped(), "FsDirectory opens label blobs via mmap");
        assert_eq!(back.surface_postings(), fst.surface_postings());
        // Flip a byte in the stored blob: the load must fail typed, not
        // serve corrupt postings.
        let path = dir.path_of(LABEL_FST_BLOB);
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        match load_label_fst(&dir) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("label automaton"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn multi_segment_round_trip_with_tombstones() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        assert_eq!(idx.segment_count(), 3);
        assert_eq!(idx.tombstone_count(), 1);

        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let back = read_newslink_index(&g, &mut &buf[..]).unwrap();
        assert_eq!(back.segment_count(), 3);
        assert_eq!(back.tombstone_count(), 1);
        assert_eq!(back.compactions(), idx.compactions());
        assert_eq!(back.doc_count(), 2);
        for q in ["Taliban near Kunar", "Pakistan talks", "story entities"] {
            let a = search(&g, &li, &cfg, &idx, q, 3);
            let b = search(&g, &li, &cfg, &back, q, 3);
            assert_eq!(a.results.len(), b.results.len(), "query {q}");
            for (x, y) in a.results.iter().zip(&b.results) {
                assert_eq!(x.doc, y.doc);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {q}");
            }
        }
        // Ids and the allocator survive the round trip: a reloaded index
        // keeps assigning fresh ids.
        let mut back = back;
        assert_eq!(back.reserve_id(), DocId(3));
    }

    #[test]
    fn graph_fingerprint_mismatch_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // A different graph: one extra node.
        let mut b = GraphBuilder::new();
        b.add_node("Lonely", EntityType::Gpe);
        let other = b.freeze();
        let err = read_newslink_index(&other, &mut &buf[..]).unwrap_err();
        assert!(matches!(err, PersistError::GraphMismatch { .. }), "{err}");
        assert!(err.to_string().contains("different graph"), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Every truncation point must produce an error, never a panic.
        for cut in [3, 5, 9, buf.len() / 2, buf.len() - 3] {
            let err = read_newslink_index(&g, &mut &buf[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn truncation_mid_varint_and_mid_segment_is_io() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        let (seg_frame_start, seg_body_start, seg_body_end) = spans[1];
        // The segment frame's length prefix is a multi-byte varint in
        // this fixture; cutting one byte into it is a mid-varint tear.
        assert!(
            seg_body_start - seg_frame_start > 1,
            "fixture's segment frame length must be a multi-byte varint"
        );
        for cut in [seg_frame_start + 1, (seg_body_start + seg_body_end) / 2] {
            match read_newslink_index(&g, &mut &buf[..cut]) {
                Err(PersistError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected Io(UnexpectedEof), got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_flip_is_typed_and_names_the_frame() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        assert_eq!(spans.len(), 4, "header + three single-doc segments");
        // Flip one bit in the middle of segment 1's body.
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x40;
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::ChecksumMismatch { what, stored, computed }) => {
                assert_eq!(what, "segment 1");
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        buf[4] = 2; // the pre-checksum format version
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
        buf[0] = b'X';
        assert!(matches!(
            read_newslink_index(&g, &mut &buf[..]),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn corrupt_manifest_is_typed_not_a_panic() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        // Header body layout: nodes(1) edges(1) next_id(1) … — all small
        // varints in this fixture. Zeroing next_id makes every stored
        // global id fall beyond the allocator; the CRC is re-stamped so
        // the edit reaches the structural validator, not the checksum.
        let (_, body_start, body_end) = frame_spans(&buf)[0];
        assert_eq!(buf[body_start + 2], 3, "fixture layout changed");
        buf[body_start + 2] = 0;
        restamp_crc(&mut buf, body_start, body_end);
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(msg.contains("beyond allocator"), "{msg}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn tolerant_load_quarantines_checksum_failing_segment() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Corrupt segment 1 (holding doc 1).
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x01;

        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert!(report.degraded());
        assert_eq!(report.quarantined_segments, 1);
        assert_eq!(report.segments_loaded, 2);
        assert_eq!(report.dropped_tombstones, 0);
        assert_eq!(back.doc_count(), 2);
        assert!(back.locate(DocId(0)).is_some());
        assert!(back.locate(DocId(1)).is_none(), "doc 1 was quarantined");
        assert!(back.locate(DocId(2)).is_some());
        // The surviving docs still serve queries.
        let out = search(&g, &li, &cfg, &back, "Taliban near Kunar", 3);
        assert!(out.results.iter().any(|r| r.doc == DocId(0)));
        // The allocator still accounts for the lost doc: fresh ids are new.
        let mut back = back;
        assert_eq!(back.reserve_id(), DocId(3));
    }

    #[test]
    fn tolerant_load_quarantines_truncated_tail() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Cut mid-way through segment 1: segments 1 and 2 are both lost.
        let cut = (spans[2].1 + spans[2].2) / 2;
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..cut]).unwrap();
        assert_eq!(report.quarantined_segments, 2);
        assert_eq!(report.segments_loaded, 1);
        assert_eq!(back.doc_count(), 1);
        assert!(back.locate(DocId(0)).is_some());
    }

    #[test]
    fn tolerant_load_drops_tombstones_into_quarantined_segments() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        let mut buf = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut buf).unwrap();
        let spans = frame_spans(&buf);
        // Quarantine segment 1, which holds the tombstoned doc 1.
        let (_, body_start, body_end) = spans[2];
        buf[(body_start + body_end) / 2] ^= 0x08;
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert_eq!(report.quarantined_segments, 1);
        assert_eq!(report.dropped_tombstones, 1);
        assert_eq!(back.tombstone_count(), 0);
        assert_eq!(back.doc_count(), 2);
        // Strict mode refuses the same bytes outright.
        assert!(matches!(
            read_newslink_index(&g, &mut &buf[..]),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn tolerant_load_on_clean_bytes_reports_nothing_lost() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert!(!report.degraded());
        assert_eq!(report, LoadReport {
            segments_loaded: 3,
            ..LoadReport::default()
        });
        assert_eq!(back.doc_count(), 3);
    }

    #[test]
    fn display_formats_every_variant() {
        let cases: Vec<(PersistError, &str)> = vec![
            (
                PersistError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "early eof")),
                "i/o error: early eof",
            ),
            (PersistError::BadMagic, "bad magic"),
            (
                PersistError::UnsupportedVersion(9),
                "unsupported index version 9",
            ),
            (
                PersistError::GraphMismatch {
                    file_nodes: 1,
                    file_edges: 2,
                    graph_nodes: 3,
                    graph_edges: 4,
                },
                "different graph (1 nodes / 2 edges vs 3 / 4)",
            ),
            (
                PersistError::ChecksumMismatch {
                    what: "segment 7".into(),
                    stored: 0xDEAD_BEEF,
                    computed: 0x0BAD_F00D,
                },
                "checksum mismatch in segment 7: stored 0xdeadbeef, computed 0xbadf00d",
            ),
            (
                PersistError::Corrupt("segment 0 is empty".into()),
                "corrupt index manifest: segment 0 is empty",
            ),
            (
                PersistError::ReplayDiverged { logged: 5, got: 7 },
                "wal replay diverged: logged insert id 5 landed on 7",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
        // The source chain exposes the io error and nothing else.
        use std::error::Error;
        assert!(PersistError::Io(io::Error::other("x")).source().is_some());
        assert!(PersistError::BadMagic.source().is_none());
    }

    #[test]
    fn file_round_trip_is_atomic_and_overwrites() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let dir = std::env::temp_dir().join(format!(
            "newslink_persist_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlnk");
        save_newslink_index(&idx, &g, &path).unwrap();
        let back = load_newslink_index(&g, &path).unwrap();
        assert_eq!(back.doc_count(), 3);
        // No temp residue, and saving over an existing file works.
        assert!(!dir.join("index.nlnk.tmp").exists());
        save_newslink_index(&back, &g, &path).unwrap();
        let (again, report) = load_newslink_index_tolerant(&g, &path).unwrap();
        assert_eq!(again.doc_count(), 3);
        assert!(!report.degraded());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn assert_search_parity(
        g: &KnowledgeGraph,
        li: &newslink_kg::LabelIndex,
        cfg: &NewsLinkConfig,
        a: &NewsLinkIndex,
        b: &NewsLinkIndex,
    ) {
        for q in ["Taliban near Kunar", "Pakistan talks", "story entities"] {
            let x = search(g, li, cfg, a, q, 3);
            let y = search(g, li, cfg, b, q, 3);
            assert_eq!(x.results.len(), y.results.len(), "query {q}");
            for (r, s) in x.results.iter().zip(&y.results) {
                assert_eq!(r.doc, s.doc, "query {q}");
                assert_eq!(r.score.to_bits(), s.score.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn v4_sections_are_aligned_and_addressable() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        assert_eq!(buf[4], VERSION);
        assert_eq!(&buf[buf.len() - 4..], FOOTER_MAGIC);
        let spans = segment_byte_spans(&buf).unwrap();
        assert_eq!(spans.len(), 3);
        let mut prev_end = 5;
        for &(start, end) in &spans {
            assert_eq!(start % SECTION_ALIGN, 0, "section at {start} misaligned");
            assert!(start >= prev_end && end > start && end <= buf.len());
            prev_end = end;
        }
        // The span helper rejects v3 bytes.
        let mut v3 = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut v3).unwrap();
        assert!(matches!(
            segment_byte_spans(&v3),
            Err(PersistError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn v4_quarantine_is_per_section_even_for_early_segments() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Corrupt the FIRST section: unlike v3's sequential frame walk,
        // the directory still addresses segments 1 and 2, so only doc 0
        // is lost.
        let (start, end) = segment_byte_spans(&buf).unwrap()[0];
        buf[(start + end) / 2] ^= 0x20;
        match read_newslink_index(&g, &mut &buf[..]) {
            Err(PersistError::ChecksumMismatch { what, .. }) => assert_eq!(what, "segment 0"),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        let (back, report) = read_newslink_index_tolerant(&g, &mut &buf[..]).unwrap();
        assert_eq!(report.quarantined_segments, 1);
        assert_eq!(report.segments_loaded, 2);
        assert!(back.locate(DocId(0)).is_none(), "doc 0 was quarantined");
        assert!(back.locate(DocId(1)).is_some());
        assert!(back.locate(DocId(2)).is_some());
    }

    #[test]
    fn v4_directory_and_footer_damage_are_fatal_even_tolerant() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let mut buf = Vec::new();
        write_newslink_index(&idx, &g, &mut buf).unwrap();
        // Flip a byte inside the directory (between the last section's
        // end and the footer).
        let spans = segment_byte_spans(&buf).unwrap();
        let dir_start = buf.len() - FOOTER_BYTES - spans.len() * DIR_ENTRY_BYTES;
        let mut dirty = buf.clone();
        dirty[dir_start + 3] ^= 0x01;
        match read_newslink_index_tolerant(&g, &mut &dirty[..]) {
            Err(PersistError::ChecksumMismatch { what, .. }) => {
                assert_eq!(what, "segment directory")
            }
            other => panic!("expected directory ChecksumMismatch, got {other:?}"),
        }
        // Mangle the footer magic: the file no longer parses at all.
        let mut nofoot = buf.clone();
        let at = nofoot.len() - 1;
        nofoot[at] = b'X';
        assert!(matches!(
            read_newslink_index_tolerant(&g, &mut &nofoot[..]),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn v3_snapshot_migrates_forward_through_version_dispatch() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mut idx = index_corpus(&g, &li, &cfg, DOCS);
        idx.delete(DocId(1));
        let mut v3 = Vec::new();
        write_newslink_index_v3(&idx, &g, &mut v3).unwrap();
        assert_eq!(v3[4], VERSION_V3);
        // The default reader dispatches on the version byte.
        let back = read_newslink_index(&g, &mut &v3[..]).unwrap();
        assert_search_parity(&g, &li, &cfg, &idx, &back);
        // Re-saving produces v4; reloading preserves behaviour bit-exactly.
        let mut v4 = Vec::new();
        write_newslink_index(&back, &g, &mut v4).unwrap();
        assert_eq!(v4[4], VERSION);
        let again = read_newslink_index(&g, &mut &v4[..]).unwrap();
        assert_eq!(again.tombstone_count(), 1);
        assert_search_parity(&g, &li, &cfg, &idx, &again);
    }

    #[test]
    fn v4_load_from_mapping_is_zero_copy_and_bit_identical() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(2);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        let dir = std::env::temp_dir().join(format!(
            "newslink_persist_v4map_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.nlnk");
        save_newslink_index(&idx, &g, &path).unwrap();

        let heap_bytes = Bytes::from_vec(std::fs::read(&path).unwrap());
        let (heap_idx, _) = read_newslink_index_bytes(&g, &heap_bytes, false).unwrap();
        let map = std::sync::Arc::new(
            newslink_util::Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap(),
        );
        let mapped_bytes = Bytes::from_mmap(map);
        let (mapped_idx, report) = read_newslink_index_bytes(&g, &mapped_bytes, true).unwrap();
        assert!(!report.degraded());
        // Posting data stays in the mapping: only block metadata is on
        // the process heap.
        let mapped_heap: usize = mapped_idx
            .segments()
            .iter()
            .map(|s| s.bow().postings_heap_bytes() + s.bon().postings_heap_bytes())
            .sum();
        let owned_heap: usize = heap_idx
            .segments()
            .iter()
            .map(|s| s.bow().postings_heap_bytes() + s.bon().postings_heap_bytes())
            .sum();
        assert!(
            mapped_heap < owned_heap,
            "mapped load must not copy posting data ({mapped_heap} vs {owned_heap})"
        );
        assert_search_parity(&g, &li, &cfg, &idx, &mapped_idx);
        assert_search_parity(&g, &li, &cfg, &heap_idx, &mapped_idx);
        std::fs::remove_dir_all(&dir).ok();
    }
}
