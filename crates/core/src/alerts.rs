//! Standing-query news alerts (percolation).
//!
//! The inverse of search: journalists register *standing queries* ("tell
//! me about Taliban activity near Khyber") and every incoming article is
//! matched against all subscriptions as it arrives — Elasticsearch's
//! percolator, with NewsLink's twist that matching uses *both* text
//! containment and subgraph-embedding overlap, so an article about Kunar
//! can trigger a Khyber subscription through the KG even with zero word
//! overlap.
//!
//! Because subscriptions are matched per document (no corpus statistics),
//! the two signals are containment fractions in `[0, 1]`:
//!
//! ```text
//! match(q, d) = (1-β) · |terms(q) ∩ terms(d)| / |terms(q)|
//!             +    β  · |nodes(q) ∩ nodes(d)| / |nodes(q)|
//! ```

use newslink_embed::DocEmbedding;
use newslink_kg::{KnowledgeGraph, LabelIndex, NodeId};
use newslink_util::FxHashSet;

use crate::config::NewsLinkConfig;
use crate::indexer::embed_one;

/// A registered standing query.
#[derive(Debug)]
struct Subscription {
    id: u64,
    terms: FxHashSet<String>,
    nodes: FxHashSet<NodeId>,
    threshold: f64,
}

/// One triggered subscription for a document.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertMatch {
    /// The subscription that fired.
    pub subscription: u64,
    /// The blended containment score (≥ the subscription's threshold).
    pub score: f64,
}

/// The percolator: standing queries matched against incoming documents.
pub struct AlertRegistry<'g> {
    graph: &'g KnowledgeGraph,
    label_index: &'g LabelIndex,
    config: NewsLinkConfig,
    subscriptions: Vec<Subscription>,
    next_id: u64,
}

impl<'g> AlertRegistry<'g> {
    /// Create an empty registry; `config.beta` weighs embedding overlap
    /// against text overlap exactly as in search.
    pub fn new(graph: &'g KnowledgeGraph, label_index: &'g LabelIndex, config: NewsLinkConfig) -> Self {
        Self {
            graph,
            label_index,
            config,
            subscriptions: Vec::new(),
            next_id: 0,
        }
    }

    /// Register a standing query; `threshold ∈ [0, 1]` is the minimum
    /// blended containment for the alert to fire. Returns the
    /// subscription id.
    pub fn subscribe(&mut self, query: &str, threshold: f64) -> u64 {
        let artifacts = embed_one(self.graph, self.label_index, &self.config, query);
        let id = self.next_id;
        self.next_id += 1;
        self.subscriptions.push(Subscription {
            id,
            terms: artifacts.analysis.terms.iter().cloned().collect(),
            nodes: artifacts.embedding.all_nodes().into_iter().collect(),
            threshold: threshold.clamp(0.0, 1.0),
        });
        id
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        let before = self.subscriptions.len();
        self.subscriptions.retain(|s| s.id != id);
        self.subscriptions.len() != before
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// True when no subscriptions are registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Blended containment of a subscription in a document.
    fn score(
        &self,
        sub: &Subscription,
        doc_terms: &FxHashSet<String>,
        doc_nodes: &FxHashSet<NodeId>,
    ) -> f64 {
        let beta = self.config.beta;
        let bow = if sub.terms.is_empty() {
            0.0
        } else {
            sub.terms.intersection(doc_terms).count() as f64 / sub.terms.len() as f64
        };
        let bon = if sub.nodes.is_empty() {
            0.0
        } else {
            sub.nodes.intersection(doc_nodes).count() as f64 / sub.nodes.len() as f64
        };
        (1.0 - beta) * bow + beta * bon
    }

    /// Match one incoming document against every subscription; fired
    /// alerts are returned best-score first (ties: lower subscription id).
    pub fn match_document(&self, text: &str) -> (Vec<AlertMatch>, DocEmbedding) {
        let artifacts = embed_one(self.graph, self.label_index, &self.config, text);
        let doc_terms: FxHashSet<String> = artifacts.analysis.terms.iter().cloned().collect();
        let doc_nodes: FxHashSet<NodeId> = artifacts.embedding.all_nodes().into_iter().collect();
        let mut fired: Vec<AlertMatch> = self
            .subscriptions
            .iter()
            .filter_map(|sub| {
                let score = self.score(sub, &doc_terms, &doc_nodes);
                (score >= sub.threshold && score > 0.0).then_some(AlertMatch {
                    subscription: sub.id,
                    score,
                })
            })
            .collect();
        fired.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.subscription.cmp(&b.subscription))
        });
        (fired, artifacts.embedding)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn matching_document_fires_alert() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        let id = reg.subscribe("Taliban attack in Khyber", 0.4);
        let (fired, _) = reg.match_document("Taliban forces attack a post near Khyber today.");
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].subscription, id);
        assert!(fired[0].score >= 0.4);
    }

    #[test]
    fn unrelated_document_does_not_fire() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        reg.subscribe("Taliban attack in Khyber", 0.4);
        let (fired, _) = reg.match_document("The annual flower festival drew record crowds.");
        assert!(fired.is_empty());
    }

    #[test]
    fn kg_overlap_triggers_without_word_overlap() {
        let (g, li) = world();
        // β = 1: pure embedding matching. The subscription mentions
        // Khyber; the article mentions only Kunar and Taliban — but their
        // G* runs through Khyber.
        let mut reg = AlertRegistry::new(
            &g,
            &li,
            NewsLinkConfig::default().with_beta(1.0),
        );
        let id = reg.subscribe("Trouble around Khyber and Taliban", 0.3);
        let (fired, _) = reg.match_document("Taliban militants swept through Kunar overnight.");
        assert_eq!(fired.len(), 1, "KG context must bridge the vocabulary gap");
        assert_eq!(fired[0].subscription, id);
    }

    #[test]
    fn threshold_controls_firing() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        reg.subscribe("Taliban Khyber Pakistan offensive shelling", 0.95);
        // Partial match: only some terms present — below 0.95.
        let (fired, _) = reg.match_document("Taliban moved toward Khyber.");
        assert!(fired.is_empty());
    }

    #[test]
    fn multiple_subscriptions_rank_by_score() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        let loose = reg.subscribe("Taliban", 0.1);
        let tight = reg.subscribe("Taliban attack Khyber", 0.1);
        let (fired, _) = reg.match_document("Taliban attack near Khyber intensified.");
        assert_eq!(fired.len(), 2);
        // The fully-contained subscription scores at least as high.
        let scores: std::collections::HashMap<u64, f64> =
            fired.iter().map(|m| (m.subscription, m.score)).collect();
        assert!(scores[&loose] > 0.0);
        assert!(scores[&tight] > 0.0);
    }

    #[test]
    fn unsubscribe_stops_alerts() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        let id = reg.subscribe("Taliban", 0.1);
        assert_eq!(reg.len(), 1);
        assert!(reg.unsubscribe(id));
        assert!(!reg.unsubscribe(id));
        assert!(reg.is_empty());
        let (fired, _) = reg.match_document("Taliban statement released.");
        assert!(fired.is_empty());
    }

    #[test]
    fn empty_query_never_fires() {
        let (g, li) = world();
        let mut reg = AlertRegistry::new(&g, &li, NewsLinkConfig::default());
        reg.subscribe("", 0.0);
        let (fired, _) = reg.match_document("Taliban attack near Khyber.");
        assert!(fired.is_empty(), "empty subscription must not fire on score 0");
    }
}
