//! The user-facing NewsLink facade.
//!
//! Wires together the NLP, NE and NS components (Figure 2 of the paper)
//! behind one handle. Typical use:
//!
//! ```
//! use newslink_core::{NewsLink, NewsLinkConfig};
//! use newslink_kg::{synth, LabelIndex, SynthConfig};
//!
//! let world = synth::generate(&SynthConfig::small(7));
//! let labels = LabelIndex::build(&world.graph);
//! let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
//!
//! let docs = vec!["Some news text mentioning entities.".to_string()];
//! let index = engine.index_corpus(&docs);
//! let outcome = engine.search(&index, "entities in the news", 5);
//! for hit in &outcome.results {
//!     println!("doc {} scored {:.3}", hit.doc.0, hit.score);
//! }
//! ```

use std::time::Instant;

use newslink_embed::{bon_terms, DocEmbedding, RelationshipPath};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::DocId;
use newslink_util::ComponentTimer;

use crate::api::{BatchResponse, Explanation, QueryCacheInfo, SearchRequest, SearchResponse};
use crate::cache::{EngineCacheStats, EngineCaches};
use crate::config::NewsLinkConfig;
use crate::indexer::{embed_one_with, index_corpus_with, NewsLinkIndex};
use crate::persist::PersistError;
use crate::searcher::{analyze_query_text, explain, parallel_map, run_query, QueryOutcome};
use crate::segment::IndexSegment;

/// The query-side artifacts a scatter-gather router needs: the analyzed
/// BOW terms, the BON node terms derived from the query embedding, and
/// the embedding itself. Both term sequences are in their canonical
/// order — shards rebuild their query-term maps from these exact
/// sequences, which is what keeps the per-document float accumulation
/// order (and therefore every score bit) identical to an in-process
/// search.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Analyzed word terms (the BOW side's query).
    pub terms: Vec<String>,
    /// Node terms of the query embedding (the BON side's query).
    pub bon_terms: Vec<String>,
    /// The query's own subgraph embedding (drives explanations).
    pub embedding: DocEmbedding,
    /// NLP/NE latency of this analysis (zero-duration on a memo hit).
    pub timer: ComponentTimer,
    /// How the engine's caches served the analysis.
    pub cache: QueryCacheInfo,
}

/// The NewsLink engine: borrow a KG and its label index, hold a config
/// plus the shared traversal/embedding caches every entry point consults.
pub struct NewsLink<'g> {
    graph: &'g KnowledgeGraph,
    label_index: &'g LabelIndex,
    config: NewsLinkConfig,
    caches: Option<EngineCaches>,
}

impl<'g> NewsLink<'g> {
    /// Create an engine over `graph`.
    pub fn new(graph: &'g KnowledgeGraph, label_index: &'g LabelIndex, config: NewsLinkConfig) -> Self {
        let caches = EngineCaches::from_config(&config.cache);
        Self {
            graph,
            label_index,
            config,
            caches,
        }
    }

    /// Create an engine with [`StoreOptions`] overrides applied over
    /// `config` (storage backend selection happens where the snapshot
    /// is opened: [`DurableStore::open_with`] takes the same options).
    ///
    /// [`StoreOptions`]: crate::reader::StoreOptions
    /// [`DurableStore::open_with`]: crate::store::DurableStore::open_with
    pub fn open_with(
        graph: &'g KnowledgeGraph,
        label_index: &'g LabelIndex,
        config: NewsLinkConfig,
        options: &crate::reader::StoreOptions,
    ) -> Self {
        Self::new(graph, label_index, options.apply(config))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &NewsLinkConfig {
        &self.config
    }

    /// The underlying knowledge graph.
    pub fn graph(&self) -> &'g KnowledgeGraph {
        self.graph
    }

    /// The label index.
    pub fn label_index(&self) -> &'g LabelIndex {
        self.label_index
    }

    /// Embed and index a corpus (the *index building* half of the NS
    /// component). Recurring entity groups are served by the engine's
    /// shared embedding cache; the returned index's
    /// [`cache_stats`](NewsLinkIndex::cache_stats) records this run's
    /// share of that activity.
    pub fn index_corpus<S: AsRef<str> + Sync>(&self, texts: &[S]) -> NewsLinkIndex {
        index_corpus_with(
            self.graph,
            self.label_index,
            &self.config,
            self.caches.as_ref().map(|c| &c.embed),
            texts,
        )
    }

    /// Embed and index this engine's stripe of a corpus: documents whose
    /// position `i` satisfies `i % shard_count == shard` are indexed
    /// under their *global* id `i`, and the index's id allocator mints
    /// only ids on that stripe afterwards. The union of every shard's
    /// stripe over the same corpus covers exactly the documents (and
    /// ids) of a single [`index_corpus`](Self::index_corpus) build.
    pub fn index_corpus_sharded<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        shard: u32,
        shard_count: u32,
    ) -> NewsLinkIndex {
        crate::indexer::index_corpus_sharded(
            self.graph,
            self.label_index,
            &self.config,
            self.caches.as_ref().map(|c| &c.embed),
            texts,
            shard,
            shard_count,
        )
    }

    /// Run only the query-side NLP + NE stages (no index needed): the
    /// analysis a scatter-gather router performs once and ships to every
    /// shard. Served from the engine's query memo when possible, exactly
    /// like [`search`](Self::search).
    pub fn analyze_query(&self, query_text: &str) -> QueryAnalysis {
        let mut timer = ComponentTimer::new();
        let mut cache = QueryCacheInfo {
            enabled: self.caches.is_some(),
            query_hit: false,
        };
        let (terms, embedding) = analyze_query_text(
            self.graph,
            self.label_index,
            &self.config,
            self.caches.as_ref(),
            query_text,
            &mut timer,
            &mut cache,
        );
        QueryAnalysis {
            terms,
            bon_terms: bon_terms(&embedding),
            embedding,
            timer,
            cache,
        }
    }

    /// Embed and append one document to a built index, sealing it as a
    /// single-document segment and compacting adjacent small segments
    /// back under `config.max_segments`. Returns the new document's
    /// stable id (never a reused one). Results afterwards are
    /// bit-identical to rebuilding the index over the enlarged corpus.
    pub fn insert_document(&self, index: &mut NewsLinkIndex, text: &str) -> DocId {
        let artifacts = embed_one_with(
            self.graph,
            self.label_index,
            &self.config,
            self.caches.as_ref().map(|c| &c.embed),
            text,
        );
        index
            .timer
            .record("nlp", std::time::Duration::from_nanos(artifacts.nlp_nanos));
        index
            .timer
            .record("ne", std::time::Duration::from_nanos(artifacts.ne_nanos));
        index.match_stats.identified += artifacts.analysis.stats.identified;
        index.match_stats.matched += artifacts.analysis.stats.matched;
        if !artifacts.embedding.is_empty() {
            index.embedded_docs += 1;
        }
        let id = index.reserve_id();
        let segment = IndexSegment::build(vec![(id.0, artifacts)]);
        index.install_segment(segment);
        index.compact_to(self.config.max_segments);
        id
    }

    /// Tombstone one document in a built index (physically expunged by a
    /// later compaction). Returns `false` for unknown or already deleted
    /// ids.
    pub fn delete_document(&self, index: &mut NewsLinkIndex, doc: DocId) -> bool {
        index.delete(doc)
    }

    /// Re-apply one write-ahead-log record to `index` during crash
    /// recovery. Returns `Ok(true)` when the record mutated the index
    /// and `Ok(false)` when it was already reflected — replay is
    /// idempotent, so a checkpoint that crashed between writing its
    /// snapshot and resetting the log is harmless.
    ///
    /// Inserts re-embed the logged text; embedding is deterministic
    /// given the graph and config, so the replayed index is
    /// bit-identical to the pre-crash one. An insert whose id is below
    /// the allocator is already in the snapshot and is skipped; one
    /// whose id is *above* it fast-forwards the allocator first (ids in
    /// between belonged to mutations that were never acknowledged). If
    /// the insert lands on a different id than the log recorded —
    /// possible only if id allocation changes between the run that wrote
    /// the log and this one — replay fails with
    /// [`PersistError::ReplayDiverged`] rather than silently building an
    /// index whose ids disagree with every later logged delete.
    pub fn replay_wal(
        &self,
        index: &mut NewsLinkIndex,
        record: &crate::wal::WalRecord,
    ) -> Result<bool, PersistError> {
        match record {
            crate::wal::WalRecord::Insert { id, text } => {
                if *id < index.next_id {
                    return Ok(false);
                }
                index.next_id = *id;
                let got = self.insert_document(index, text);
                if got.0 != *id {
                    return Err(PersistError::ReplayDiverged {
                        logged: *id,
                        got: got.0,
                    });
                }
                Ok(true)
            }
            crate::wal::WalRecord::Delete { id } => Ok(index.delete(DocId(*id))),
        }
    }

    /// Blended top-k search (the *query processing* half), through the
    /// engine caches. Equivalent to
    /// `execute(index, &SearchRequest::new(query).with_k(k))` minus the
    /// response envelope.
    pub fn search(&self, index: &NewsLinkIndex, query: &str, k: usize) -> QueryOutcome {
        run_query(
            self.graph,
            self.label_index,
            &self.config,
            index,
            self.caches.as_ref(),
            query,
            k,
            None,
            None,
        )
    }

    /// Execute one declarative [`SearchRequest`].
    ///
    /// A request [`timeout_ms`](SearchRequest::timeout_ms) budget starts
    /// counting here. It is checked between pipeline stages (after
    /// NLP + NE, and again before explanations): on expiry the response
    /// carries [`timed_out`](SearchResponse::timed_out) plus whatever the
    /// finished stages produced — the timer doubles as a partial report
    /// of where the budget went.
    pub fn execute(&self, index: &NewsLinkIndex, request: &SearchRequest) -> SearchResponse {
        let deadline = request
            .timeout_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        let caches = if request.use_cache {
            self.caches.as_ref()
        } else {
            None
        };
        let outcome = run_query(
            self.graph,
            self.label_index,
            &self.config,
            index,
            caches,
            &request.query,
            request.k,
            request.beta,
            deadline,
        );
        let mut timed_out = outcome.timed_out;
        let explanations = match request.explain {
            // Explanations are the most expensive optional stage; a spent
            // budget skips them but keeps the ranked results.
            Some(_) if deadline.is_some_and(|d| Instant::now() >= d) => {
                timed_out = true;
                Vec::new()
            }
            Some(opts) => outcome
                .results
                .iter()
                .map(|r| Explanation {
                    doc: r.doc,
                    paths: explain(index, &outcome.embedding, r.doc, opts.max_len, opts.max_paths),
                })
                .collect(),
            None => Vec::new(),
        };
        SearchResponse {
            results: outcome.results,
            embedding: outcome.embedding,
            timer: outcome.timer,
            cache: outcome.cache,
            explanations,
            timed_out,
            prune: outcome.prune,
            parallel: outcome.parallel,
        }
    }

    /// Execute many requests, in parallel per `config.threads` (0 = match
    /// the machine). Responses preserve input order; the batch timer
    /// aggregates every per-query component timer plus a `"batch"` entry
    /// for the whole call's wall-clock.
    pub fn execute_batch(&self, index: &NewsLinkIndex, requests: &[SearchRequest]) -> BatchResponse {
        let t0 = Instant::now();
        let threads = self.config.effective_threads(requests.len());
        let responses = parallel_map(requests, threads, |r| self.execute(index, r));
        let mut timer = ComponentTimer::new();
        for response in &responses {
            timer.merge(&response.timer);
        }
        timer.record("batch", t0.elapsed());
        BatchResponse { responses, timer }
    }

    /// Counter snapshot of every cache tier (all zeros when caching is
    /// disabled).
    pub fn cache_stats(&self) -> EngineCacheStats {
        self.caches
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Drop all cached entries (counters survive; capacity is unchanged).
    pub fn clear_caches(&self) {
        if let Some(c) = &self.caches {
            c.clear();
        }
    }

    /// Relationship-path explanations for one result.
    pub fn explain(
        &self,
        index: &NewsLinkIndex,
        query_embedding: &DocEmbedding,
        doc: DocId,
        max_len: usize,
        max_paths: usize,
    ) -> Vec<RelationshipPath> {
        explain(index, query_embedding, doc, max_len, max_paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{synth, SynthConfig};

    #[test]
    fn end_to_end_on_synthetic_world() {
        let world = synth::generate(&SynthConfig::small(3));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());

        // Two documents about the same country.
        let country = world.graph.label(world.countries[0]);
        let city = world.graph.label(world.cities[0]);
        let docs = vec![
            format!("Tensions rose in {country} as officials met in {city}."),
            format!("A festival in {city} drew visitors from across {country}."),
            "Completely unrelated filler text with no entity names.".to_string(),
        ];
        let index = engine.index_corpus(&docs);
        assert_eq!(index.doc_count(), 3);

        let outcome = engine.search(&index, &format!("News about {country}."), 3);
        assert!(!outcome.results.is_empty());
        let top = outcome.results[0].doc;
        assert!(top.0 < 2, "entity-bearing docs must rank above filler");
    }

    #[test]
    fn execute_matches_search_and_reports_cache_activity() {
        let world = synth::generate(&SynthConfig::small(5));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
        let country = world.graph.label(world.countries[0]);
        let docs = vec![
            format!("Officials from {country} signed the accord."),
            format!("Protests spread across {country} overnight."),
        ];
        let index = engine.index_corpus(&docs);
        assert!(index.cache_stats.lookups() > 0, "indexing must exercise the cache");

        let query = format!("latest news from {country}");
        let request = SearchRequest::new(&query).with_k(5);
        let cold = engine.execute(&index, &request);
        assert!(cold.cache.enabled && !cold.cache.query_hit);
        let warm = engine.execute(&index, &request);
        assert!(warm.cache.query_hit, "repeat request must hit the query memo");
        assert_eq!(warm.results, cold.results);
        assert_eq!(warm.results, engine.search(&index, &query, 5).results);

        let stats = engine.cache_stats();
        assert!(stats.queries.hits >= 1);
        assert!(stats.combined().lookups() > 0);

        // Bypassing the cache still returns identical results.
        let bypass = engine.execute(&index, &request.clone().without_cache());
        assert!(!bypass.cache.enabled);
        assert_eq!(bypass.results, cold.results);

        engine.clear_caches();
        assert_eq!(engine.cache_stats().queries.entries, 0);
        let after_clear = engine.execute(&index, &request);
        assert!(!after_clear.cache.query_hit);
        assert_eq!(after_clear.results, cold.results);
    }

    #[test]
    fn execute_batch_aggregates_and_explains() {
        let world = synth::generate(&SynthConfig::small(6));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(
            &world.graph,
            &labels,
            NewsLinkConfig::default().with_threads(2),
        );
        let country = world.graph.label(world.countries[0]);
        let city = world.graph.label(world.cities[0]);
        let docs = vec![
            format!("Tensions rose in {country} as officials met in {city}."),
            format!("A festival in {city} drew visitors from {country}."),
        ];
        let index = engine.index_corpus(&docs);
        let requests = vec![
            crate::api::SearchRequest::new(format!("news about {country}")).explained(),
            crate::api::SearchRequest::new(format!("events in {city}")).with_beta(1.0),
            crate::api::SearchRequest::new(format!("news about {country}")).explained(),
        ];
        let batch = engine.execute_batch(&index, &requests);
        assert_eq!(batch.responses.len(), 3);
        assert_eq!(batch.timer.count("batch"), 1);
        assert_eq!(batch.timer.count("nlp"), 3);
        // Explained requests carry one explanation per result.
        for r in [&batch.responses[0], &batch.responses[2]] {
            assert_eq!(r.explanations.len(), r.results.len());
        }
        assert!(batch.responses[1].explanations.is_empty());
        // β-override request used pure BON.
        for hit in &batch.responses[1].results {
            assert_eq!(hit.bow, 0.0);
        }
    }

    #[test]
    fn zero_budget_times_out_with_partial_timer() {
        let world = synth::generate(&SynthConfig::small(9));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
        let country = world.graph.label(world.countries[0]);
        let docs = vec![format!("A summit was held in {country}.")];
        let index = engine.index_corpus(&docs);
        let query = format!("summit {country}");

        // Zero budget: NLP + NE run, the gate before scoring fires.
        let strict = SearchRequest::new(&query)
            .explained()
            .with_timeout(std::time::Duration::ZERO);
        let out = engine.execute(&index, &strict);
        assert!(out.timed_out);
        assert!(out.results.is_empty() && out.explanations.is_empty());
        assert_eq!(out.timer.count("nlp"), 1);
        assert_eq!(out.timer.count("ns"), 0, "partial report stops at the gate");

        // A generous budget behaves exactly like no deadline.
        let relaxed = SearchRequest::new(&query)
            .explained()
            .with_timeout(std::time::Duration::from_secs(3600));
        let ok = engine.execute(&index, &relaxed);
        assert!(!ok.timed_out);
        let unbounded = engine.execute(&index, &SearchRequest::new(&query).explained());
        assert_eq!(ok.results, unbounded.results);
        assert_eq!(ok.explanations.len(), ok.results.len());

        // Batches surface the per-request flags.
        let batch = engine.execute_batch(&index, &[strict, relaxed]);
        assert_eq!(batch.timed_out(), 1);
    }

    #[test]
    fn insert_and_delete_mutate_a_built_index() {
        let world = synth::generate(&SynthConfig::small(8));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
        let country = world.graph.label(world.countries[0]);
        let city = world.graph.label(world.cities[0]);
        let docs = vec![
            format!("Officials from {country} signed the accord."),
            format!("A festival in {city} drew visitors."),
        ];
        let mut index = engine.index_corpus(&docs);
        assert_eq!(index.doc_count(), 2);

        let extra = format!("Protests spread across {country} overnight.");
        let id = engine.insert_document(&mut index, &extra);
        assert_eq!(id.0, 2, "fresh id after the build");
        assert_eq!(index.doc_count(), 3);
        assert!(index.segment_count() <= engine.config().max_segments);

        // The mutated index scores exactly like a fresh build of the same
        // three documents.
        let full_docs = vec![docs[0].clone(), docs[1].clone(), extra.clone()];
        let rebuilt = engine.index_corpus(&full_docs);
        let q = format!("news about {country}");
        let a = engine.search(&index, &q, 5);
        let b = engine.search(&rebuilt, &q, 5);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }

        // Deletion hides the doc immediately and compaction expunges it.
        assert!(engine.delete_document(&mut index, id));
        assert!(!engine.delete_document(&mut index, id));
        assert_eq!(index.doc_count(), 2);
        let after = engine.search(&index, &q, 5);
        assert!(after.results.iter().all(|r| r.doc != id));
        index.compact();
        assert_eq!(index.tombstone_count(), 0);
        let compacted = engine.search(&index, &q, 5);
        let baseline = engine.search(&engine.index_corpus(&docs), &q, 5);
        assert_eq!(compacted.results.len(), baseline.results.len());
        for (x, y) in compacted.results.iter().zip(&baseline.results) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn disabled_cache_engine_still_works() {
        let world = synth::generate(&SynthConfig::small(7));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(
            &world.graph,
            &labels,
            NewsLinkConfig::default().without_cache(),
        );
        let country = world.graph.label(world.countries[0]);
        let docs = vec![format!("A summit was held in {country}.")];
        let index = engine.index_corpus(&docs);
        assert_eq!(index.cache_stats.lookups(), 0);
        let out = engine.execute(&index, &SearchRequest::new(format!("summit {country}")));
        assert!(!out.cache.enabled);
        assert_eq!(engine.cache_stats(), Default::default());
    }

    #[test]
    fn accessors_expose_parts() {
        let world = synth::generate(&SynthConfig::small(4));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
        assert_eq!(engine.config().beta, 0.2);
        assert_eq!(
            engine.graph().node_count(),
            world.graph.node_count()
        );
        assert!(!engine.label_index().is_empty());
    }
}
