//! The user-facing NewsLink facade.
//!
//! Wires together the NLP, NE and NS components (Figure 2 of the paper)
//! behind one handle. Typical use:
//!
//! ```
//! use newslink_core::{NewsLink, NewsLinkConfig};
//! use newslink_kg::{synth, LabelIndex, SynthConfig};
//!
//! let world = synth::generate(&SynthConfig::small(7));
//! let labels = LabelIndex::build(&world.graph);
//! let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
//!
//! let docs = vec!["Some news text mentioning entities.".to_string()];
//! let index = engine.index_corpus(&docs);
//! let outcome = engine.search(&index, "entities in the news", 5);
//! for hit in &outcome.results {
//!     println!("doc {} scored {:.3}", hit.doc.0, hit.score);
//! }
//! ```

use newslink_embed::{DocEmbedding, RelationshipPath};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::DocId;

use crate::config::NewsLinkConfig;
use crate::indexer::{index_corpus, NewsLinkIndex};
use crate::searcher::{explain, search, QueryOutcome};

/// The NewsLink engine: borrow a KG and its label index, hold a config.
pub struct NewsLink<'g> {
    graph: &'g KnowledgeGraph,
    label_index: &'g LabelIndex,
    config: NewsLinkConfig,
}

impl<'g> NewsLink<'g> {
    /// Create an engine over `graph`.
    pub fn new(graph: &'g KnowledgeGraph, label_index: &'g LabelIndex, config: NewsLinkConfig) -> Self {
        Self {
            graph,
            label_index,
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &NewsLinkConfig {
        &self.config
    }

    /// The underlying knowledge graph.
    pub fn graph(&self) -> &'g KnowledgeGraph {
        self.graph
    }

    /// The label index.
    pub fn label_index(&self) -> &'g LabelIndex {
        self.label_index
    }

    /// Embed and index a corpus (the *index building* half of the NS
    /// component).
    pub fn index_corpus<S: AsRef<str> + Sync>(&self, texts: &[S]) -> NewsLinkIndex {
        index_corpus(self.graph, self.label_index, &self.config, texts)
    }

    /// Blended top-k search (the *query processing* half).
    pub fn search(&self, index: &NewsLinkIndex, query: &str, k: usize) -> QueryOutcome {
        search(self.graph, self.label_index, &self.config, index, query, k)
    }

    /// Relationship-path explanations for one result.
    pub fn explain(
        &self,
        index: &NewsLinkIndex,
        query_embedding: &DocEmbedding,
        doc: DocId,
        max_len: usize,
        max_paths: usize,
    ) -> Vec<RelationshipPath> {
        explain(index, query_embedding, doc, max_len, max_paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{synth, SynthConfig};

    #[test]
    fn end_to_end_on_synthetic_world() {
        let world = synth::generate(&SynthConfig::small(3));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());

        // Two documents about the same country.
        let country = world.graph.label(world.countries[0]);
        let city = world.graph.label(world.cities[0]);
        let docs = vec![
            format!("Tensions rose in {country} as officials met in {city}."),
            format!("A festival in {city} drew visitors from across {country}."),
            "Completely unrelated filler text with no entity names.".to_string(),
        ];
        let index = engine.index_corpus(&docs);
        assert_eq!(index.doc_count(), 3);

        let outcome = engine.search(&index, &format!("News about {country}."), 3);
        assert!(!outcome.results.is_empty());
        let top = outcome.results[0].doc;
        assert!(top.0 < 2, "entity-bearing docs must rank above filler");
    }

    #[test]
    fn accessors_expose_parts() {
        let world = synth::generate(&SynthConfig::small(4));
        let labels = LabelIndex::build(&world.graph);
        let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
        assert_eq!(engine.config().beta, 0.2);
        assert_eq!(
            engine.graph().node_count(),
            world.graph.node_count()
        );
        assert!(!engine.label_index().is_empty());
    }
}
