//! Engine-level caches shared by indexing and search.
//!
//! [`EngineCaches`] bundles the two cache layers a [`crate::NewsLink`]
//! engine owns:
//!
//! - the `newslink-embed` [`EmbeddingCache`] (group memo + shared
//!   distance maps), consulted by every per-document and per-query
//!   embedding, from `index_corpus` worker threads and `search_batch`
//!   scoped threads alike;
//! - a query memo mapping the raw query string to its finished NLP + NE
//!   artifacts, so a repeated query skips both components entirely.
//!
//! Everything keys on frozen-graph state plus the engine's fixed
//! `SearchConfig`/model, so hits are bit-identical to recomputation; the
//! per-request β override only affects score blending, which is never
//! cached.

use std::sync::Arc;

use newslink_embed::{DocEmbedding, EmbeddingCache};
use newslink_kg::ShardedCache;
use newslink_util::CacheStats;

use crate::config::CacheConfig;

/// The cached output of query analysis: exactly the inputs scoring needs.
#[derive(Debug)]
pub(crate) struct QueryArtifacts {
    /// Analyzed BOW terms.
    pub terms: Vec<String>,
    /// The query's subgraph embedding.
    pub embedding: DocEmbedding,
}

/// All caches owned by one engine.
#[derive(Debug)]
pub(crate) struct EngineCaches {
    /// Group memo + distance maps for the NE component.
    pub embed: EmbeddingCache,
    /// Whole-query artifact memo for the engine's search entry points.
    pub query: ShardedCache<String, Arc<QueryArtifacts>>,
}

impl EngineCaches {
    /// Build caches sized by `config`; returns `None` when caching is
    /// disabled so call sites fall through to the uncached paths.
    pub fn from_config(config: &CacheConfig) -> Option<Self> {
        if !config.enabled {
            return None;
        }
        Some(Self {
            embed: EmbeddingCache::new(config.group_capacity, config.distance_capacity),
            query: ShardedCache::new(config.query_capacity),
        })
    }

    /// Snapshot every tier's counters.
    pub fn stats(&self) -> EngineCacheStats {
        EngineCacheStats {
            groups: self.embed.group_stats(),
            distances: self.embed.distance_stats(),
            queries: self.query.stats(),
        }
    }

    /// Drop all cached entries (counters are preserved).
    pub fn clear(&self) {
        self.embed.clear();
        self.query.clear();
    }
}

/// Per-tier counter snapshot of an engine's caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EngineCacheStats {
    /// The `(model, label set) -> G*` memo.
    pub groups: CacheStats,
    /// The shared truncated-Dijkstra distance maps.
    pub distances: CacheStats,
    /// The whole-query artifact memo.
    pub queries: CacheStats,
}

impl EngineCacheStats {
    /// Sum of all tiers, for one-line reporting.
    pub fn combined(&self) -> CacheStats {
        self.groups.merged(&self.distances).merged(&self.queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_builds_no_caches() {
        assert!(EngineCaches::from_config(&CacheConfig::disabled()).is_none());
        assert!(EngineCaches::from_config(&CacheConfig::default()).is_some());
    }

    #[test]
    fn stats_cover_all_tiers() {
        let caches = EngineCaches::from_config(&CacheConfig::default()).unwrap();
        assert!(caches.query.get(&"q".to_string()).is_none());
        let s = caches.stats();
        assert_eq!(s.queries.misses, 1);
        assert_eq!(s.combined().misses, 1);
        caches.clear();
        assert_eq!(caches.stats().queries.entries, 0);
    }
}
