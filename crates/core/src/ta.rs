//! Fagin's Threshold Algorithm (TA) for the blended score of Equation 3.
//!
//! §VI: "we employ existing top-k ranking algorithms \[Threshold Algorithm;
//! VSM\] to retrieve the top-k news documents ranked by Equation 3." The
//! blended score is a monotone aggregation of two sources (BOW and BON),
//! which is exactly TA's setting:
//!
//! 1. *Sorted access* walks both ranked lists in parallel, one position
//!    per round.
//! 2. Every newly seen document is completed by *random access* to the
//!    other source and offered to the top-k heap.
//! 3. The *threshold* `τ = (1-β)·s_bow(depth) + β·s_bon(depth)` bounds the
//!    best possible score of any unseen document; once the k-th best
//!    retained score reaches `τ`, no deeper document can qualify and the
//!    scan stops.
//!
//! The implementation reports its sorted-access depth so tests and benches
//! can verify the early termination that motivates TA.

use newslink_text::DocId;
use newslink_util::{FxHashSet, TopK};

use crate::searcher::SearchResult;

/// Outcome of a TA run.
#[derive(Debug)]
pub struct TaOutcome {
    /// Top-k results, best first.
    pub results: Vec<SearchResult>,
    /// Sorted-access depth reached before the threshold cut off the scan
    /// (the efficiency headline: usually ≪ list lengths).
    pub depth: usize,
}

/// Run TA over two descending-sorted `(doc, score)` lists.
///
/// `bow_probe` / `bon_probe` provide random access for documents not yet
/// seen on the respective list (return 0.0 for absent documents). Both
/// lists must be sorted by score descending; ties in the blended score
/// resolve toward the document seen earlier in the scan.
pub fn threshold_algorithm(
    bow_ranked: &[(DocId, f64)],
    bon_ranked: &[(DocId, f64)],
    bow_probe: impl Fn(DocId) -> f64,
    bon_probe: impl Fn(DocId) -> f64,
    beta: f64,
    k: usize,
) -> TaOutcome {
    debug_assert!(
        bow_ranked.windows(2).all(|w| w[0].1 >= w[1].1),
        "BOW list must be sorted descending"
    );
    debug_assert!(
        bon_ranked.windows(2).all(|w| w[0].1 >= w[1].1),
        "BON list must be sorted descending"
    );
    let mut topk: TopK<(DocId, f64, f64)> = TopK::new(k);
    let mut seen: FxHashSet<DocId> = FxHashSet::default();
    let max_depth = bow_ranked.len().max(bon_ranked.len());
    let mut depth = 0;

    while depth < max_depth {
        // Sorted access: one position on each list.
        for (doc, this_score, other_probe, is_bow) in [
            bow_ranked
                .get(depth)
                .map(|&(d, s)| (d, s, &bon_probe as &dyn Fn(DocId) -> f64, true)),
            bon_ranked
                .get(depth)
                .map(|&(d, s)| (d, s, &bow_probe as &dyn Fn(DocId) -> f64, false)),
        ]
        .into_iter()
        .flatten()
        {
            if !seen.insert(doc) {
                continue;
            }
            let other = other_probe(doc);
            let (bow, bon) = if is_bow {
                (this_score, other)
            } else {
                (other, this_score)
            };
            let score = (1.0 - beta) * bow + beta * bon;
            if score > 0.0 {
                topk.push(score, (doc, bow, bon));
            }
        }
        depth += 1;

        // Threshold: the best blended score any unseen document can have.
        let s_bow = bow_ranked.get(depth).map_or(0.0, |&(_, s)| s);
        let s_bon = bon_ranked.get(depth).map_or(0.0, |&(_, s)| s);
        let tau = (1.0 - beta) * s_bow + beta * s_bon;
        if topk.len() >= k {
            if let Some(kth) = topk.threshold() {
                if kth >= tau {
                    break;
                }
            }
        }
        if tau <= 0.0 {
            break;
        }
    }

    let results = topk
        .into_sorted()
        .into_iter()
        .map(|(score, (doc, bow, bon))| SearchResult {
            doc,
            score,
            bow,
            bon,
        })
        .collect();
    TaOutcome { results, depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_util::FxHashMap;

    type RankedList = Vec<(DocId, f64)>;
    type ScoreMap = FxHashMap<DocId, f64>;

    fn lists(
        bow: &[(u32, f64)],
        bon: &[(u32, f64)],
    ) -> (RankedList, RankedList, ScoreMap, ScoreMap) {
        let bow_l: Vec<(DocId, f64)> = bow.iter().map(|&(d, s)| (DocId(d), s)).collect();
        let bon_l: Vec<(DocId, f64)> = bon.iter().map(|&(d, s)| (DocId(d), s)).collect();
        let bow_m: FxHashMap<DocId, f64> = bow_l.iter().copied().collect();
        let bon_m: FxHashMap<DocId, f64> = bon_l.iter().copied().collect();
        (bow_l, bon_l, bow_m, bon_m)
    }

    fn exhaustive(
        bow: &FxHashMap<DocId, f64>,
        bon: &FxHashMap<DocId, f64>,
        beta: f64,
        k: usize,
    ) -> Vec<(DocId, f64)> {
        let mut docs: Vec<DocId> = bow.keys().chain(bon.keys()).copied().collect();
        docs.sort_unstable();
        docs.dedup();
        let mut scored: Vec<(DocId, f64)> = docs
            .into_iter()
            .map(|d| {
                let s = (1.0 - beta) * bow.get(&d).copied().unwrap_or(0.0)
                    + beta * bon.get(&d).copied().unwrap_or(0.0);
                (d, s)
            })
            .filter(|&(_, s)| s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn matches_exhaustive_blend() {
        let (bow_l, bon_l, bow_m, bon_m) = lists(
            &[(1, 0.9), (2, 0.8), (3, 0.5), (4, 0.2), (5, 0.1)],
            &[(3, 1.0), (6, 0.7), (1, 0.6), (7, 0.3)],
        );
        for beta in [0.0, 0.2, 0.5, 1.0] {
            let ta = threshold_algorithm(
                &bow_l,
                &bon_l,
                |d| bow_m.get(&d).copied().unwrap_or(0.0),
                |d| bon_m.get(&d).copied().unwrap_or(0.0),
                beta,
                3,
            );
            let want = exhaustive(&bow_m, &bon_m, beta, 3);
            assert_eq!(ta.results.len(), want.len(), "beta {beta}");
            for (got, (doc, score)) in ta.results.iter().zip(&want) {
                assert!((got.score - score).abs() < 1e-12, "beta {beta}");
                assert_eq!(got.doc, *doc, "beta {beta}");
            }
        }
    }

    #[test]
    fn early_termination_on_deep_lists() {
        // 1000-entry lists with one dominant document: TA must stop early.
        let bow: Vec<(u32, f64)> = (0..1000u32).map(|i| (i, 1.0 / (i + 1) as f64)).collect();
        let bon: Vec<(u32, f64)> = (0..1000u32).map(|i| (i, 1.0 / (i + 1) as f64)).collect();
        let (bow_l, bon_l, bow_m, bon_m) = lists(&bow, &bon);
        let ta = threshold_algorithm(
            &bow_l,
            &bon_l,
            |d| bow_m.get(&d).copied().unwrap_or(0.0),
            |d| bon_m.get(&d).copied().unwrap_or(0.0),
            0.2,
            5,
        );
        assert_eq!(ta.results.len(), 5);
        assert!(ta.depth < 100, "depth {} should be far below 1000", ta.depth);
        // Results match exhaustive.
        let want = exhaustive(&bow_m, &bon_m, 0.2, 5);
        for (got, (doc, _)) in ta.results.iter().zip(&want) {
            assert_eq!(got.doc, *doc);
        }
    }

    #[test]
    fn disjoint_lists_are_combined() {
        let (bow_l, bon_l, bow_m, bon_m) =
            lists(&[(1, 1.0), (2, 0.4)], &[(3, 1.0), (4, 0.5)]);
        let ta = threshold_algorithm(
            &bow_l,
            &bon_l,
            |d| bow_m.get(&d).copied().unwrap_or(0.0),
            |d| bon_m.get(&d).copied().unwrap_or(0.0),
            0.5,
            4,
        );
        assert_eq!(ta.results.len(), 4);
        let want = exhaustive(&bow_m, &bon_m, 0.5, 4);
        for (got, (doc, _)) in ta.results.iter().zip(&want) {
            assert_eq!(got.doc, *doc);
        }
    }

    #[test]
    fn empty_lists() {
        let ta = threshold_algorithm(&[], &[], |_| 0.0, |_| 0.0, 0.2, 5);
        assert!(ta.results.is_empty());
        assert_eq!(ta.depth, 0);
    }

    #[test]
    fn beta_zero_ignores_bon_list_content() {
        let (bow_l, bon_l, bow_m, bon_m) =
            lists(&[(1, 0.9), (2, 0.5)], &[(9, 1.0), (8, 0.9)]);
        let ta = threshold_algorithm(
            &bow_l,
            &bon_l,
            |d| bow_m.get(&d).copied().unwrap_or(0.0),
            |d| bon_m.get(&d).copied().unwrap_or(0.0),
            0.0,
            2,
        );
        let docs: Vec<u32> = ta.results.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![1, 2]);
    }
}
