//! The NewsLink framework (the paper's primary contribution, §III–§VI).
//!
//! Wires the NLP component (`newslink-nlp`), the NE component
//! (`newslink-embed`) and the NS component (BOW/BON blending over
//! `newslink-text`) into one engine:
//!
//! - [`config`] — β, embedding model, threading, segment sizing;
//! - [`indexer`] — corpus embedding + parallel segment building;
//! - [`segment`] — immutable index segments, tombstones, compaction and
//!   the global-stats scoring overlay;
//! - [`searcher`] — Equation 3 blended scoring, per-segment fan-out,
//!   top-k merge, explanations;
//! - [`directory`] / [`reader`] — the storage seam: named-blob
//!   directories (file-system or in-memory) and heap/mmap snapshot
//!   readers;
//! - [`pipeline`] — the [`NewsLink`] facade.

#![deny(unsafe_code)]

pub mod alerts;
pub mod api;
mod cache;
pub mod config;
pub mod directory;
pub mod indexer;
pub mod live;
pub mod persist;
pub mod pipeline;
pub mod reader;
pub mod score_explain;
pub mod searcher;
pub mod segment;
pub mod store;
pub mod ta;
pub mod wal;

pub use alerts::{AlertMatch, AlertRegistry};
pub use api::{
    BatchResponse, ExplainOptions, Explanation, QueryCacheInfo, SearchRequest, SearchResponse,
};
pub use cache::EngineCacheStats;
pub use config::{CacheConfig, EmbeddingModel, NewsLinkConfig};
pub use indexer::{doc_ids, index_corpus, index_corpus_sharded, index_corpus_with, NewsLinkIndex};
pub use live::{LiveHit, LiveNewsLink};
pub use pipeline::{NewsLink, QueryAnalysis};
pub use score_explain::{explain_score, ScoreExplanation, SideExplanation, TermContribution};
pub use searcher::{explain, search, search_batch, QueryOutcome, SearchResult};
pub use segment::{IndexSegment, IndexStats, Side, SideOverlay};
pub use directory::{Directory, FsDirectory, RamDirectory};
pub use persist::{
    atomic_write_file, load_label_fst, load_newslink_index, load_newslink_index_tolerant,
    read_newslink_index, read_newslink_index_bytes, read_newslink_index_tolerant, save_label_fst,
    save_newslink_index, segment_byte_spans, write_newslink_index, write_newslink_index_v3,
    LoadReport, PersistError, LABEL_FST_BLOB,
};
pub use reader::{HeapSegmentReader, MmapSegmentReader, SegmentReader, StorageBackend, StoreOptions};
pub use store::DurableStore;
pub use ta::{threshold_algorithm, TaOutcome};
pub use wal::{Wal, WalRecord};

/// Document ids are minted by the index; re-exported so downstream
/// crates (serve, cli) can name them without depending on the text crate.
pub use newslink_text::{CollectionStats, DocId, ParallelStats, PruneStats};
