//! The NewsLink framework (the paper's primary contribution, §III–§VI).
//!
//! Wires the NLP component (`newslink-nlp`), the NE component
//! (`newslink-embed`) and the NS component (BOW/BON blending over
//! `newslink-text`) into one engine:
//!
//! - [`config`] — β, embedding model, threading;
//! - [`indexer`] — corpus embedding + dual inverted indexes;
//! - [`searcher`] — Equation 3 blended scoring, top-k, explanations;
//! - [`pipeline`] — the [`NewsLink`] facade.

pub mod alerts;
pub mod api;
mod cache;
pub mod config;
pub mod indexer;
pub mod live;
pub mod persist;
pub mod pipeline;
pub mod score_explain;
pub mod searcher;
pub mod ta;

pub use alerts::{AlertMatch, AlertRegistry};
pub use api::{
    BatchResponse, ExplainOptions, Explanation, QueryCacheInfo, SearchRequest, SearchResponse,
};
pub use cache::EngineCacheStats;
pub use config::{CacheConfig, EmbeddingModel, NewsLinkConfig};
pub use indexer::{index_corpus, index_corpus_with, NewsLinkIndex};
pub use live::{LiveHit, LiveNewsLink};
pub use pipeline::NewsLink;
pub use score_explain::{explain_score, ScoreExplanation, SideExplanation, TermContribution};
pub use searcher::{explain, search, search_batch, QueryOutcome, SearchResult};
pub use persist::{load_newslink_index, read_newslink_index, save_newslink_index, write_newslink_index};
pub use ta::{threshold_algorithm, TaOutcome};
