//! NewsLink configuration.

use newslink_embed::SearchConfig;

/// Which subgraph-embedding model the NE component runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingModel {
    /// The paper's Lowest Common Ancestor Graph `G*` (all shortest paths,
    /// compactness-order optimal root).
    Lcag,
    /// The TreeEmb baseline of §VII-F (Group-Steiner-Tree star
    /// approximation, one path per label).
    Tree,
}

/// End-to-end pipeline configuration.
#[derive(Debug, Clone)]
pub struct NewsLinkConfig {
    /// Equation 3's `β ∈ [0, 1]`: 0 = pure BOW (reduces to Lucene),
    /// 1 = pure BON (subgraph embeddings only). The paper's best setting
    /// is 0.2.
    pub beta: f64,
    /// Subgraph-embedding model.
    pub model: EmbeddingModel,
    /// NE search knobs.
    pub search: SearchConfig,
    /// Worker threads for corpus embedding (1 = serial).
    pub threads: usize,
    /// Normalize BOW/BON score maps by their maxima before blending so β
    /// weights two comparable [0, 1] signals. (The paper blends Lucene
    /// scores; normalization pins the β semantics across index scales.)
    pub normalize_scores: bool,
    /// Rank with Fagin's Threshold Algorithm over the two ranked lists
    /// (the top-k algorithm the paper cites in §VI) instead of exhaustive
    /// union rescoring. Results are identical; TA terminates early.
    pub use_threshold_algorithm: bool,
}

impl Default for NewsLinkConfig {
    fn default() -> Self {
        Self {
            beta: 0.2,
            model: EmbeddingModel::Lcag,
            search: SearchConfig::default(),
            threads: 1,
            normalize_scores: true,
            use_threshold_algorithm: false,
        }
    }
}

impl NewsLinkConfig {
    /// The paper's best setting, `NewsLink(0.2)`.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Set β (clamped to [0, 1]).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta.clamp(0.0, 1.0);
        self
    }

    /// Set the embedding model.
    pub fn with_model(mut self, model: EmbeddingModel) -> Self {
        self.model = model;
        self
    }

    /// Set worker threads (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable Threshold-Algorithm ranking.
    pub fn with_threshold_algorithm(mut self, on: bool) -> Self {
        self.use_threshold_algorithm = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_best() {
        let c = NewsLinkConfig::default();
        assert_eq!(c.beta, 0.2);
        assert_eq!(c.model, EmbeddingModel::Lcag);
        assert!(c.normalize_scores);
    }

    #[test]
    fn beta_is_clamped() {
        assert_eq!(NewsLinkConfig::default().with_beta(2.0).beta, 1.0);
        assert_eq!(NewsLinkConfig::default().with_beta(-0.5).beta, 0.0);
    }

    #[test]
    fn threads_floor_at_one() {
        assert_eq!(NewsLinkConfig::default().with_threads(0).threads, 1);
        assert_eq!(NewsLinkConfig::default().with_threads(8).threads, 8);
    }

    #[test]
    fn builder_style_chains() {
        let c = NewsLinkConfig::default()
            .with_beta(1.0)
            .with_model(EmbeddingModel::Tree);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.model, EmbeddingModel::Tree);
    }
}
