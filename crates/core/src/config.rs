//! NewsLink configuration.

use newslink_embed::SearchConfig;

/// Which subgraph-embedding model the NE component runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingModel {
    /// The paper's Lowest Common Ancestor Graph `G*` (all shortest paths,
    /// compactness-order optimal root).
    Lcag,
    /// The TreeEmb baseline of §VII-F (Group-Steiner-Tree star
    /// approximation, one path per label).
    Tree,
}

/// Capacity knobs for the engine's shared caches (see
/// [`crate::pipeline::NewsLink`] and `newslink_embed::EmbeddingCache`).
///
/// All tiers key on frozen-graph state, so caching never changes results
/// — only how often the traversal actually runs. Disabling the cache (or
/// setting a capacity to zero) routes every request through the uncached
/// code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; `false` makes every tier a pass-through.
    pub enabled: bool,
    /// Memoized `(model, label set) -> G*` results.
    pub group_capacity: usize,
    /// Shared truncated-Dijkstra distance maps (tier 2).
    pub distance_capacity: usize,
    /// Engine-level memo of whole query artifacts (NLP + NE output).
    pub query_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            group_capacity: 8192,
            distance_capacity: 4096,
            query_capacity: 1024,
        }
    }
}

impl CacheConfig {
    /// A configuration with every cache tier off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// End-to-end pipeline configuration.
#[derive(Debug, Clone)]
pub struct NewsLinkConfig {
    /// Equation 3's `β ∈ [0, 1]`: 0 = pure BOW (reduces to Lucene),
    /// 1 = pure BON (subgraph embeddings only). The paper's best setting
    /// is 0.2.
    pub beta: f64,
    /// Subgraph-embedding model.
    pub model: EmbeddingModel,
    /// NE search knobs.
    pub search: SearchConfig,
    /// Worker threads for corpus embedding and batch search.
    ///
    /// `1` = serial. `0` = auto: each call site resolves the pool size
    /// through [`Self::effective_threads`], which asks
    /// `std::thread::available_parallelism()` *at that moment* (falling
    /// back to 1 if the machine won't say) and then clamps to
    /// `[1, work_items]` — auto mode therefore never spawns more workers
    /// than there are items to process, and a value of `0` is never used
    /// as a literal pool size. Set via [`Self::with_auto_threads`];
    /// [`Self::with_threads`] floors explicit counts at 1.
    pub threads: usize,
    /// Intra-query worker threads for the NS stage's segment fan-out
    /// (the pruned blended scan and its top-1 normalization passes).
    ///
    /// `None` (the default) inherits [`threads`](Self::threads), so a
    /// server built `with_auto_threads` fans single queries out across
    /// the machine while the library default stays serial. `Some(0)` =
    /// auto (machine parallelism, clamped to the segment count at query
    /// time); `Some(n)` pins the worker count. Results are bit-identical
    /// at any setting — parallel segments prune against a shared atomic
    /// floor instead of their left neighbors, which only changes *work*,
    /// never scores or tie order (see `crate::segment`).
    pub search_threads: Option<usize>,
    /// Shared traversal/embedding cache sizing.
    pub cache: CacheConfig,
    /// Normalize BOW/BON score maps by their maxima before blending so β
    /// weights two comparable [0, 1] signals. (The paper blends Lucene
    /// scores; normalization pins the β semantics across index scales.)
    pub normalize_scores: bool,
    /// Rank with Fagin's Threshold Algorithm over the two ranked lists
    /// (the top-k algorithm the paper cites in §VI) instead of exhaustive
    /// union rescoring. Results are identical; TA terminates early.
    pub use_threshold_algorithm: bool,
    /// Documents per immutable index segment at build time. `0` (the
    /// default) seals the whole corpus into one segment — the
    /// pre-segmentation behaviour. Smaller segments build in parallel
    /// across [`threads`](Self::threads); search results are bit-identical
    /// either way (global-stats overlay, see `crate::segment`).
    pub segment_docs: usize,
    /// Rank the blended score with the block-max pruned evaluator
    /// (`newslink_text::blended_scan`): documents whose score upper bound
    /// cannot reach the current top-k threshold are skipped without being
    /// scored, and whole posting blocks are skipped without being
    /// decoded. Results are bit-identical to the exhaustive path — this
    /// knob is an escape hatch (and the oracle switch for equivalence
    /// tests), not a quality trade-off.
    pub prune_topk: bool,
    /// Ceiling on live segment count (floor 1). Incremental inserts
    /// through [`crate::NewsLink::insert_document`] and
    /// [`crate::LiveNewsLink::commit`] compact adjacent segments back
    /// under this bound. Build-time sharding is governed by
    /// [`segment_docs`](Self::segment_docs), not this.
    pub max_segments: usize,
}

impl Default for NewsLinkConfig {
    fn default() -> Self {
        Self {
            beta: 0.2,
            model: EmbeddingModel::Lcag,
            search: SearchConfig::default(),
            threads: 1,
            search_threads: None,
            cache: CacheConfig::default(),
            normalize_scores: true,
            use_threshold_algorithm: false,
            segment_docs: 0,
            prune_topk: true,
            max_segments: 8,
        }
    }
}

impl NewsLinkConfig {
    /// The paper's best setting, `NewsLink(0.2)`.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Set β (clamped to [0, 1]).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta.clamp(0.0, 1.0);
        self
    }

    /// Set the embedding model.
    pub fn with_model(mut self, model: EmbeddingModel) -> Self {
        self.model = model;
        self
    }

    /// Set worker threads (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Size worker pools to the machine (resolved per call site by
    /// [`effective_threads`](Self::effective_threads)).
    pub fn with_auto_threads(mut self) -> Self {
        self.threads = 0;
        self
    }

    /// Set the cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Turn every cache tier off.
    pub fn without_cache(mut self) -> Self {
        self.cache = CacheConfig::disabled();
        self
    }

    /// Set intra-query NS-stage workers (`0` = auto). Use
    /// [`Self::inherit_search_threads`] to return to following
    /// [`threads`](Self::threads).
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = Some(threads);
        self
    }

    /// Make the NS stage inherit [`threads`](Self::threads) again (the
    /// default).
    pub fn inherit_search_threads(mut self) -> Self {
        self.search_threads = None;
        self
    }

    /// Resolve the intra-query NS-stage worker count for `work` segments:
    /// [`search_threads`](Self::search_threads) when set (with `0` = auto
    /// machine parallelism), else [`effective_threads`](Self::effective_threads).
    /// Never exceeds the segment count or drops below one.
    pub fn effective_search_threads(&self, work: usize) -> usize {
        match self.search_threads {
            None => self.effective_threads(work),
            Some(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(work)
                .max(1),
            Some(n) => n.min(work).max(1),
        }
    }

    /// Resolve `threads` for a workload of `work` items: 0 means "use the
    /// machine's available parallelism", and the answer never exceeds the
    /// work or drops below one. The machine is consulted on every call,
    /// so auto mode tracks runtime changes to the CPU budget (e.g.
    /// container cpuset updates between batches).
    pub fn effective_threads(&self, work: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        requested.min(work).max(1)
    }

    /// Enable Threshold-Algorithm ranking.
    pub fn with_threshold_algorithm(mut self, on: bool) -> Self {
        self.use_threshold_algorithm = on;
        self
    }

    /// Set the build-time segment size (`0` = one segment for the whole
    /// corpus).
    pub fn with_segment_docs(mut self, docs: usize) -> Self {
        self.segment_docs = docs;
        self
    }

    /// Enable or disable the pruned top-k evaluator (`false` routes the
    /// blended score through the exhaustive full-scoring oracle path).
    pub fn with_prune_topk(mut self, on: bool) -> Self {
        self.prune_topk = on;
        self
    }

    /// Set the live segment-count ceiling (min 1).
    pub fn with_max_segments(mut self, max: usize) -> Self {
        self.max_segments = max.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_best() {
        let c = NewsLinkConfig::default();
        assert_eq!(c.beta, 0.2);
        assert_eq!(c.model, EmbeddingModel::Lcag);
        assert!(c.normalize_scores);
        assert_eq!(c.segment_docs, 0, "single segment by default");
        assert_eq!(c.max_segments, 8);
        assert!(c.prune_topk, "pruned evaluator on by default");
        assert!(
            !NewsLinkConfig::default().with_prune_topk(false).prune_topk,
            "escape hatch routes through the exhaustive oracle"
        );
    }

    #[test]
    fn segment_knobs_chain_and_floor() {
        let c = NewsLinkConfig::default()
            .with_segment_docs(512)
            .with_max_segments(0);
        assert_eq!(c.segment_docs, 512);
        assert_eq!(c.max_segments, 1, "max_segments floors at one");
    }

    #[test]
    fn beta_is_clamped() {
        assert_eq!(NewsLinkConfig::default().with_beta(2.0).beta, 1.0);
        assert_eq!(NewsLinkConfig::default().with_beta(-0.5).beta, 0.0);
    }

    #[test]
    fn search_threads_inherit_override_and_auto() {
        // Default: inherit `threads`.
        let c = NewsLinkConfig::default();
        assert_eq!(c.search_threads, None);
        assert_eq!(c.effective_search_threads(8), c.effective_threads(8));
        let c = NewsLinkConfig::default().with_threads(4);
        assert_eq!(c.effective_search_threads(8), 4);
        // Pinned: clamped to [1, work].
        let c = NewsLinkConfig::default().with_search_threads(3);
        assert_eq!(c.effective_search_threads(8), 3);
        assert_eq!(c.effective_search_threads(2), 2);
        assert_eq!(c.effective_search_threads(0), 1);
        // Auto: machine parallelism, clamped to work.
        let c = NewsLinkConfig::default().with_search_threads(0);
        assert!(c.effective_search_threads(1000) >= 1);
        assert_eq!(c.effective_search_threads(1), 1);
        // Back to inheriting.
        let c = c.inherit_search_threads();
        assert_eq!(c.search_threads, None);
    }

    #[test]
    fn threads_floor_at_one() {
        assert_eq!(NewsLinkConfig::default().with_threads(0).threads, 1);
        assert_eq!(NewsLinkConfig::default().with_threads(8).threads, 8);
    }

    #[test]
    fn auto_threads_resolve_to_machine_bounded_by_work() {
        let c = NewsLinkConfig::default().with_auto_threads();
        assert_eq!(c.threads, 0);
        assert!(c.effective_threads(1000) >= 1);
        assert_eq!(c.effective_threads(1), 1);
        assert_eq!(c.effective_threads(0), 1);
        // Explicit counts pass through, still bounded by the work.
        let e = NewsLinkConfig::default().with_threads(4);
        assert_eq!(e.effective_threads(100), 4);
        assert_eq!(e.effective_threads(2), 2);
    }

    #[test]
    fn auto_threads_pin_to_available_parallelism() {
        // Pin the documented auto semantics exactly: with abundant work,
        // the resolved count IS the machine's available parallelism (or 1
        // when unknown), and it never exceeds the work item count.
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let c = NewsLinkConfig::default().with_auto_threads();
        assert_eq!(c.effective_threads(usize::MAX), machine);
        for work in [1usize, 2, 3, machine, machine + 1, 10 * machine] {
            let resolved = c.effective_threads(work);
            assert!(resolved >= 1, "never below one");
            assert!(resolved <= work, "never more workers than work");
            assert!(resolved <= machine, "never more workers than cores");
            assert_eq!(resolved, machine.min(work));
        }
    }

    #[test]
    fn cache_defaults_on_and_disables() {
        let c = NewsLinkConfig::default();
        assert!(c.cache.enabled);
        assert!(c.cache.group_capacity > 0);
        let off = c.clone().without_cache();
        assert!(!off.cache.enabled);
        let custom = NewsLinkConfig::default().with_cache(CacheConfig {
            query_capacity: 7,
            ..CacheConfig::default()
        });
        assert_eq!(custom.cache.query_capacity, 7);
    }

    #[test]
    fn builder_style_chains() {
        let c = NewsLinkConfig::default()
            .with_beta(1.0)
            .with_model(EmbeddingModel::Tree);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.model, EmbeddingModel::Tree);
    }
}
