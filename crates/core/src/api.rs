//! The request-based search API.
//!
//! [`SearchRequest`] describes one query declaratively — the text, how
//! many hits, an optional per-request β override, whether to attach
//! relationship-path explanations, and whether this request may use the
//! engine's caches. [`crate::NewsLink::execute`] turns it into a
//! [`SearchResponse`] carrying the ranked hits plus everything the old
//! multi-argument call sites had to assemble by hand (embedding, timers,
//! cache observability, explanations).
//!
//! The free functions in [`crate::searcher`] remain as thin wrappers for
//! existing callers; new code should construct requests.
//!
//! With the `serde` feature enabled these types double as the wire
//! format of the `newslink-serve` HTTP layer: [`SearchRequest`] and
//! [`ExplainOptions`] round-trip through JSON, and the response types
//! serialize (responses carry a [`ComponentTimer`], whose `&'static str`
//! component keys make deserialization meaningless — clients read
//! response JSON generically).

use newslink_embed::{DocEmbedding, RelationshipPath};
use newslink_text::DocId;
use newslink_util::ComponentTimer;

use crate::searcher::SearchResult;

/// Explanation knobs for a request (paths per result, hops per path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExplainOptions {
    /// Maximum relationship-path length in edges.
    pub max_len: usize,
    /// Maximum number of paths per explained result.
    pub max_paths: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        Self {
            max_len: 4,
            max_paths: 10,
        }
    }
}

/// One declarative search request.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SearchRequest {
    /// The query text.
    pub query: String,
    /// Number of results to return.
    pub k: usize,
    /// Per-request β override (engine default when `None`); clamped to
    /// `[0, 1]` by the builder.
    pub beta: Option<f64>,
    /// Attach relationship-path explanations to every result.
    pub explain: Option<ExplainOptions>,
    /// Allow this request to read and populate the engine's caches.
    pub use_cache: bool,
    /// Per-request deadline budget in milliseconds, measured from
    /// [`crate::NewsLink::execute`] entry. The budget is checked between
    /// pipeline stages (after NLP + NE, and before explanations): on
    /// expiry the response comes back with
    /// [`timed_out`](SearchResponse::timed_out) set and whatever stages
    /// completed — a partial timer report rather than an answer.
    /// `None` = no deadline.
    pub timeout_ms: Option<u64>,
}

impl SearchRequest {
    /// A request for `query` with the defaults: `k = 10`, engine β,
    /// no explanations, caching on, no deadline.
    pub fn new(query: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            k: 10,
            beta: None,
            explain: None,
            use_cache: true,
            timeout_ms: None,
        }
    }

    /// Set the number of results.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Override β for this request only (clamped to `[0, 1]`).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta.clamp(0.0, 1.0));
        self
    }

    /// Attach explanations with the given options.
    pub fn with_explanations(mut self, options: ExplainOptions) -> Self {
        self.explain = Some(options);
        self
    }

    /// Attach explanations with default options.
    pub fn explained(self) -> Self {
        self.with_explanations(ExplainOptions::default())
    }

    /// Bypass the engine's caches for this request.
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// Give this request a deadline budget (rounded down to whole
    /// milliseconds).
    pub fn with_timeout(mut self, budget: std::time::Duration) -> Self {
        self.timeout_ms = Some(u64::try_from(budget.as_millis()).unwrap_or(u64::MAX));
        self
    }
}

/// How the engine's caches served one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QueryCacheInfo {
    /// Caching was on for this request (engine caches exist and the
    /// request allowed them).
    pub enabled: bool,
    /// The whole-query memo answered, skipping NLP and NE entirely.
    pub query_hit: bool,
}

/// Relationship-path evidence for one ranked result.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Explanation {
    /// The explained document.
    pub doc: DocId,
    /// Paths linking query entities to the document's entities.
    pub paths: Vec<RelationshipPath>,
}

/// Everything produced by executing one [`SearchRequest`].
#[derive(Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SearchResponse {
    /// Ranked results, best first.
    pub results: Vec<SearchResult>,
    /// The query's subgraph embedding.
    pub embedding: DocEmbedding,
    /// Per-component latency ("nlp", "ne", "ns").
    pub timer: ComponentTimer,
    /// Cache participation of this request.
    pub cache: QueryCacheInfo,
    /// Per-result explanations, aligned with `results`; empty unless the
    /// request asked for them.
    pub explanations: Vec<Explanation>,
    /// The request's deadline expired mid-pipeline: `results` /
    /// `explanations` cover only the stages that finished, and `timer`
    /// is a partial report of the work actually done.
    pub timed_out: bool,
    /// Pruned-evaluator work counters for the scoring stage (all zero
    /// when the request ran on the exhaustive or Threshold-Algorithm
    /// path).
    pub prune: newslink_text::PruneStats,
    /// Intra-query segment fan-out counters for the scoring stage (all
    /// zero when the NS stage ran sequentially).
    pub parallel: newslink_text::ParallelStats,
}

/// The outcome of executing a batch of requests.
#[derive(Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BatchResponse {
    /// One response per request, in input order.
    pub responses: Vec<SearchResponse>,
    /// Per-query component timers aggregated across the batch, plus a
    /// `"batch"` entry recording the wall-clock of the whole call (which
    /// is less than the component sum when queries ran in parallel).
    pub timer: ComponentTimer,
}

impl BatchResponse {
    /// Queries answered from the whole-query memo.
    pub fn query_hits(&self) -> usize {
        self.responses.iter().filter(|r| r.cache.query_hit).count()
    }

    /// Requests whose deadline expired mid-pipeline.
    pub fn timed_out(&self) -> usize {
        self.responses.iter().filter(|r| r.timed_out).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_defaults_and_overrides() {
        let r = SearchRequest::new("taliban in kunar");
        assert_eq!(r.k, 10);
        assert_eq!(r.beta, None);
        assert!(r.use_cache);
        assert!(r.explain.is_none());

        let r = SearchRequest::new("q")
            .with_k(3)
            .with_beta(2.0)
            .explained()
            .without_cache()
            .with_timeout(std::time::Duration::from_millis(250));
        assert_eq!(r.k, 3);
        assert_eq!(r.beta, Some(1.0), "β must clamp");
        assert!(!r.use_cache);
        assert_eq!(r.explain.unwrap().max_len, 4);
        assert_eq!(r.timeout_ms, Some(250));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn request_round_trips_through_json() {
        let r = SearchRequest::new("taliban in kunar")
            .with_k(3)
            .with_beta(0.5)
            .explained()
            .with_timeout(std::time::Duration::from_millis(250));
        let json = serde_json::to_string(&r).unwrap();
        let back: SearchRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Unset options serialize as null and come back as None.
        let plain = SearchRequest::new("q");
        let back: SearchRequest =
            serde_json::from_str(&serde_json::to_string(&plain).unwrap()).unwrap();
        assert_eq!(back, plain);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn request_json_uses_field_names() {
        let json = serde_json::to_string(&SearchRequest::new("x").with_k(2)).unwrap();
        for key in ["query", "k", "beta", "explain", "use_cache", "timeout_ms"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
    }
}
