//! The request-based search API.
//!
//! [`SearchRequest`] describes one query declaratively — the text, how
//! many hits, an optional per-request β override, whether to attach
//! relationship-path explanations, and whether this request may use the
//! engine's caches. [`crate::NewsLink::execute`] turns it into a
//! [`SearchResponse`] carrying the ranked hits plus everything the old
//! multi-argument call sites had to assemble by hand (embedding, timers,
//! cache observability, explanations).
//!
//! The free functions in [`crate::searcher`] remain as thin wrappers for
//! existing callers; new code should construct requests.

use newslink_embed::{DocEmbedding, RelationshipPath};
use newslink_text::DocId;
use newslink_util::ComponentTimer;

use crate::searcher::SearchResult;

/// Explanation knobs for a request (paths per result, hops per path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainOptions {
    /// Maximum relationship-path length in edges.
    pub max_len: usize,
    /// Maximum number of paths per explained result.
    pub max_paths: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        Self {
            max_len: 4,
            max_paths: 10,
        }
    }
}

/// One declarative search request.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The query text.
    pub query: String,
    /// Number of results to return.
    pub k: usize,
    /// Per-request β override (engine default when `None`); clamped to
    /// `[0, 1]` by the builder.
    pub beta: Option<f64>,
    /// Attach relationship-path explanations to every result.
    pub explain: Option<ExplainOptions>,
    /// Allow this request to read and populate the engine's caches.
    pub use_cache: bool,
}

impl SearchRequest {
    /// A request for `query` with the defaults: `k = 10`, engine β,
    /// no explanations, caching on.
    pub fn new(query: impl Into<String>) -> Self {
        Self {
            query: query.into(),
            k: 10,
            beta: None,
            explain: None,
            use_cache: true,
        }
    }

    /// Set the number of results.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Override β for this request only (clamped to `[0, 1]`).
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = Some(beta.clamp(0.0, 1.0));
        self
    }

    /// Attach explanations with the given options.
    pub fn with_explanations(mut self, options: ExplainOptions) -> Self {
        self.explain = Some(options);
        self
    }

    /// Attach explanations with default options.
    pub fn explained(self) -> Self {
        self.with_explanations(ExplainOptions::default())
    }

    /// Bypass the engine's caches for this request.
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }
}

/// How the engine's caches served one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheInfo {
    /// Caching was on for this request (engine caches exist and the
    /// request allowed them).
    pub enabled: bool,
    /// The whole-query memo answered, skipping NLP and NE entirely.
    pub query_hit: bool,
}

/// Relationship-path evidence for one ranked result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explanation {
    /// The explained document.
    pub doc: DocId,
    /// Paths linking query entities to the document's entities.
    pub paths: Vec<RelationshipPath>,
}

/// Everything produced by executing one [`SearchRequest`].
#[derive(Debug)]
pub struct SearchResponse {
    /// Ranked results, best first.
    pub results: Vec<SearchResult>,
    /// The query's subgraph embedding.
    pub embedding: DocEmbedding,
    /// Per-component latency ("nlp", "ne", "ns").
    pub timer: ComponentTimer,
    /// Cache participation of this request.
    pub cache: QueryCacheInfo,
    /// Per-result explanations, aligned with `results`; empty unless the
    /// request asked for them.
    pub explanations: Vec<Explanation>,
}

/// The outcome of executing a batch of requests.
#[derive(Debug)]
pub struct BatchResponse {
    /// One response per request, in input order.
    pub responses: Vec<SearchResponse>,
    /// Per-query component timers aggregated across the batch, plus a
    /// `"batch"` entry recording the wall-clock of the whole call (which
    /// is less than the component sum when queries ran in parallel).
    pub timer: ComponentTimer,
}

impl BatchResponse {
    /// Queries answered from the whole-query memo.
    pub fn query_hits(&self) -> usize {
        self.responses.iter().filter(|r| r.cache.query_hit).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_defaults_and_overrides() {
        let r = SearchRequest::new("taliban in kunar");
        assert_eq!(r.k, 10);
        assert_eq!(r.beta, None);
        assert!(r.use_cache);
        assert!(r.explain.is_none());

        let r = SearchRequest::new("q")
            .with_k(3)
            .with_beta(2.0)
            .explained()
            .without_cache();
        assert_eq!(r.k, 3);
        assert_eq!(r.beta, Some(1.0), "β must clamp");
        assert!(!r.use_cache);
        assert_eq!(r.explain.unwrap().max_len, 4);
    }
}
