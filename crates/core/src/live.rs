//! Incremental NewsLink: the full blended engine over growing corpora.
//!
//! A news search deployment ingests a stream; re-embedding and re-indexing
//! the whole corpus per article (the frozen [`crate::indexer`] path) does
//! not scale. [`LiveNewsLink`] keeps *two* Lucene-style segmented indexes
//! — BOW over word terms, BON over node terms — plus the per-document
//! subgraph embeddings, supporting add / delete / commit with stable
//! document ids and the same Equation 3 blended scoring as the frozen
//! engine.

use newslink_embed::{
    bon_terms, relationship_paths, DocEmbedding, EmbeddingCache, RelationshipPath,
};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::{Bm25, GlobalId, SegmentedIndex};
use newslink_util::{CacheStats, FxHashMap, TopK};

use crate::config::NewsLinkConfig;
use crate::indexer::embed_one_with;

/// A blended hit from the live engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveHit {
    /// Stable document id.
    pub id: GlobalId,
    /// Blended score.
    pub score: f64,
}

/// The incremental NewsLink engine.
pub struct LiveNewsLink<'g> {
    graph: &'g KnowledgeGraph,
    label_index: &'g LabelIndex,
    config: NewsLinkConfig,
    bow: SegmentedIndex,
    bon: SegmentedIndex,
    embeddings: FxHashMap<GlobalId, DocEmbedding>,
    /// Embedding cache shared by ingestion and search. Entries key on the
    /// immutably borrowed graph, never on document state, so add / delete
    /// / commit require no invalidation — a stream of near-duplicate
    /// articles embeds its recurring entity groups once.
    cache: Option<EmbeddingCache>,
}

impl<'g> LiveNewsLink<'g> {
    /// Create an empty live engine; `max_segments` bounds both indexes'
    /// segment counts.
    pub fn new(
        graph: &'g KnowledgeGraph,
        label_index: &'g LabelIndex,
        config: NewsLinkConfig,
        max_segments: usize,
    ) -> Self {
        let cache = if config.cache.enabled {
            Some(EmbeddingCache::new(
                config.cache.group_capacity,
                config.cache.distance_capacity,
            ))
        } else {
            None
        };
        Self {
            graph,
            label_index,
            config,
            bow: SegmentedIndex::new(max_segments),
            bon: SegmentedIndex::new(max_segments),
            embeddings: FxHashMap::default(),
            cache,
        }
    }

    /// Group-memo counters of the live embedding cache (zeros when
    /// caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.group_stats())
            .unwrap_or_default()
    }

    /// Analyze, embed and buffer one document; returns its stable id.
    /// Searchable after the next [`commit`](Self::commit).
    pub fn add_document(&mut self, text: &str) -> GlobalId {
        let artifacts = embed_one_with(
            self.graph,
            self.label_index,
            &self.config,
            self.cache.as_ref(),
            text,
        );
        let id = self.bow.add_document(&artifacts.analysis.terms);
        let bon_id = self.bon.add_document(&bon_terms(&artifacts.embedding));
        debug_assert_eq!(id, bon_id, "BOW/BON ids must stay aligned");
        self.embeddings.insert(id, artifacts.embedding);
        id
    }

    /// Delete a document (buffered or committed).
    pub fn delete_document(&mut self, id: GlobalId) -> bool {
        let ok = self.bow.delete_document(id);
        let ok2 = self.bon.delete_document(id);
        debug_assert_eq!(ok, ok2);
        if ok {
            self.embeddings.remove(&id);
        }
        ok
    }

    /// Flush buffered documents into searchable segments.
    pub fn commit(&mut self) {
        self.bow.commit();
        self.bon.commit();
    }

    /// Live document count (including uncommitted).
    pub fn doc_count(&self) -> usize {
        self.bow.doc_count()
    }

    /// The stored embedding of a live document.
    pub fn embedding(&self, id: GlobalId) -> Option<&DocEmbedding> {
        self.embeddings.get(&id)
    }

    /// Blended top-k search over committed documents (Equation 3, same
    /// scorers and normalization as the frozen engine).
    pub fn search(&self, query_text: &str, k: usize) -> (Vec<LiveHit>, DocEmbedding) {
        let artifacts = embed_one_with(
            self.graph,
            self.label_index,
            &self.config,
            self.cache.as_ref(),
            query_text,
        );
        let beta = self.config.beta;
        let mut bow_scores = if beta < 1.0 {
            self.bow
                .score_all_with(Bm25::default(), &artifacts.analysis.terms)
        } else {
            FxHashMap::default()
        };
        let mut bon_scores = if beta > 0.0 {
            self.bon
                .score_all_with(Bm25 { k1: 1.2, b: 0.0 }, &bon_terms(&artifacts.embedding))
        } else {
            FxHashMap::default()
        };
        if self.config.normalize_scores {
            for scores in [&mut bow_scores, &mut bon_scores] {
                let max = scores.values().copied().fold(0.0f64, f64::max);
                if max > 0.0 {
                    for v in scores.values_mut() {
                        *v /= max;
                    }
                }
            }
        }
        let mut ids: Vec<GlobalId> =
            bow_scores.keys().chain(bon_scores.keys()).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut topk = TopK::new(k);
        for id in ids {
            let bow = bow_scores.get(&id).copied().unwrap_or(0.0);
            let bon = bon_scores.get(&id).copied().unwrap_or(0.0);
            let score = (1.0 - beta) * bow + beta * bon;
            if score > 0.0 {
                topk.push(score, id);
            }
        }
        let hits = topk
            .into_sorted()
            .into_iter()
            .map(|(score, id)| LiveHit { id, score })
            .collect();
        (hits, artifacts.embedding)
    }

    /// Relationship-path explanations for a live result.
    pub fn explain(
        &self,
        query_embedding: &DocEmbedding,
        id: GlobalId,
        max_len: usize,
        max_paths: usize,
    ) -> Vec<RelationshipPath> {
        match self.embeddings.get(&id) {
            Some(result) => relationship_paths(query_embedding, result, max_len, max_paths),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let lahore = b.add_node("Lahore", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(lahore, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Explosions rocked Lahore. Pakistan blamed Taliban.",
        "A plain story with no known names at all.",
    ];

    #[test]
    fn live_matches_frozen_engine() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        // Frozen reference.
        let frozen = index_corpus(&g, &li, &cfg, DOCS);
        // Live engine with per-doc commits and merging.
        let mut live = LiveNewsLink::new(&g, &li, cfg.clone(), 2);
        for d in DOCS {
            live.add_document(d);
            live.commit();
        }
        for q in ["Taliban near Kunar", "Explosions in Lahore", "Pakistan"] {
            let want = search(&g, &li, &cfg, &frozen, q, 3);
            let (got, _) = live.search(q, 3);
            assert_eq!(got.len(), want.results.len(), "query {q}");
            for (x, y) in got.iter().zip(&want.results) {
                assert_eq!(x.id, u64::from(y.doc.0), "query {q}");
                assert!((x.score - y.score).abs() < 1e-9, "query {q}");
            }
        }
    }

    #[test]
    fn uncommitted_docs_invisible_then_searchable() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        let id = live.add_document(DOCS[0]);
        assert!(live.search("Taliban", 5).0.is_empty());
        live.commit();
        let (hits, _) = live.search("Taliban", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn deletion_removes_doc_and_embedding() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        let a = live.add_document(DOCS[0]);
        let b = live.add_document(DOCS[1]);
        live.commit();
        assert!(live.delete_document(a));
        assert!(live.embedding(a).is_none());
        assert!(live.embedding(b).is_some());
        live.commit();
        let (hits, _) = live.search("Taliban", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, b);
        assert_eq!(live.doc_count(), 1);
    }

    #[test]
    fn explanations_work_on_live_results() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(
            &g,
            &li,
            NewsLinkConfig::default().with_beta(1.0),
            4,
        );
        for d in DOCS {
            live.add_document(d);
        }
        live.commit();
        let (hits, qe) = live.search("Taliban strikes in Kunar.", 3);
        let top = hits.first().expect("has hits");
        let paths = live.explain(&qe, top.id, 4, 10);
        assert!(!paths.is_empty());
        assert!(live.explain(&qe, 999, 4, 10).is_empty());
    }

    #[test]
    fn repeated_ingestion_hits_the_cache() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        live.add_document(DOCS[0]);
        let after_first = live.cache_stats();
        // Same article again: every entity group is memoized.
        live.add_document(DOCS[0]);
        let after_second = live.cache_stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);

        // Disabled cache keeps zeros and identical behaviour.
        let mut plain = LiveNewsLink::new(
            &g,
            &li,
            NewsLinkConfig::default().without_cache(),
            4,
        );
        plain.add_document(DOCS[0]);
        assert_eq!(plain.cache_stats(), CacheStats::default());
    }

    #[test]
    fn stable_ids_across_merges() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 1);
        let mut ids = Vec::new();
        for i in 0..8 {
            let text = format!("Update {i}: Taliban activity near Kunar continued.");
            ids.push(live.add_document(&text));
            live.commit();
        }
        // Merged down to one segment; every id still resolves.
        let (hits, _) = live.search("Taliban Kunar", 10);
        assert_eq!(hits.len(), 8);
        for h in &hits {
            assert!(ids.contains(&h.id));
            assert!(live.embedding(h.id).is_some());
        }
    }
}
