//! Incremental NewsLink: the full blended engine over growing corpora.
//!
//! A news search deployment ingests a stream; re-embedding and re-indexing
//! the whole corpus per article (the frozen [`crate::indexer`] path) does
//! not scale. [`LiveNewsLink`] wraps the same segmented
//! [`NewsLinkIndex`] the frozen engine searches, plus one *open* mutable
//! segment: [`add_document`](LiveNewsLink::add_document) buffers analyzed
//! documents there, [`commit`](LiveNewsLink::commit) seals the buffer
//! into an immutable [`IndexSegment`] and compacts small segments back
//! under the configured ceiling. Search simply runs the shared fan-out
//! query path, so live results are bit-identical to a frozen index over
//! the same live documents.

use newslink_embed::{relationship_paths, DocEmbedding, RelationshipPath};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_text::DocId;
use newslink_util::{CacheStats, FxHashSet};

use crate::cache::EngineCaches;
use crate::config::NewsLinkConfig;
use crate::indexer::{embed_one_with, DocArtifacts, NewsLinkIndex};
use crate::searcher::run_query;
use crate::segment::{IndexSegment, IndexStats};

/// A blended hit from the live engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveHit {
    /// Stable document id.
    pub id: DocId,
    /// Blended score.
    pub score: f64,
}

/// The incremental NewsLink engine.
pub struct LiveNewsLink<'g> {
    graph: &'g KnowledgeGraph,
    label_index: &'g LabelIndex,
    config: NewsLinkConfig,
    index: NewsLinkIndex,
    /// The open segment: embedded documents not yet sealed. Ids are
    /// reserved at add time and never reused, even when the document is
    /// deleted before its first commit.
    pending: Vec<(u32, DocArtifacts)>,
    /// Buffered documents deleted before sealing (dropped at commit).
    pending_deleted: FxHashSet<u32>,
    /// Engine caches shared by ingestion and search. Entries key on the
    /// immutably borrowed graph, never on document state, so add / delete
    /// / commit require no invalidation — a stream of near-duplicate
    /// articles embeds its recurring entity groups once.
    caches: Option<EngineCaches>,
    max_segments: usize,
}

impl<'g> LiveNewsLink<'g> {
    /// Create an empty live engine; `max_segments` bounds the index's
    /// segment count after every commit.
    pub fn new(
        graph: &'g KnowledgeGraph,
        label_index: &'g LabelIndex,
        config: NewsLinkConfig,
        max_segments: usize,
    ) -> Self {
        let caches = EngineCaches::from_config(&config.cache);
        Self {
            graph,
            label_index,
            config,
            index: NewsLinkIndex::empty(),
            pending: Vec::new(),
            pending_deleted: FxHashSet::default(),
            caches,
            max_segments: max_segments.max(1),
        }
    }

    /// Group-memo counters of the live embedding cache (zeros when
    /// caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.caches
            .as_ref()
            .map(|c| c.embed.group_stats())
            .unwrap_or_default()
    }

    /// The committed segmented index (for stats and advanced callers).
    pub fn index(&self) -> &NewsLinkIndex {
        &self.index
    }

    /// Segment / tombstone / compaction gauges of the committed index.
    pub fn stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Analyze, embed and buffer one document in the open segment;
    /// returns its stable id. Searchable after the next
    /// [`commit`](Self::commit).
    pub fn add_document(&mut self, text: &str) -> DocId {
        let artifacts = embed_one_with(
            self.graph,
            self.label_index,
            &self.config,
            self.caches.as_ref().map(|c| &c.embed),
            text,
        );
        self.index
            .timer
            .record("nlp", std::time::Duration::from_nanos(artifacts.nlp_nanos));
        self.index
            .timer
            .record("ne", std::time::Duration::from_nanos(artifacts.ne_nanos));
        let id = self.index.reserve_id();
        self.pending.push((id.0, artifacts));
        id
    }

    /// Delete a document (buffered or committed).
    pub fn delete_document(&mut self, id: DocId) -> bool {
        if self.pending_deleted.contains(&id.0) {
            return false;
        }
        if self.pending.iter().any(|(g, _)| *g == id.0) {
            self.pending_deleted.insert(id.0);
            return true;
        }
        self.index.delete(id)
    }

    /// Seal the open segment into an immutable one, then compact adjacent
    /// small segments until at most `max_segments` remain (expunging
    /// tombstones along the way).
    pub fn commit(&mut self) {
        if !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            let retained: Vec<(u32, DocArtifacts)> = pending
                .into_iter()
                .filter(|(g, _)| !self.pending_deleted.contains(g))
                .collect();
            if !retained.is_empty() {
                for (_, a) in &retained {
                    self.index.match_stats.identified += a.analysis.stats.identified;
                    self.index.match_stats.matched += a.analysis.stats.matched;
                    if !a.embedding.is_empty() {
                        self.index.embedded_docs += 1;
                    }
                }
                let segment = IndexSegment::build(retained);
                self.index.install_segment(segment);
            }
        }
        self.pending_deleted.clear();
        self.index.compact_to(self.max_segments);
    }

    /// Live document count (including uncommitted).
    pub fn doc_count(&self) -> usize {
        self.index.doc_count()
            + self
                .pending
                .iter()
                .filter(|(g, _)| !self.pending_deleted.contains(g))
                .count()
    }

    /// The stored embedding of a live document (committed or buffered).
    pub fn embedding(&self, id: DocId) -> Option<&DocEmbedding> {
        if let Some(e) = self.index.embedding(id) {
            return Some(e);
        }
        if self.pending_deleted.contains(&id.0) {
            return None;
        }
        self.pending
            .iter()
            .find(|(g, _)| *g == id.0)
            .map(|(_, a)| &a.embedding)
    }

    /// Blended top-k search over committed documents — the exact frozen
    /// query path (Equation 3, fan-out, normalization) over the live
    /// index.
    pub fn search(&self, query_text: &str, k: usize) -> (Vec<LiveHit>, DocEmbedding) {
        let outcome = run_query(
            self.graph,
            self.label_index,
            &self.config,
            &self.index,
            self.caches.as_ref(),
            query_text,
            k,
            None,
            None,
        );
        let hits = outcome
            .results
            .into_iter()
            .map(|r| LiveHit {
                id: r.doc,
                score: r.score,
            })
            .collect();
        (hits, outcome.embedding)
    }

    /// Relationship-path explanations for a live result.
    pub fn explain(
        &self,
        query_embedding: &DocEmbedding,
        id: DocId,
        max_len: usize,
        max_paths: usize,
    ) -> Vec<RelationshipPath> {
        match self.embedding(id) {
            Some(result) => relationship_paths(query_embedding, result, max_len, max_paths),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexer::index_corpus;
    use crate::searcher::search;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let lahore = b.add_node("Lahore", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(lahore, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Explosions rocked Lahore. Pakistan blamed Taliban.",
        "A plain story with no known names at all.",
    ];

    #[test]
    fn live_matches_frozen_engine() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        // Frozen reference (single segment).
        let frozen = index_corpus(&g, &li, &cfg, DOCS);
        // Live engine with per-doc commits and merging.
        let mut live = LiveNewsLink::new(&g, &li, cfg.clone(), 2);
        for d in DOCS {
            live.add_document(d);
            live.commit();
        }
        assert!(live.stats().compactions > 0, "merging actually happened");
        for q in ["Taliban near Kunar", "Explosions in Lahore", "Pakistan"] {
            let want = search(&g, &li, &cfg, &frozen, q, 3);
            let (got, _) = live.search(q, 3);
            assert_eq!(got.len(), want.results.len(), "query {q}");
            for (x, y) in got.iter().zip(&want.results) {
                assert_eq!(x.id, y.doc, "query {q}");
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "query {q}: live {} vs frozen {}",
                    x.score,
                    y.score
                );
            }
        }
    }

    #[test]
    fn uncommitted_docs_invisible_then_searchable() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        let id = live.add_document(DOCS[0]);
        assert!(live.search("Taliban", 5).0.is_empty());
        live.commit();
        let (hits, _) = live.search("Taliban", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, id);
    }

    #[test]
    fn deletion_removes_doc_and_embedding() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        let a = live.add_document(DOCS[0]);
        let b = live.add_document(DOCS[1]);
        live.commit();
        assert!(live.delete_document(a));
        assert!(live.embedding(a).is_none());
        assert!(live.embedding(b).is_some());
        live.commit();
        let (hits, _) = live.search("Taliban", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, b);
        assert_eq!(live.doc_count(), 1);
    }

    #[test]
    fn buffered_delete_drops_doc_but_not_its_id() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        let a = live.add_document(DOCS[0]);
        assert!(live.delete_document(a), "buffered doc deletable");
        assert!(!live.delete_document(a), "double delete");
        assert!(live.embedding(a).is_none());
        live.commit();
        // The dropped buffered doc never consumed a segment slot, but its
        // id is not reused.
        let b = live.add_document(DOCS[1]);
        assert!(b.0 > a.0, "ids are never reused");
        live.commit();
        assert_eq!(live.doc_count(), 1);
        let (hits, _) = live.search("Taliban", 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, b);
    }

    #[test]
    fn explanations_work_on_live_results() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(
            &g,
            &li,
            NewsLinkConfig::default().with_beta(1.0),
            4,
        );
        for d in DOCS {
            live.add_document(d);
        }
        live.commit();
        let (hits, qe) = live.search("Taliban strikes in Kunar.", 3);
        let top = hits.first().expect("has hits");
        let paths = live.explain(&qe, top.id, 4, 10);
        assert!(!paths.is_empty());
        assert!(live.explain(&qe, DocId(999), 4, 10).is_empty());
    }

    #[test]
    fn repeated_ingestion_hits_the_cache() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 4);
        live.add_document(DOCS[0]);
        let after_first = live.cache_stats();
        // Same article again: every entity group is memoized.
        live.add_document(DOCS[0]);
        let after_second = live.cache_stats();
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);

        // Disabled cache keeps zeros and identical behaviour.
        let mut plain = LiveNewsLink::new(
            &g,
            &li,
            NewsLinkConfig::default().without_cache(),
            4,
        );
        plain.add_document(DOCS[0]);
        assert_eq!(plain.cache_stats(), CacheStats::default());
    }

    #[test]
    fn stable_ids_across_merges() {
        let (g, li) = world();
        let mut live = LiveNewsLink::new(&g, &li, NewsLinkConfig::default(), 1);
        let mut ids = Vec::new();
        for i in 0..8 {
            let text = format!("Update {i}: Taliban activity near Kunar continued.");
            ids.push(live.add_document(&text));
            live.commit();
        }
        // Merged down to one segment; every id still resolves.
        assert_eq!(live.stats().segments, 1);
        assert_eq!(live.stats().compactions, 7);
        let (hits, _) = live.search("Taliban Kunar", 10);
        assert_eq!(hits.len(), 8);
        for h in &hits {
            assert!(ids.contains(&h.id));
            assert!(live.embedding(h.id).is_some());
        }
    }
}
