//! [`SegmentReader`]: how snapshot bytes reach the engine, and
//! [`StoreOptions`]: the open-time configuration surface.
//!
//! A [`Directory`](crate::directory::Directory) names blobs; a
//! `SegmentReader` decides *what kind of bytes* a snapshot loads
//! through:
//!
//! - [`HeapSegmentReader`] copies the file into one owned buffer and
//!   decodes from there — the classic path, required for nothing but
//!   familiar everywhere, and the only choice when the platform cannot
//!   map files. Reads version-3 (and the v2 index sections inside it)
//!   as well as version-4 snapshots.
//! - [`MmapSegmentReader`] memory-maps the file and hands the v4 reader
//!   a zero-copy [`Bytes`](newslink_util::Bytes) view: posting data and
//!   the encoded doc store become `&[u8]` slices straight out of the
//!   mapping, so cold start is "map, validate footers, go" and the OS
//!   page cache owns the corpus. Version-3 snapshots still load (the
//!   v3 decoder copies as it walks — format, not backend, decides).
//!
//! Both backends produce **bit-identical** indexes: the v4 decoder is
//! the same code over the same bytes; only the residence of those bytes
//! differs. The segment/prune property suites assert this, and the
//! parallel suite re-asserts it under the intra-query segment fan-out —
//! concurrent workers decoding posting blocks straight out of a shared
//! file mapping rank exactly like a single thread over heap buffers.

use std::fmt;

use newslink_kg::KnowledgeGraph;

use crate::config::NewsLinkConfig;
use crate::directory::Directory;
use crate::indexer::NewsLinkIndex;
use crate::persist::{read_newslink_index_bytes, LoadReport, PersistError};

/// Which storage backend snapshot bytes are served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Copy the snapshot into process-heap buffers.
    #[default]
    Heap,
    /// Memory-map the snapshot; zero-copy for version-4 files.
    Mmap,
}

impl StorageBackend {
    /// The CLI spelling (`--storage {heap,mmap}`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Heap => "heap",
            Self::Mmap => "mmap",
        }
    }

    /// Parse the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(Self::Heap),
            "mmap" => Some(Self::Mmap),
            _ => None,
        }
    }

    /// The reader implementing this backend.
    pub fn reader(self) -> Box<dyn SegmentReader> {
        match self {
            Self::Heap => Box::new(HeapSegmentReader),
            Self::Mmap => Box::new(MmapSegmentReader),
        }
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Loads index snapshots out of a [`Directory`].
pub trait SegmentReader: Send + Sync + fmt::Debug {
    /// The backend this reader implements.
    fn backend(&self) -> StorageBackend;

    /// Load the snapshot blob `name` from `dir`, validating it against
    /// `graph`. `tolerant` selects quarantine-and-continue over
    /// fail-on-first-damage (see
    /// [`read_newslink_index_tolerant`](crate::persist::read_newslink_index_tolerant)).
    fn read_snapshot(
        &self,
        dir: &dyn Directory,
        name: &str,
        graph: &KnowledgeGraph,
        tolerant: bool,
    ) -> Result<(NewsLinkIndex, LoadReport), PersistError>;
}

/// Heap-resident snapshot loading ([`StorageBackend::Heap`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapSegmentReader;

impl SegmentReader for HeapSegmentReader {
    fn backend(&self) -> StorageBackend {
        StorageBackend::Heap
    }

    fn read_snapshot(
        &self,
        dir: &dyn Directory,
        name: &str,
        graph: &KnowledgeGraph,
        tolerant: bool,
    ) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
        let bytes = dir.read(name)?;
        read_newslink_index_bytes(graph, &bytes, tolerant)
    }
}

/// Memory-mapped snapshot loading ([`StorageBackend::Mmap`]).
///
/// The index returned by [`read_snapshot`](SegmentReader::read_snapshot)
/// keeps the mapping alive through its posting-list and doc-store
/// views; dropping the index unmaps. Snapshot replacement is safe
/// because [`Directory::atomic_write`] publishes by rename — a live
/// mapping keeps reading the old inode.
#[derive(Debug, Clone, Copy, Default)]
pub struct MmapSegmentReader;

impl SegmentReader for MmapSegmentReader {
    fn backend(&self) -> StorageBackend {
        StorageBackend::Mmap
    }

    fn read_snapshot(
        &self,
        dir: &dyn Directory,
        name: &str,
        graph: &KnowledgeGraph,
        tolerant: bool,
    ) -> Result<(NewsLinkIndex, LoadReport), PersistError> {
        let bytes = dir.open_bytes(name)?;
        read_newslink_index_bytes(graph, &bytes, tolerant)
    }
}

/// Builder-style open options for [`NewsLink::open_with`] and
/// [`DurableStore::open_with`]: the storage backend plus engine-config
/// overrides that matter at open time. Unset overrides leave the
/// provided [`NewsLinkConfig`] untouched.
///
/// [`NewsLink::open_with`]: crate::pipeline::NewsLink::open_with
/// [`DurableStore::open_with`]: crate::store::DurableStore::open_with
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    backend: StorageBackend,
    prune_topk: Option<bool>,
    segment_docs: Option<usize>,
    max_segments: Option<usize>,
    threads: Option<usize>,
}

impl StoreOptions {
    /// Defaults: heap backend, no config overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the storage backend.
    pub fn backend(mut self, backend: StorageBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Override [`NewsLinkConfig::prune_topk`].
    pub fn prune_topk(mut self, on: bool) -> Self {
        self.prune_topk = Some(on);
        self
    }

    /// Override [`NewsLinkConfig::segment_docs`].
    pub fn segment_docs(mut self, docs: usize) -> Self {
        self.segment_docs = Some(docs);
        self
    }

    /// Override [`NewsLinkConfig::max_segments`].
    pub fn max_segments(mut self, max: usize) -> Self {
        self.max_segments = Some(max);
        self
    }

    /// Override [`NewsLinkConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The selected backend.
    pub fn storage_backend(&self) -> StorageBackend {
        self.backend
    }

    /// The reader for the selected backend.
    pub fn segment_reader(&self) -> Box<dyn SegmentReader> {
        self.backend.reader()
    }

    /// Apply the overrides to a base config.
    pub fn apply(&self, mut config: NewsLinkConfig) -> NewsLinkConfig {
        if let Some(on) = self.prune_topk {
            config = config.with_prune_topk(on);
        }
        if let Some(docs) = self.segment_docs {
            config = config.with_segment_docs(docs);
        }
        if let Some(max) = self.max_segments {
            config = config.with_max_segments(max);
        }
        if let Some(threads) = self.threads {
            config = config.with_threads(threads);
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing_round_trips() {
        for b in [StorageBackend::Heap, StorageBackend::Mmap] {
            assert_eq!(StorageBackend::parse(b.as_str()), Some(b));
            assert_eq!(b.reader().backend(), b);
            assert_eq!(b.to_string(), b.as_str());
        }
        assert_eq!(StorageBackend::parse("disk"), None);
        assert_eq!(StorageBackend::default(), StorageBackend::Heap);
    }

    #[test]
    fn options_apply_only_set_overrides() {
        let base = NewsLinkConfig::default();
        let untouched = StoreOptions::new().apply(base.clone());
        assert_eq!(untouched.prune_topk, base.prune_topk);
        assert_eq!(untouched.segment_docs, base.segment_docs);
        let tuned = StoreOptions::new()
            .backend(StorageBackend::Mmap)
            .prune_topk(false)
            .segment_docs(128)
            .max_segments(4)
            .threads(2)
            .apply(base.clone());
        assert!(!tuned.prune_topk);
        assert_eq!(tuned.segment_docs, 128);
        assert_eq!(tuned.max_segments, 4);
        assert_eq!(tuned.threads, 2);
        // Untouched knobs keep their base values.
        assert_eq!(tuned.beta.to_bits(), base.beta.to_bits());
    }
}
