//! Immutable index segments — the Lucene-style sharding under
//! [`NewsLinkIndex`].
//!
//! An [`IndexSegment`] is a frozen shard: its own BOW inverted index, BON
//! node postings, doc store (per-document subgraph embeddings) and — by
//! construction of `newslink_text::InvertedIndex` — segment-local TF-IDF /
//! BM25 statistics. [`NewsLinkIndex`] owns an ordered set of segments plus
//! a tombstone set; every global document id lives in exactly one segment.
//!
//! ## Score parity
//!
//! Scoring never uses segment-local collection statistics directly.
//! Instead the searcher computes a *global-stats overlay* — live document
//! count, total token length ([`CollectionStats`]) and per-query-term live
//! document frequency — by exact integer summation across segments, and
//! scores each segment under that overlay
//! ([`newslink_text::score_segment`]). Because each document belongs to
//! one segment and the query-side term-frequency map is built once and
//! shared, the per-document float operations replay the monolithic
//! sequence exactly: a multi-segment index is **bit-identical** to the
//! single-segment build over the same live documents.
//!
//! ## Ordering invariant
//!
//! Segments are kept sorted by disjoint ascending global-id ranges: the
//! builder assigns dense consecutive ids chunk by chunk, live inserts
//! append fresh ids, and compaction only merges *adjacent* pairs in
//! place. This makes `locate` a binary search and lets per-segment top-k
//! results merge in segment order with the same deterministic tie-breaks
//! (lowest id wins among equal scores) as a monolithic scan.

use std::sync::OnceLock;

use newslink_embed::{bon_term_counts, codec as embed_codec, DocEmbedding};
use newslink_text::{
    blended_scan, maxscore_search_with, query_tf, score_segment, side_scan, Bm25, CollectionStats,
    DocId, IndexBuilder, InvertedIndex, ParallelStats, PruneStats, SharedFloor, SideSpec, TermId,
};
use newslink_util::{Bytes, FxHashMap, FxHashSet, TopK};

use crate::indexer::{DocArtifacts, NewsLinkIndex};

/// The per-segment doc store: each document's subgraph embedding.
///
/// Live builds hold decoded embeddings (`Eager`). Segments opened from a
/// version-4 snapshot keep the *encoded* blob — a zero-copy [`Bytes`]
/// view, memory-mapped under the mmap backend — and decode one document
/// on first touch (`Lazy`). Scoring never reads the doc store (the
/// blended score is computed from the BOW/BON posting lists alone), so a
/// cold start pays no decode cost; only `explain`, merges and snapshot
/// rewrites fault embeddings in, and each is decoded at most once.
#[derive(Debug)]
pub(crate) enum DocStore {
    /// Decoded embeddings, aligned with local doc ids.
    Eager(Vec<DocEmbedding>),
    /// Encoded embeddings decoded on demand.
    Lazy {
        /// Concatenated `embed_codec` records.
        blob: Bytes,
        /// Cumulative end offset of each record in `blob`
        /// (non-decreasing; the last equals `blob.len()`).
        ends: Vec<u32>,
        /// Per-document decode-once cells.
        cells: Vec<OnceLock<DocEmbedding>>,
    },
}

impl DocStore {
    /// A lazy store over an encoded blob. `ends` must be non-decreasing
    /// record end offsets with `ends.last() == blob.len()` — the v4
    /// reader validates this before construction.
    pub(crate) fn lazy(blob: Bytes, ends: Vec<u32>) -> Self {
        debug_assert!(ends.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(ends.last().copied().unwrap_or(0) as usize, blob.len());
        let mut cells = Vec::with_capacity(ends.len());
        cells.resize_with(ends.len(), OnceLock::new);
        Self::Lazy {
            blob,
            ends,
            cells,
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Eager(v) => v.len(),
            Self::Lazy { ends, .. } => ends.len(),
        }
    }

    /// The embedding of one local doc, decoding on first touch.
    ///
    /// Panics when a lazy record fails to decode: record framing was
    /// validated at load and the section passed its CRC, so a decode
    /// failure means the checksum itself was forged — fail loudly
    /// rather than serve a wrong embedding.
    fn get(&self, local: usize) -> Option<&DocEmbedding> {
        match self {
            Self::Eager(v) => v.get(local),
            Self::Lazy { blob, ends, cells } => {
                let cell = cells.get(local)?;
                Some(cell.get_or_init(|| {
                    let start = if local == 0 { 0 } else { ends[local - 1] as usize };
                    let end = ends[local] as usize;
                    embed_codec::read_embedding(&mut &blob[start..end])
                        .expect("embedding record validated by section checksum at load")
                }))
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = &DocEmbedding> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }
}

/// Which of the two per-segment inverted indexes a scoring pass targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Word terms.
    Bow,
    /// Node terms.
    Bon,
}

impl Side {
    /// The scorer Equation 3 pins to this side: BM25 with length
    /// normalization for prose (BOW), without it for node streams (BON).
    pub(crate) fn scorer(self) -> Bm25 {
        match self {
            Side::Bow => Bm25::default(),
            Side::Bon => Bm25 { k1: 1.2, b: 0.0 },
        }
    }
}

/// One side's externally supplied global query state — the shard-side
/// half of the scatter-gather overlay. A router sums each shard's
/// [`NewsLinkIndex::side_overlay_stats`] (exact integer sums, so the
/// result is order-independent and equals the monolithic values), derives
/// the normalization divisor from the shards' pruned top-1 maxima, and
/// hands the totals back so every shard scores under the *cluster-wide*
/// statistics. `df` is aligned with `terms`; `terms` order is canonical —
/// the per-document float accumulation replays it, so every participant
/// must use the same sequence.
#[derive(Debug, Clone, Copy)]
pub struct SideOverlay<'a> {
    /// Query terms for this side, in the canonical (analysis) order.
    pub terms: &'a [String],
    /// Cluster-wide live collection statistics for this side.
    pub stats: CollectionStats,
    /// Cluster-wide live document frequency of each term, aligned with
    /// `terms` (0 for terms no live document carries).
    pub df: &'a [u32],
    /// Normalization divisor (1.0 when normalization is off or the
    /// side's global maximum raw score was not positive).
    pub norm: f64,
}

/// One immutable shard of a [`NewsLinkIndex`].
#[derive(Debug)]
pub struct IndexSegment {
    bow: InvertedIndex,
    bon: InvertedIndex,
    docs: DocStore,
    /// Global id of each segment-local document, strictly ascending.
    globals: Vec<u32>,
}

impl IndexSegment {
    /// Seal `(global id, artifacts)` pairs into an immutable segment. Ids
    /// must be strictly ascending.
    pub(crate) fn build(docs: Vec<(u32, DocArtifacts)>) -> Self {
        let mut bow = IndexBuilder::new();
        let mut bon = IndexBuilder::new();
        let mut embeddings = Vec::with_capacity(docs.len());
        let mut globals = Vec::with_capacity(docs.len());
        for (global, a) in docs {
            debug_assert!(
                globals.last().is_none_or(|&l| l < global),
                "segment ids must ascend"
            );
            let doc = bow.add_document(&a.analysis.terms);
            let bdoc = bon.add_document_counts(&bon_term_counts(&a.embedding));
            debug_assert_eq!(doc, bdoc, "BOW and BON doc ids must stay aligned");
            embeddings.push(a.embedding);
            globals.push(global);
        }
        Self {
            bow: bow.build(),
            bon: bon.build(),
            docs: DocStore::Eager(embeddings),
            globals,
        }
    }

    /// Rebuild from already-frozen parts with decoded embeddings
    /// (version-3 persistence, merges).
    pub(crate) fn from_parts(
        bow: InvertedIndex,
        bon: InvertedIndex,
        embeddings: Vec<DocEmbedding>,
        globals: Vec<u32>,
    ) -> Self {
        Self {
            bow,
            bon,
            docs: DocStore::Eager(embeddings),
            globals,
        }
    }

    /// Rebuild from already-frozen parts with a still-encoded doc store
    /// (version-4 persistence; `store` is typically a zero-copy view of
    /// the snapshot).
    pub(crate) fn from_lazy_parts(
        bow: InvertedIndex,
        bon: InvertedIndex,
        store: DocStore,
        globals: Vec<u32>,
    ) -> Self {
        Self {
            bow,
            bon,
            docs: store,
            globals,
        }
    }

    /// Merge two adjacent segments, physically dropping tombstoned
    /// documents (Lucene's expunge-on-merge). `a` must precede `b` in
    /// global-id order; the result preserves it.
    ///
    /// Documents are replayed from posting lists as `(term, tf)` counts —
    /// term frequencies, document frequencies and document lengths are
    /// reconstructed exactly, so overlay scoring is unchanged by the
    /// merge.
    pub(crate) fn merge(a: &IndexSegment, b: &IndexSegment, tombstones: &FxHashSet<u32>) -> Self {
        let mut bow = IndexBuilder::new();
        let mut bon = IndexBuilder::new();
        let mut embeddings = Vec::new();
        let mut globals = Vec::new();
        for seg in [a, b] {
            let bow_docs = doc_term_counts(&seg.bow);
            let bon_docs = doc_term_counts(&seg.bon);
            for (local, (bow_counts, bon_counts)) in
                bow_docs.into_iter().zip(bon_docs).enumerate()
            {
                let global = seg.globals[local];
                if tombstones.contains(&global) {
                    continue;
                }
                bow.add_document_counts(&bow_counts);
                bon.add_document_counts(&bon_counts);
                embeddings.push(seg.docs.get(local).expect("local id in range").clone());
                globals.push(global);
            }
        }
        Self {
            bow: bow.build(),
            bon: bon.build(),
            docs: DocStore::Eager(embeddings),
            globals,
        }
    }

    /// The shard's word-term index.
    pub fn bow(&self) -> &InvertedIndex {
        &self.bow
    }

    /// The shard's node-term index.
    pub fn bon(&self) -> &InvertedIndex {
        &self.bon
    }

    /// One side of the shard.
    pub(crate) fn side(&self, side: Side) -> &InvertedIndex {
        match side {
            Side::Bow => &self.bow,
            Side::Bon => &self.bon,
        }
    }

    /// Stored per-document embeddings in local doc-id order. Under a
    /// lazy (snapshot-backed) doc store this decodes every document it
    /// visits, so it belongs on rewrite paths, not serving paths.
    pub fn embeddings(&self) -> impl Iterator<Item = &DocEmbedding> + '_ {
        self.docs.iter()
    }

    /// The embedding of one segment-local document.
    pub(crate) fn embedding_at(&self, local: usize) -> Option<&DocEmbedding> {
        self.docs.get(local)
    }

    /// Global ids of this shard's documents (strictly ascending).
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }

    /// Documents in this shard (live or tombstoned).
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// True when the shard holds no documents.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Documents not covered by `tombstones`.
    pub(crate) fn live_count(&self, tombstones: &FxHashSet<u32>) -> usize {
        if tombstones.is_empty() {
            self.globals.len()
        } else {
            self.globals
                .iter()
                .filter(|g| !tombstones.contains(g))
                .count()
        }
    }

    /// The global id of a segment-local document.
    #[inline]
    pub(crate) fn global_of(&self, local: DocId) -> u32 {
        self.globals[local.index()]
    }

    /// The segment-local id of a global document, if stored here.
    pub(crate) fn local_of(&self, global: u32) -> Option<DocId> {
        self.globals
            .binary_search(&global)
            .ok()
            .map(|i| DocId(i as u32))
    }
}

/// Per-document `(term, tf)` lists of one inverted index, reconstructed
/// from its posting lists (term order = ascending source `TermId`).
fn doc_term_counts(index: &InvertedIndex) -> Vec<Vec<(String, u32)>> {
    let dict = index.dictionary();
    let mut per_doc: Vec<Vec<(String, u32)>> = Vec::new();
    per_doc.resize_with(index.doc_count(), Vec::new);
    for t in 0..dict.len() {
        let term = TermId(t as u32);
        let text = dict.term(term);
        for p in index.postings(term) {
            per_doc[p.doc.index()].push((text.to_string(), p.tf));
        }
    }
    per_doc
}

/// Gauge snapshot of a segmented index (exposed by `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Live (non-tombstoned) documents.
    pub docs: usize,
    /// Immutable segments.
    pub segments: usize,
    /// Deleted-but-not-yet-expunged documents.
    pub tombstones: usize,
    /// Segment merges performed over the index's lifetime.
    pub compactions: u64,
}

impl NewsLinkIndex {
    /// The immutable segments, in ascending global-id order.
    pub fn segments(&self) -> &[IndexSegment] {
        &self.segments
    }

    /// Number of immutable segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Deleted documents awaiting physical removal by compaction.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Segment merges performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Documents physically stored (live + tombstoned).
    pub fn total_docs(&self) -> usize {
        self.segments.iter().map(IndexSegment::len).sum()
    }

    /// Gauge snapshot for observability endpoints.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            docs: self.doc_count(),
            segments: self.segment_count(),
            tombstones: self.tombstone_count(),
            compactions: self.compactions(),
        }
    }

    /// True when `doc` is stored and not tombstoned.
    pub fn is_live(&self, doc: DocId) -> bool {
        !self.tombstones.contains(&doc.0) && self.locate(doc).is_some()
    }

    /// The stored embedding of a live document.
    pub fn embedding(&self, doc: DocId) -> Option<&DocEmbedding> {
        if self.tombstones.contains(&doc.0) {
            return None;
        }
        let (seg, local) = self.locate(doc)?;
        seg.embedding_at(local.index())
    }

    /// Live document embeddings in ascending global-id order.
    pub fn embeddings(&self) -> impl Iterator<Item = &DocEmbedding> {
        self.segments
            .iter()
            .flat_map(|s| s.globals.iter().zip(s.docs.iter()))
            .filter(|(g, _)| !self.tombstones.contains(g))
            .map(|(_, e)| e)
    }

    /// Live document ids, ascending. See [`crate::indexer::doc_ids`] for
    /// the ordering guarantee.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocId> + '_ {
        self.segments
            .iter()
            .flat_map(|s| s.globals.iter().copied())
            .filter(|g| !self.tombstones.contains(g))
            .map(DocId)
    }

    /// Find the segment holding `doc` (live or tombstoned) and its local
    /// id — binary search over the disjoint ascending segment ranges.
    pub(crate) fn locate(&self, doc: DocId) -> Option<(&IndexSegment, DocId)> {
        let id = doc.0;
        let si = self
            .segments
            .partition_point(|s| s.globals.last().is_some_and(|&last| last < id));
        let seg = self.segments.get(si)?;
        let local = seg.local_of(id)?;
        Some((seg, local))
    }

    /// Tombstone a document. Returns `false` for unknown or already
    /// deleted ids. The document stops matching searches immediately and
    /// is physically expunged by the next compaction that touches its
    /// segment.
    pub fn delete(&mut self, doc: DocId) -> bool {
        if self.tombstones.contains(&doc.0) || self.locate(doc).is_none() {
            return false;
        }
        self.tombstones.insert(doc.0);
        true
    }

    /// Allocate the next global document id. Ids are never reused, even
    /// when the reserving caller drops the document before sealing it.
    /// Advances by the index's stripe stride (1 unless
    /// [`Self::set_id_stripe`] pinned a cluster stripe).
    pub(crate) fn reserve_id(&mut self) -> DocId {
        let id = self.next_id;
        self.next_id += self.id_stride.max(1);
        DocId(id)
    }

    /// Append a sealed segment. Its ids must all be reserved (below
    /// `next_id`) and above every stored id, keeping segments sorted by
    /// disjoint ascending ranges.
    pub(crate) fn install_segment(&mut self, segment: IndexSegment) {
        if segment.is_empty() {
            return;
        }
        debug_assert!(
            segment.globals.last().is_some_and(|&l| l < self.next_id),
            "segment ids must be reserved before installation"
        );
        debug_assert!(
            self.segments
                .last()
                .and_then(|s| s.globals.last())
                .is_none_or(|&prev| prev < segment.globals[0]),
            "segments must stay sorted by ascending id ranges"
        );
        self.segments.push(segment);
    }

    /// Merge segments until at most `max_segments` (floor 1) remain,
    /// always picking the adjacent pair with the fewest live documents.
    /// Tombstoned documents inside merged pairs are physically dropped
    /// and their ids leave the tombstone set. Returns the number of
    /// merges performed.
    pub fn compact_to(&mut self, max_segments: usize) -> usize {
        let max = max_segments.max(1);
        let mut merges = 0usize;
        while self.segments.len() > max {
            self.merge_adjacent_pair();
            merges += 1;
        }
        // Force-merge semantics: compacting all the way down to one
        // segment also rewrites a lone segment that still carries
        // tombstones (as Lucene's forceMerge(1) expunges deletes even
        // when there is no merge partner).
        if max == 1 && !self.tombstones.is_empty() && self.segments.len() == 1 {
            let seg = self.segments.pop().expect("one segment");
            let rewritten = IndexSegment::merge(&seg, &IndexSegment::build(Vec::new()), &self.tombstones);
            for g in seg.globals() {
                self.tombstones.remove(g);
            }
            if !rewritten.is_empty() {
                self.segments.push(rewritten);
            }
            self.compactions += 1;
            merges += 1;
        }
        merges
    }

    /// Compact everything into (at most) one segment, expunging all
    /// tombstones it can reach.
    pub fn compact(&mut self) -> usize {
        self.compact_to(1)
    }

    fn merge_adjacent_pair(&mut self) {
        debug_assert!(self.segments.len() >= 2);
        let mut best = 0usize;
        let mut best_cost = usize::MAX;
        for i in 0..self.segments.len() - 1 {
            let cost = self.segments[i].live_count(&self.tombstones)
                + self.segments[i + 1].live_count(&self.tombstones);
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        let b = self.segments.remove(best + 1);
        let a = self.segments.remove(best);
        let merged = IndexSegment::merge(&a, &b, &self.tombstones);
        for g in a.globals.iter().chain(&b.globals) {
            self.tombstones.remove(g);
        }
        if !merged.is_empty() {
            self.segments.insert(best, merged);
        }
        self.compactions += 1;
    }

    /// Collection-wide BM25 statistics for one side, over live documents
    /// only (exact integer summation across segments).
    pub(crate) fn side_stats(&self, side: Side) -> CollectionStats {
        let mut stats = CollectionStats::default();
        for seg in &self.segments {
            let index = seg.side(side);
            if self.tombstones.is_empty() {
                stats.add(CollectionStats::from_index(index));
            } else {
                for (local, g) in seg.globals.iter().enumerate() {
                    if !self.tombstones.contains(g) {
                        stats.add_doc(index.doc_len(DocId(local as u32)));
                    }
                }
            }
        }
        stats
    }

    /// Collection-wide live document frequency of each query term on one
    /// side. With a single segment and no tombstones this equals the
    /// segment dictionary's doc-freq, i.e. the monolithic value.
    pub(crate) fn side_global_df<'q>(
        &self,
        side: Side,
        qtf: &FxHashMap<&'q str, u32>,
    ) -> FxHashMap<&'q str, u32> {
        let mut out: FxHashMap<&'q str, u32> = FxHashMap::default();
        for &term in qtf.keys() {
            let mut df = 0u32;
            for seg in &self.segments {
                let index = seg.side(side);
                if self.tombstones.is_empty() {
                    if let Some(id) = index.term_id(term) {
                        df += index.doc_freq(id);
                    }
                } else {
                    for p in index.postings_for(term) {
                        if !self.tombstones.contains(&seg.global_of(p.doc)) {
                            df += 1;
                        }
                    }
                }
            }
            if df > 0 {
                out.insert(term, df);
            }
        }
        out
    }

    /// The per-document liveness predicate for one segment's scan,
    /// monomorphized away from the hash probe when the tombstone set is
    /// empty. Both variants admit exactly the same documents (an empty
    /// set contains nothing), so which one a scan receives is invisible
    /// in its results — only in its per-posting cost.
    fn liveness<'a>(&'a self, seg: &'a IndexSegment) -> Liveness<'a> {
        if self.tombstones.is_empty() {
            Liveness::All
        } else {
            Liveness::Probe {
                tombstones: &self.tombstones,
                seg,
            }
        }
    }

    /// Fan out one side's scoring across segments under the global-stats
    /// overlay. Returns one global-id-keyed score map per segment, in
    /// segment order; `threads > 1` scores segments in parallel (results
    /// are identical — each map is computed independently). Query state
    /// (overlay stats, term frequencies, live document frequencies) is
    /// resolved once through [`SideWork`] and shared by every segment.
    pub(crate) fn score_side_parts(
        &self,
        side: Side,
        scorer: Bm25,
        query_terms: &[String],
        threads: usize,
    ) -> Vec<FxHashMap<DocId, f64>> {
        let Some(w) = self.side_work(side, scorer, query_terms, true) else {
            return Vec::new();
        };
        let score_one = |seg: &IndexSegment| -> FxHashMap<DocId, f64> {
            let live = self.liveness(seg);
            let local = score_segment(w.scorer, seg.side(side), w.stats, &w.qtf, &w.global_df, |d| {
                live.is_live(d)
            });
            local
                .into_iter()
                .map(|(d, s)| (DocId(seg.global_of(d)), s))
                .collect()
        };
        if threads <= 1 || self.segments.len() < 2 {
            self.segments.iter().map(score_one).collect()
        } else {
            crate::searcher::parallel_map(&self.segments, threads, score_one)
        }
    }

    /// BM25 top-k over the BOW side only — the "plain Lucene" view of the
    /// segmented index. Each segment runs MaxScore under the global-stats
    /// overlay; per-segment winners merge through one more
    /// `newslink_util::TopK`, so ties still resolve toward lower ids.
    pub fn bow_topk<S: AsRef<str>>(&self, query_terms: &[S], k: usize) -> Vec<(DocId, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let terms: Vec<String> = query_terms.iter().map(|t| t.as_ref().to_string()).collect();
        let Some(w) = self.side_work(Side::Bow, Bm25::default(), &terms, true) else {
            return Vec::new();
        };
        let mut merged = TopK::new(k);
        for seg in &self.segments {
            let live = self.liveness(seg);
            let hits = maxscore_search_with(
                seg.bow(),
                w.scorer,
                &terms,
                k,
                w.stats,
                |t| w.global_df.get(t).copied().unwrap_or(0),
                |d| live.is_live(d),
            );
            for h in hits {
                merged.push(h.score, DocId(seg.global_of(h.doc)));
            }
        }
        merged
            .into_sorted()
            .into_iter()
            .map(|(score, doc)| (doc, score))
            .collect()
    }

    /// Resolve one side's collection-wide query state (overlay stats,
    /// query term frequencies, live document frequencies) for the pruned
    /// evaluators. `None` when the side is inactive or has no live
    /// documents — matching the exhaustive path, which skips such sides
    /// entirely (their contribution is 0.0).
    fn side_work<'q>(
        &self,
        side: Side,
        scorer: Bm25,
        query_terms: &'q [String],
        active: bool,
    ) -> Option<SideWork<'q>> {
        if !active {
            return None;
        }
        let stats = self.side_stats(side);
        if stats.docs == 0 {
            return None;
        }
        let qtf = query_tf(query_terms);
        let global_df = self.side_global_df(side, &qtf);
        Some(SideWork {
            side,
            scorer,
            stats,
            qtf,
            global_df,
            norm: 1.0,
        })
    }

    /// Resolve a side against one segment: posting lists in the canonical
    /// query-term order (the `qtf` map's iteration order — exactly what
    /// `score_segment` walks), with overlay df and the current
    /// normalization divisor.
    fn side_spec<'i>(&self, seg: &'i IndexSegment, w: &SideWork<'_>) -> SideSpec<'i> {
        let index = seg.side(w.side);
        let mut terms = Vec::with_capacity(w.qtf.len());
        for (term, &q) in &w.qtf {
            let Some(id) = index.term_id(term) else { continue };
            let df = w.global_df.get(term).copied().unwrap_or(0);
            terms.push((index.postings(id), q, df));
        }
        SideSpec {
            index,
            scorer: w.scorer,
            stats: w.stats,
            terms,
            norm: w.norm,
        }
    }

    /// The side's global maximum raw score, found with a pruned top-1
    /// pass over all segments (β pinned so the raw value passes through
    /// the blend bit-exactly). Returns 0.0 when nothing matches — the
    /// same fold-over-nothing result as the exhaustive normalizer.
    ///
    /// With `threads > 1` each segment runs its own top-1 heap on a
    /// worker, pruning against a [`SharedFloor`] raised to the best score
    /// any segment has seen; the per-segment maxima fold with `max`,
    /// which is feed-order independent, so the result is bit-identical
    /// to the sequential pass (the floor only discards documents
    /// *strictly* below an already-witnessed score).
    fn side_top1(
        &self,
        w: &SideWork<'_>,
        threads: usize,
        prune: &mut PruneStats,
        parallel: &mut ParallelStats,
    ) -> f64 {
        let beta = match w.side {
            Side::Bow => 0.0,
            Side::Bon => 1.0,
        };
        let workers = threads.min(self.segments.len());
        if workers <= 1 || self.segments.len() < 2 {
            let mut top1: TopK<(DocId, f64, f64)> = TopK::new(1);
            for seg in &self.segments {
                let spec = self.side_spec(seg, w);
                let (bow, bon) = match w.side {
                    Side::Bow => (Some(&spec), None),
                    Side::Bon => (None, Some(&spec)),
                };
                let live = self.liveness(seg);
                blended_scan(
                    bow,
                    bon,
                    beta,
                    &f64::NEG_INFINITY,
                    |d| live.is_live(d),
                    |d| d,
                    &mut top1,
                    prune,
                );
            }
            return top1.into_sorted().first().map(|(s, _)| *s).unwrap_or(0.0);
        }
        let shared = SharedFloor::new();
        let parts = crate::searcher::parallel_map(&self.segments, workers, |seg| {
            let spec = self.side_spec(seg, w);
            let (bow, bon) = match w.side {
                Side::Bow => (Some(&spec), None),
                Side::Bon => (None, Some(&spec)),
            };
            let mut top1: TopK<(DocId, f64, f64)> = TopK::new(1);
            let mut seg_prune = PruneStats::default();
            let live = self.liveness(seg);
            blended_scan(
                bow,
                bon,
                beta,
                &shared,
                |d| live.is_live(d),
                |d| d,
                &mut top1,
                &mut seg_prune,
            );
            let max = top1.into_sorted().first().map(|(s, _)| *s);
            (max, seg_prune)
        });
        parallel.add(&shared.harvest(workers, self.segments.len()));
        let mut best = 0.0f64;
        for (max, seg_prune) in parts {
            prune.add(&seg_prune);
            if let Some(m) = max {
                best = best.max(m);
            }
        }
        best
    }

    /// Block-max pruned blended top-k over all live segments: Equation 3
    /// `(1-β)·bow + β·bon` evaluated document-at-a-time, **bit-identical**
    /// to the exhaustive score-map path (same scores, same tie order:
    /// earlier segment / lower doc id wins among equals).
    ///
    /// Each segment gets its own fresh `TopK(k)` whose threshold drives
    /// the pruning, and the per-segment survivors merge exactly like the
    /// exhaustive path's per-segment heaps. The heaps must not be shared:
    /// which of several *tied* documents a bounded heap retains depends on
    /// how higher-scoring pushes interleave with the tied ones, so a
    /// single heap carried across segments could keep a different tied doc
    /// than the oracle's per-segment-then-merge structure. Cross-segment
    /// pruning still happens through the `floor` argument — the merged
    /// heap's k-th score after the previous segments, below which no
    /// candidate can survive the merge (see [`blended_scan`] for why the
    /// skip is exact).
    ///
    /// With `normalize` set, each active side's global maximum is found
    /// first by a cheap pruned top-1 pass, then used as that side's
    /// divisor in the main scan — reproducing the exhaustive
    /// max-normalization exactly (a max over a set is feed-order
    /// independent, so sharing the top-1 heap across segments is safe
    /// there). Returns `(score, (doc, bow, bon))` tuples sorted by
    /// descending score plus the pruning and fan-out work counters.
    ///
    /// With `threads > 1` and multiple segments, segments are scanned
    /// concurrently on scoped workers pruning against a [`SharedFloor`]
    /// instead of left-to-right against the merged heap; see
    /// [`Self::blended_merge`] for why the results stay bit-identical.
    #[allow(clippy::type_complexity)]
    pub(crate) fn blended_topk(
        &self,
        beta: f64,
        bow_terms: &[String],
        bon_terms: &[String],
        normalize: bool,
        k: usize,
        threads: usize,
    ) -> (Vec<(f64, (DocId, f64, f64))>, PruneStats, ParallelStats) {
        let mut prune = PruneStats::default();
        let mut parallel = ParallelStats::default();
        if k == 0 {
            return (Vec::new(), prune, parallel);
        }
        let bon_bm25 = Bm25 { k1: 1.2, b: 0.0 };
        let mut bow = self.side_work(Side::Bow, Bm25::default(), bow_terms, beta < 1.0);
        let mut bon = self.side_work(Side::Bon, bon_bm25, bon_terms, beta > 0.0);
        if normalize {
            for w in [&mut bow, &mut bon].into_iter().flatten() {
                let max = self.side_top1(w, threads, &mut prune, &mut parallel);
                if max > 0.0 {
                    w.norm = max;
                }
            }
        }
        let ranked = self.blended_merge(
            beta,
            bow.as_ref(),
            bon.as_ref(),
            k,
            f64::NEG_INFINITY,
            threads,
            &mut prune,
            &mut parallel,
        );
        (ranked, prune, parallel)
    }

    /// The shared engine under [`Self::blended_topk`] and
    /// [`Self::blended_topk_overlay`]: scan every segment with a fresh
    /// `TopK(k)` and merge the survivors in ascending segment order.
    ///
    /// Sequentially (`threads ≤ 1` or a single segment) each segment
    /// prunes against the merged heap's k-th score after its left
    /// neighbors, exactly as before. In parallel each worker prunes
    /// against a [`SharedFloor`] — an atomic holding the best *full local
    /// heap's* k-th score any segment has published so far, seeded with
    /// the caller's external `floor`. Both floors are lower bounds on the
    /// final merged k-th score, and [`blended_scan`]'s skip condition
    /// discards only documents *strictly* below its floor, so the same
    /// survivor set reaches the same fresh-heap-then-merge structure in
    /// the same segment order: scores and tie order are bit-identical
    /// regardless of worker interleaving (see DESIGN.md §6l).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn blended_merge(
        &self,
        beta: f64,
        bow: Option<&SideWork<'_>>,
        bon: Option<&SideWork<'_>>,
        k: usize,
        floor: f64,
        threads: usize,
        prune: &mut PruneStats,
        parallel: &mut ParallelStats,
    ) -> Vec<(f64, (DocId, f64, f64))> {
        let workers = threads.min(self.segments.len());
        if workers <= 1 || self.segments.len() < 2 {
            let mut merged: TopK<(DocId, f64, f64)> = TopK::new(k);
            for seg in &self.segments {
                let bow_spec = bow.map(|w| self.side_spec(seg, w));
                let bon_spec = bon.map(|w| self.side_spec(seg, w));
                let mut seg_topk: TopK<(DocId, f64, f64)> = TopK::new(k);
                let live = self.liveness(seg);
                blended_scan(
                    bow_spec.as_ref(),
                    bon_spec.as_ref(),
                    beta,
                    &merged.threshold().unwrap_or(f64::NEG_INFINITY).max(floor),
                    |d| live.is_live(d),
                    |d| DocId(seg.global_of(d)),
                    &mut seg_topk,
                    prune,
                );
                for (score, item) in seg_topk.into_sorted() {
                    merged.push(score, item);
                }
            }
            return merged.into_sorted();
        }
        let shared = SharedFloor::seeded(floor);
        let parts = crate::searcher::parallel_map(&self.segments, workers, |seg| {
            let bow_spec = bow.map(|w| self.side_spec(seg, w));
            let bon_spec = bon.map(|w| self.side_spec(seg, w));
            let mut seg_topk: TopK<(DocId, f64, f64)> = TopK::new(k);
            let mut seg_prune = PruneStats::default();
            let live = self.liveness(seg);
            blended_scan(
                bow_spec.as_ref(),
                bon_spec.as_ref(),
                beta,
                &shared,
                |d| live.is_live(d),
                |d| DocId(seg.global_of(d)),
                &mut seg_topk,
                &mut seg_prune,
            );
            (seg_topk.into_sorted(), seg_prune)
        });
        parallel.add(&shared.harvest(workers, self.segments.len()));
        let mut merged: TopK<(DocId, f64, f64)> = TopK::new(k);
        for (part, seg_prune) in parts {
            prune.add(&seg_prune);
            for (score, item) in part {
                merged.push(score, item);
            }
        }
        merged.into_sorted()
    }

    /// One shard's contribution to the cluster overlay: this index's live
    /// collection statistics for `side` plus the live document frequency
    /// of every query term, aligned with `terms`. A router sums these
    /// across shards — both are exact integer sums, so the totals equal
    /// the monolithic values regardless of shard layout or reply order.
    pub fn side_overlay_stats(&self, side: Side, terms: &[String]) -> (CollectionStats, Vec<u32>) {
        let stats = self.side_stats(side);
        let qtf = query_tf(terms);
        let dfm = self.side_global_df(side, &qtf);
        let df = terms
            .iter()
            .map(|t| dfm.get(t.as_str()).copied().unwrap_or(0))
            .collect();
        (stats, df)
    }

    /// Resolve one side's query state from an externally supplied overlay
    /// instead of this index's own statistics. `None` mirrors the
    /// in-process path's skip conditions: inactive side, or no live
    /// document cluster-wide.
    fn side_work_from<'q>(
        &self,
        side: Side,
        overlay: &SideOverlay<'q>,
        active: bool,
    ) -> Option<SideWork<'q>> {
        if !active || overlay.stats.docs == 0 {
            return None;
        }
        let qtf = query_tf(overlay.terms);
        let mut global_df: FxHashMap<&'q str, u32> = FxHashMap::default();
        for (term, &df) in overlay.terms.iter().zip(overlay.df) {
            if df > 0 {
                global_df.insert(term.as_str(), df);
            }
        }
        Some(SideWork {
            side,
            scorer: side.scorer(),
            stats: overlay.stats,
            qtf,
            global_df,
            norm: overlay.norm,
        })
    }

    /// This shard's maximum raw score on one side under a cluster-wide
    /// overlay (β pinned, pruned top-1 across the shard's segments; 0.0
    /// when nothing matches). The router takes the max over shards —
    /// `max` over a set is feed-order independent, so the result equals
    /// the in-process [`Self::side_top1`] over the union. `overlay.norm`
    /// is ignored (the pass computes the divisor's input).
    pub fn side_top1_overlay(
        &self,
        side: Side,
        overlay: &SideOverlay<'_>,
        threads: usize,
        prune: &mut PruneStats,
        parallel: &mut ParallelStats,
    ) -> f64 {
        let overlay = SideOverlay { norm: 1.0, ..*overlay };
        match self.side_work_from(side, &overlay, true) {
            Some(w) => self.side_top1(&w, threads, prune, parallel),
            None => 0.0,
        }
    }

    /// Block-max pruned blended top-k under externally supplied overlays —
    /// the shard-side half of a scatter-gather search. Identical to
    /// [`Self::blended_topk`] except that collection statistics, document
    /// frequencies and normalization divisors come from the router's
    /// cluster-wide totals, and `floor` seeds the merged-heap threshold —
    /// or, with `threads > 1`, the [`SharedFloor`] — (scores at or below
    /// it can never survive the router's final merge, so pruning against
    /// it is exact; pass `NEG_INFINITY` when no floor is known).
    ///
    /// Because each shard pushes its per-segment survivors through the
    /// same fresh-heap-then-merge structure as the in-process path, the
    /// returned list is this shard's k best under the total order
    /// (score desc, global id asc) — which is what lets the router's
    /// id-ordered merge of shard lists reproduce the single-process
    /// result bit for bit.
    #[allow(clippy::type_complexity)]
    pub fn blended_topk_overlay(
        &self,
        beta: f64,
        bow: &SideOverlay<'_>,
        bon: &SideOverlay<'_>,
        k: usize,
        floor: f64,
        threads: usize,
    ) -> (Vec<(f64, (DocId, f64, f64))>, PruneStats, ParallelStats) {
        let mut prune = PruneStats::default();
        let mut parallel = ParallelStats::default();
        if k == 0 {
            return (Vec::new(), prune, parallel);
        }
        let bow_w = self.side_work_from(Side::Bow, bow, beta < 1.0);
        let bon_w = self.side_work_from(Side::Bon, bon, beta > 0.0);
        let ranked = self.blended_merge(
            beta,
            bow_w.as_ref(),
            bon_w.as_ref(),
            k,
            floor,
            threads,
            &mut prune,
            &mut parallel,
        );
        (ranked, prune, parallel)
    }

    /// Exhaustive cursor-driven raw scores of one side, one vector per
    /// segment in segment order, each ascending by (global) doc id with
    /// per-document sums bit-identical to
    /// [`NewsLinkIndex::score_side_parts`]'s map entries. Feeds the
    /// Threshold Algorithm's ranked lists without building hash maps.
    pub(crate) fn side_scan_parts(
        &self,
        side: Side,
        scorer: Bm25,
        query_terms: &[String],
        threads: usize,
    ) -> Vec<Vec<(DocId, f64)>> {
        let Some(w) = self.side_work(side, scorer, query_terms, true) else {
            return Vec::new();
        };
        let scan_one = |seg: &IndexSegment| -> Vec<(DocId, f64)> {
            let spec = self.side_spec(seg, &w);
            let mut out = Vec::new();
            let live = self.liveness(seg);
            side_scan(&spec, |d| live.is_live(d), &mut out);
            out.into_iter()
                .map(|(d, s)| (DocId(seg.global_of(d)), s))
                .collect()
        };
        if threads <= 1 || self.segments.len() < 2 {
            self.segments.iter().map(scan_one).collect()
        } else {
            crate::searcher::parallel_map(&self.segments, threads, scan_one)
        }
    }
}

/// The per-segment document liveness test, resolved once per scan so a
/// tombstone-free index never pays a hash probe per posting: `All` is a
/// constant `true` the optimizer folds away, `Probe` consults the real
/// tombstone set. Both admit exactly the same documents when the set is
/// empty, so the choice cannot change any result.
enum Liveness<'a> {
    /// No tombstones: every document is live.
    All,
    /// Probe the tombstone set by the document's global id.
    Probe {
        tombstones: &'a FxHashSet<u32>,
        seg: &'a IndexSegment,
    },
}

impl Liveness<'_> {
    /// Whether segment-local document `d` is live.
    #[inline(always)]
    fn is_live(&self, d: DocId) -> bool {
        match self {
            Liveness::All => true,
            Liveness::Probe { tombstones, seg } => !tombstones.contains(&seg.global_of(d)),
        }
    }
}

/// One side's resolved query state, computed **exactly once per (side,
/// query)** — overlay document frequencies in particular are integer
/// sums over every segment's postings, so hoisting them here keeps the
/// top-1 normalization pass and the main scan from re-walking the
/// dictionaries — and shared across segments by the pruned evaluators:
/// overlay statistics, query term frequencies (whose map iteration order
/// *is* the canonical accumulation order), live document frequencies,
/// and the normalization divisor.
struct SideWork<'q> {
    side: Side,
    scorer: Bm25,
    stats: CollectionStats,
    qtf: FxHashMap<&'q str, u32>,
    global_df: FxHashMap<&'q str, u32>,
    norm: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NewsLinkConfig;
    use crate::indexer::index_corpus;
    use newslink_kg::{EntityType, GraphBuilder, KnowledgeGraph, LabelIndex};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        b.add_edge(kunar, khyber, "borders", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan responded near Khyber.",
        "Pakistan held talks in Khyber province.",
        "Taliban activity reported again in Kunar.",
        "A plain story with no entities.",
        "Kunar and Khyber braced for winter.",
    ];

    #[test]
    fn segment_docs_controls_sharding() {
        let (g, li) = world();
        let mono = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        assert_eq!(mono.segment_count(), 1);
        let sharded = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(2),
            DOCS,
        );
        assert_eq!(sharded.segment_count(), 3);
        assert_eq!(sharded.doc_count(), DOCS.len());
        // Segments hold disjoint ascending id ranges.
        let all: Vec<u32> = sharded
            .segments()
            .iter()
            .flat_map(|s| s.globals().iter().copied())
            .collect();
        assert_eq!(all, (0..DOCS.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn locate_and_embedding_resolve_across_segments() {
        let (g, li) = world();
        let idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(2),
            DOCS,
        );
        for d in 0..DOCS.len() as u32 {
            let (seg, local) = idx.locate(DocId(d)).expect("doc located");
            assert_eq!(seg.global_of(local), d);
            assert!(idx.embedding(DocId(d)).is_some());
        }
        assert!(idx.locate(DocId(99)).is_none());
        assert!(idx.embedding(DocId(99)).is_none());
    }

    #[test]
    fn delete_tombstones_and_compaction_expunges() {
        let (g, li) = world();
        let mut idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(1),
            DOCS,
        );
        assert_eq!(idx.segment_count(), 5);
        assert!(idx.delete(DocId(1)));
        assert!(!idx.delete(DocId(1)), "double delete");
        assert!(!idx.delete(DocId(42)), "unknown id");
        assert_eq!(idx.tombstone_count(), 1);
        assert_eq!(idx.doc_count(), 4);
        assert!(idx.embedding(DocId(1)).is_none());

        let merges = idx.compact_to(1);
        assert_eq!(merges, 4);
        assert_eq!(idx.segment_count(), 1);
        assert_eq!(idx.compactions(), 4);
        assert_eq!(idx.tombstone_count(), 0, "expunged on merge");
        assert_eq!(idx.doc_count(), 4);
        // Surviving ids are unchanged (stable across compaction).
        let ids: Vec<u32> = idx.doc_ids().map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 2, 3, 4]);
    }

    #[test]
    fn stats_snapshot_tracks_lifecycle() {
        let (g, li) = world();
        let mut idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(2),
            DOCS,
        );
        let s0 = idx.stats();
        assert_eq!(
            s0,
            IndexStats {
                docs: 5,
                segments: 3,
                tombstones: 0,
                compactions: 0
            }
        );
        idx.delete(DocId(0));
        idx.compact_to(1);
        let s1 = idx.stats();
        assert_eq!(s1.docs, 4);
        assert_eq!(s1.segments, 1);
        assert_eq!(s1.tombstones, 0);
        assert_eq!(s1.compactions, 2);
    }

    #[test]
    fn bow_topk_matches_monolithic_bm25() {
        let (g, li) = world();
        let mono = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let sharded = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(2),
            DOCS,
        );
        let query = ["kunar", "khyber", "pakistan"];
        let a = mono.bow_topk(&query, 4);
        let b = sharded.bow_topk(&query, 4);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
    }

    /// The empty-tombstone fast path ([`Liveness::All`]) and the hash
    /// probe it replaces must admit the same documents: pruned results
    /// are bit-identical under both, per segment.
    #[test]
    fn liveness_fast_path_matches_probe() {
        let (g, li) = world();
        let idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(2),
            DOCS,
        );
        assert!(idx.tombstones.is_empty());
        let terms: Vec<String> = ["kunar", "khyber", "pakistan", "taliban"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let w = idx
            .side_work(Side::Bow, Bm25::default(), &terms, true)
            .expect("live side");
        let empty = FxHashSet::default();
        let mut hits = 0;
        for seg in &idx.segments {
            let spec = idx.side_spec(seg, &w);
            let run = |live: Liveness<'_>| {
                let mut topk: TopK<(DocId, f64, f64)> = TopK::new(4);
                let mut prune = PruneStats::default();
                blended_scan(
                    Some(&spec),
                    None,
                    0.0,
                    &f64::NEG_INFINITY,
                    |d| live.is_live(d),
                    |d| DocId(seg.global_of(d)),
                    &mut topk,
                    &mut prune,
                );
                topk.into_sorted()
            };
            let fast = run(Liveness::All);
            let probe = run(Liveness::Probe {
                tombstones: &empty,
                seg,
            });
            assert_eq!(fast.len(), probe.len());
            hits += fast.len();
            for (a, b) in fast.iter().zip(&probe) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1, b.1);
            }
        }
        assert!(hits > 0);
    }

    /// Threaded segment fan-out under the shared floor reproduces the
    /// sequential merged-threshold scan bit for bit — scores, docs and
    /// tie order — and reports the fan-out in [`ParallelStats`].
    #[test]
    fn parallel_fan_out_matches_sequential() {
        let (g, li) = world();
        let bow_terms: Vec<String> = ["kunar", "khyber", "pakistan", "taliban"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let bon_terms: Vec<String> =
            ["n0", "n1", "n2", "n3"].iter().map(|s| s.to_string()).collect();
        let mut idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(1),
            DOCS,
        );
        assert!(idx.segment_count() >= 4);
        assert!(idx.delete(DocId(1)));
        for beta in [0.0, 0.4, 1.0] {
            for k in [1, 3, 100] {
                let (seq, _, seq_par) =
                    idx.blended_topk(beta, &bow_terms, &bon_terms, true, k, 1);
                let (par, _, par_stats) =
                    idx.blended_topk(beta, &bow_terms, &bon_terms, true, k, 4);
                assert_eq!(seq_par, ParallelStats::default());
                assert!(par_stats.workers >= 2, "beta={beta} k={k}");
                assert_eq!(seq.len(), par.len(), "beta={beta} k={k}");
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "score bits");
                    assert_eq!(a.1 .0, b.1 .0, "doc / tie order");
                    assert_eq!(a.1 .1.to_bits(), b.1 .1.to_bits(), "bow bits");
                    assert_eq!(a.1 .2.to_bits(), b.1 .2.to_bits(), "bon bits");
                }
            }
        }
    }

    /// The scatter-gather algebra, exercised in-process: stripe the corpus
    /// across shard indexes, sum overlay statistics, take the max of the
    /// per-shard top-1 maxima as each side's divisor, run every shard's
    /// `blended_topk_overlay`, and merge the union id-ordered through one
    /// `TopK`. Every score bit and the tie order must match the
    /// single-index `blended_topk`.
    #[test]
    fn overlay_scatter_gather_is_bit_identical_to_monolithic() {
        let (g, li) = world();
        let config = NewsLinkConfig::default().with_segment_docs(2);
        let bow_terms: Vec<String> = ["kunar", "khyber", "pakistan", "taliban"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let bon_terms: Vec<String> =
            ["n0", "n1", "n2", "n3"].iter().map(|s| s.to_string()).collect();
        let k = 4;
        for shard_count in [1u32, 2, 3] {
            let mut mono = index_corpus(&g, &li, &config, DOCS);
            let mut shards: Vec<NewsLinkIndex> = (0..shard_count)
                .map(|s| {
                    crate::indexer::index_corpus_sharded(&g, &li, &config, None, DOCS, s, shard_count)
                })
                .collect();
            // Tombstone one document on its owning shard and the oracle.
            assert!(mono.delete(DocId(1)));
            assert!(shards[(1 % shard_count) as usize].delete(DocId(1)));
            for beta in [0.0, 0.2, 1.0] {
                let expected = mono.blended_topk(beta, &bow_terms, &bon_terms, true, k, 1).0;

                // Phase 1: exact integer sums of per-shard statistics.
                let mut totals = [(CollectionStats::default(), vec![0u32; bow_terms.len()]),
                    (CollectionStats::default(), vec![0u32; bon_terms.len()])];
                for shard in &shards {
                    for (slot, (side, terms)) in totals
                        .iter_mut()
                        .zip([(Side::Bow, &bow_terms), (Side::Bon, &bon_terms)])
                    {
                        let (stats, df) = shard.side_overlay_stats(side, terms);
                        slot.0.docs += stats.docs;
                        slot.0.total_len += stats.total_len;
                        for (acc, d) in slot.1.iter_mut().zip(&df) {
                            *acc += d;
                        }
                    }
                }
                // Phase 2: each side's divisor is the max of shard maxima.
                let mut prune = PruneStats::default();
                let mut norms = [1.0f64; 2];
                for (i, terms) in [&bow_terms, &bon_terms].into_iter().enumerate() {
                    let side = if i == 0 { Side::Bow } else { Side::Bon };
                    let ov = SideOverlay {
                        terms,
                        stats: totals[i].0,
                        df: &totals[i].1,
                        norm: 1.0,
                    };
                    let mut parallel = ParallelStats::default();
                    let max = shards
                        .iter()
                        .map(|s| s.side_top1_overlay(side, &ov, 1, &mut prune, &mut parallel))
                        .fold(0.0f64, f64::max);
                    if max > 0.0 {
                        norms[i] = max;
                    }
                }

                // Phase 3: gather shard lists, merge id-ordered.
                let bow_ov = SideOverlay {
                    terms: &bow_terms,
                    stats: totals[0].0,
                    df: &totals[0].1,
                    norm: norms[0],
                };
                let bon_ov = SideOverlay {
                    terms: &bon_terms,
                    stats: totals[1].0,
                    df: &totals[1].1,
                    norm: norms[1],
                };
                let mut union: Vec<(f64, (DocId, f64, f64))> = Vec::new();
                for shard in &shards {
                    let (hits, _, _) =
                        shard.blended_topk_overlay(beta, &bow_ov, &bon_ov, k, f64::NEG_INFINITY, 1);
                    union.extend(hits);
                }
                union.sort_by_key(|(_, (doc, _, _))| doc.0);
                let mut merged: TopK<(DocId, f64, f64)> = TopK::new(k);
                for (score, item) in union {
                    merged.push(score, item);
                }
                let got = merged.into_sorted();

                assert_eq!(got.len(), expected.len(), "shards={shard_count} beta={beta}");
                for (x, y) in got.iter().zip(&expected) {
                    assert_eq!(x.1 .0, y.1 .0, "doc order, shards={shard_count} beta={beta}");
                    assert_eq!(x.0.to_bits(), y.0.to_bits(), "score bits");
                    assert_eq!(x.1 .1.to_bits(), y.1 .1.to_bits(), "bow bits");
                    assert_eq!(x.1 .2.to_bits(), y.1 .2.to_bits(), "bon bits");
                }
            }
        }
    }
}
