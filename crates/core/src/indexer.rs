//! Corpus indexing: the NS component's *index building* half (§VI).
//!
//! For every document the pipeline runs NLP analysis, embeds each entity
//! group of the maximal co-occurrence set to a `G*` (or TreeEmb), and
//! feeds two inverted indexes: a BOW index over analyzed word terms and a
//! BON index over node terms. Documents whose groups all fail to embed are
//! kept searchable by text (the paper filters them from its corpus; we
//! record them so experiments can report the same coverage statistic).
//!
//! The index itself is *segmented* (see [`crate::segment`]): documents are
//! chunked by `config.segment_docs` into immutable [`IndexSegment`]s that
//! build in parallel across `config.effective_threads`. The default
//! (`segment_docs = 0`) seals the whole corpus into one segment — the
//! degenerate case every pre-segmentation behaviour reduces to.

use std::time::Instant;

use newslink_embed::{
    find_lcag, find_tree_embedding, CachedModel, DocEmbedding, EmbeddingCache,
};
use newslink_kg::{KnowledgeGraph, LabelIndex};
use newslink_nlp::{DocumentAnalysis, MatchStats, NlpPipeline};
use newslink_text::DocId;
use newslink_util::{CacheStats, ComponentTimer, FxHashSet};

use crate::config::{EmbeddingModel, NewsLinkConfig};
use crate::segment::IndexSegment;

/// The frozen search-side state for one corpus: an ordered set of
/// immutable segments plus a tombstone set ([`crate::segment`] holds the
/// segment-management and fan-out scoring machinery).
#[derive(Debug)]
pub struct NewsLinkIndex {
    /// Immutable shards sorted by disjoint ascending global-id ranges.
    pub(crate) segments: Vec<IndexSegment>,
    /// Deleted-but-not-expunged global ids.
    pub(crate) tombstones: FxHashSet<u32>,
    /// Next global id to assign; ids are never reused.
    pub(crate) next_id: u32,
    /// Allocation stride: fresh ids advance by this much, keeping a
    /// cluster shard's mints on its own modular stripe (1 = dense ids,
    /// the single-process default). Not persisted — a shard re-pins its
    /// stripe with [`NewsLinkIndex::set_id_stripe`] after every load.
    pub(crate) id_stride: u32,
    /// Segment merges performed over this index's lifetime.
    pub(crate) compactions: u64,
    /// Aggregated entity matching statistics (Table V's numerator /
    /// denominator).
    pub match_stats: MatchStats,
    /// Documents for which at least one entity group embedded.
    pub embedded_docs: usize,
    /// Accumulated per-component indexing time ("nlp", "ne", "ns").
    pub timer: ComponentTimer,
    /// Group-memo cache activity during this indexing run (all zeros when
    /// the run was uncached).
    pub cache_stats: CacheStats,
}

impl NewsLinkIndex {
    /// An index with no documents (the live engine's starting state).
    pub(crate) fn empty() -> Self {
        Self {
            segments: Vec::new(),
            tombstones: FxHashSet::default(),
            next_id: 0,
            id_stride: 1,
            compactions: 0,
            match_stats: MatchStats::default(),
            embedded_docs: 0,
            timer: ComponentTimer::new(),
            cache_stats: CacheStats::default(),
        }
    }

    /// Number of live (non-tombstoned) documents.
    pub fn doc_count(&self) -> usize {
        self.total_docs() - self.tombstones.len()
    }

    /// Fraction of indexed documents with a non-empty subgraph embedding
    /// (the paper reports 96.3% for CNN, 91.2% for Kaggle). This is an
    /// indexing-time statistic: its denominator counts every document
    /// ever sealed into the index, including later-tombstoned ones that
    /// compaction has not yet expunged.
    pub fn embedded_ratio(&self) -> f64 {
        let total = self.total_docs();
        if total == 0 {
            0.0
        } else {
            self.embedded_docs as f64 / total as f64
        }
    }

    /// Pin the id allocator to the modular stripe `shard (mod of)`:
    /// future fresh ids are ≡ `shard`, advancing by `of`, so mints from
    /// `of` cluster shards can never collide. Fast-forwards the allocator
    /// to the smallest on-stripe id at or above its current position —
    /// call this after every load (the stripe is a deployment property,
    /// not part of the snapshot). `of == 0` or `shard >= of` is a caller
    /// bug and panics.
    pub fn set_id_stripe(&mut self, shard: u32, of: u32) {
        assert!(of > 0 && shard < of, "stripe {shard} of {of} is malformed");
        self.id_stride = of;
        let offset = (shard + of - self.next_id % of) % of;
        self.next_id += offset;
    }
}

/// Per-document artifacts produced by the embedding stage.
pub(crate) struct DocArtifacts {
    pub analysis: DocumentAnalysis,
    pub embedding: DocEmbedding,
    pub nlp_nanos: u64,
    pub ne_nanos: u64,
}

/// Run NLP + NE for one document (uncached).
pub(crate) fn embed_one(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    text: &str,
) -> DocArtifacts {
    embed_one_with(graph, label_index, config, None, text)
}

/// Run NLP + NE for one document, consulting `cache` for every entity
/// group when provided. Cached and uncached runs produce identical
/// artifacts (see `newslink_embed::cache`); only the timings differ.
pub(crate) fn embed_one_with(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    cache: Option<&EmbeddingCache>,
    text: &str,
) -> DocArtifacts {
    let nlp = NlpPipeline::new(graph, label_index);
    let t0 = Instant::now();
    let analysis = nlp.analyze_document(text);
    let nlp_nanos = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let mut groups = Vec::new();
    for set in &analysis.entity_groups {
        let labels: Vec<String> = set.iter().cloned().collect();
        let result = match (cache, config.model) {
            (Some(c), EmbeddingModel::Lcag) => {
                c.embed_group(graph, label_index, &labels, &config.search, CachedModel::Lcag)
            }
            (Some(c), EmbeddingModel::Tree) => {
                c.embed_group(graph, label_index, &labels, &config.search, CachedModel::Tree)
            }
            (None, EmbeddingModel::Lcag) => find_lcag(graph, label_index, &labels, &config.search),
            (None, EmbeddingModel::Tree) => {
                find_tree_embedding(graph, label_index, &labels, &config.search)
            }
        };
        // Groups that fail to embed (no sources / disconnected / budget)
        // simply contribute nothing, as in the paper's corpus filtering.
        if let Ok(g) = result {
            groups.push(g);
        }
    }
    let ne_nanos = t1.elapsed().as_nanos() as u64;

    DocArtifacts {
        analysis,
        embedding: DocEmbedding::new(groups),
        nlp_nanos,
        ne_nanos,
    }
}

/// Embed and index a whole corpus.
///
/// Both stages parallelize across `config.threads` (the paper notes corpus
/// embedding "can easily be parallelized"): embedding chunks documents
/// across worker threads, and with `config.segment_docs > 0` the sealed
/// segments build concurrently too. Document ids are assigned before the
/// fan-out, so the result is deterministic and identical to a serial run.
pub fn index_corpus<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    texts: &[S],
) -> NewsLinkIndex {
    // A run-local cache: recurring entity groups across the corpus embed
    // once. Engine-owned callers share a longer-lived cache instead via
    // [`index_corpus_with`].
    let local = if config.cache.enabled {
        Some(EmbeddingCache::new(
            config.cache.group_capacity,
            config.cache.distance_capacity,
        ))
    } else {
        None
    };
    index_corpus_with(graph, label_index, config, local.as_ref(), texts)
}

/// [`index_corpus`] against a caller-owned [`EmbeddingCache`] (pass `None`
/// for a fully uncached run). The cache is read and populated from every
/// worker thread.
pub fn index_corpus_with<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    cache: Option<&EmbeddingCache>,
    texts: &[S],
) -> NewsLinkIndex {
    index_corpus_stripe(graph, label_index, config, cache, texts, 0, 1)
}

/// Build one cluster shard's slice of a corpus: documents at positions
/// `i ≡ shard (mod shard_count)` keep their corpus-order global id `i`,
/// and the id allocator continues on the same stripe. The union of the
/// `shard_count` shard builds is document-for-document, id-for-id the
/// single-process [`index_corpus_with`] build of the whole corpus —
/// which, combined with the global-stats overlay, is what keeps a
/// scatter-gather search bit-identical to the in-process path.
pub fn index_corpus_sharded<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    cache: Option<&EmbeddingCache>,
    texts: &[S],
    shard: u32,
    shard_count: u32,
) -> NewsLinkIndex {
    assert!(
        shard_count > 0 && shard < shard_count,
        "stripe {shard} of {shard_count} is malformed"
    );
    index_corpus_stripe(graph, label_index, config, cache, texts, shard, shard_count)
}

fn index_corpus_stripe<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    cache: Option<&EmbeddingCache>,
    texts: &[S],
    shard: u32,
    shard_count: u32,
) -> NewsLinkIndex {
    let before = cache.map(|c| c.group_stats()).unwrap_or_default();
    // The stripe's documents with their corpus-order global ids. Ids are
    // fixed before any fan-out, so the result is deterministic.
    let (ids, kept): (Vec<u32>, Vec<&S>) = texts
        .iter()
        .enumerate()
        .filter(|(i, _)| *i as u32 % shard_count == shard)
        .map(|(i, t)| (i as u32, t))
        .unzip();
    let threads = config.effective_threads(kept.len());
    let artifacts: Vec<DocArtifacts> = if threads <= 1 {
        kept.iter()
            .map(|t| embed_one_with(graph, label_index, config, cache, t.as_ref()))
            .collect()
    } else {
        parallel_embed(graph, label_index, config, cache, threads, &kept)
    };

    let mut timer = ComponentTimer::new();
    let mut match_stats = MatchStats::default();
    let mut embedded_docs = 0;
    for a in &artifacts {
        timer.record("nlp", std::time::Duration::from_nanos(a.nlp_nanos));
        timer.record("ne", std::time::Duration::from_nanos(a.ne_nanos));
        match_stats.identified += a.analysis.stats.identified;
        match_stats.matched += a.analysis.stats.matched;
        if !a.embedding.is_empty() {
            embedded_docs += 1;
        }
    }

    let total = artifacts.len();
    let t_ns = Instant::now();
    let chunk_size = if config.segment_docs == 0 {
        total.max(1)
    } else {
        config.segment_docs
    };
    let mut chunks: Vec<Vec<(u32, DocArtifacts)>> = Vec::new();
    {
        let mut it = ids.into_iter().zip(artifacts);
        loop {
            let chunk: Vec<_> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
    }
    let build_threads = config.effective_threads(chunks.len());
    let segments: Vec<IndexSegment> = if build_threads <= 1 || chunks.len() < 2 {
        chunks.into_iter().map(IndexSegment::build).collect()
    } else {
        parallel_build_segments(chunks, build_threads)
    };
    timer.record_batch("ns", t_ns.elapsed(), total.max(1) as u64);

    // The allocator resumes past the whole corpus, on this stripe.
    let n = texts.len() as u32;
    let next_id = n + (shard + shard_count - n % shard_count) % shard_count;
    NewsLinkIndex {
        segments: segments.into_iter().filter(|s| !s.is_empty()).collect(),
        tombstones: FxHashSet::default(),
        next_id,
        id_stride: shard_count,
        compactions: 0,
        match_stats,
        embedded_docs,
        timer,
        cache_stats: cache
            .map(|c| c.group_stats().since(&before))
            .unwrap_or_default(),
    }
}

/// Chunked parallel embedding via crossbeam scoped threads.
fn parallel_embed<S: AsRef<str> + Sync>(
    graph: &KnowledgeGraph,
    label_index: &LabelIndex,
    config: &NewsLinkConfig,
    cache: Option<&EmbeddingCache>,
    threads: usize,
    texts: &[S],
) -> Vec<DocArtifacts> {
    let chunk = texts.len().div_ceil(threads);
    let mut out: Vec<Option<DocArtifacts>> = Vec::new();
    out.resize_with(texts.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut slots = out.as_mut_slice();
        let mut offset = 0usize;
        let mut handles = Vec::new();
        while offset < texts.len() {
            let take = chunk.min(texts.len() - offset);
            let (head, rest) = slots.split_at_mut(take);
            slots = rest;
            let batch = &texts[offset..offset + take];
            handles.push(scope.spawn(move |_| {
                for (slot, text) in head.iter_mut().zip(batch) {
                    *slot = Some(embed_one_with(graph, label_index, config, cache, text.as_ref()));
                }
            }));
            offset += take;
        }
        for h in handles {
            h.join().expect("embedding worker panicked");
        }
    })
    .expect("crossbeam scope failed");
    out.into_iter().map(|a| a.expect("all docs embedded")).collect()
}

/// Seal chunks into segments on scoped worker threads. Chunks carry their
/// pre-assigned global ids, so build order cannot affect the result.
fn parallel_build_segments(
    mut chunks: Vec<Vec<(u32, DocArtifacts)>>,
    threads: usize,
) -> Vec<IndexSegment> {
    let per = chunks.len().div_ceil(threads);
    let mut out: Vec<Option<IndexSegment>> = Vec::new();
    out.resize_with(chunks.len(), || None);
    std::thread::scope(|scope| {
        let mut slots = out.as_mut_slice();
        while !chunks.is_empty() {
            let take = per.min(chunks.len());
            let group: Vec<Vec<(u32, DocArtifacts)>> = chunks.drain(..take).collect();
            let (head, rest) = slots.split_at_mut(take);
            slots = rest;
            scope.spawn(move || {
                for (slot, chunk) in head.iter_mut().zip(group) {
                    *slot = Some(IndexSegment::build(chunk));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("all segments built"))
        .collect()
}

/// Live document ids of an index, in ascending order.
///
/// Ordering guarantee: at build time ids are **dense** (`0..doc_count`)
/// in corpus order, regardless of `segment_docs` or thread count — ids
/// are assigned before the segment-build fan-out. Afterwards ids are
/// **stable**: deletion and compaction never renumber a surviving
/// document, and reclaimed ids are never reused for new documents (live
/// inserts always draw fresh ids from `next_id`). The sequence therefore
/// stays strictly ascending but may grow gaps once documents are
/// deleted.
pub fn doc_ids(index: &NewsLinkIndex) -> impl Iterator<Item = DocId> + '_ {
    index.doc_ids()
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let kunar = b.add_node("Kunar", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let lahore = b.add_node("Lahore", EntityType::Gpe);
        b.add_edge(kunar, khyber, "shares border with", 1);
        b.add_edge(taliban, kunar, "operates in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(lahore, pakistan, "located in", 1);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    const DOCS: &[&str] = &[
        "Taliban attacked Kunar. Pakistan forces responded near Khyber.",
        "Bombing hit Lahore. Pakistan blamed Taliban.",
        "A plain story with no known names at all.",
    ];

    #[test]
    fn index_builds_aligned_bow_and_bon() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        assert_eq!(idx.doc_count(), 3);
        assert_eq!(idx.segment_count(), 1);
        let seg = &idx.segments()[0];
        assert_eq!(seg.bow().doc_count(), 3);
        assert_eq!(seg.bon().doc_count(), 3);
        assert_eq!(idx.embedded_docs, 2);
        assert!((idx.embedded_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn embeddings_contain_induced_entities() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        // Doc 0 mentions Taliban+Kunar+Pakistan+Khyber; its embedding
        // connects them.
        assert!(!idx.embedding(DocId(0)).unwrap().is_empty());
        // Doc 2 has no entities -> empty embedding.
        assert!(idx.embedding(DocId(2)).unwrap().is_empty());
        let _ = g;
    }

    #[test]
    fn parallel_indexing_matches_serial() {
        let (g, li) = world();
        let serial = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        let par = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_threads(3),
            DOCS,
        );
        assert_eq!(serial.doc_count(), par.doc_count());
        assert_eq!(serial.embedded_docs, par.embedded_docs);
        for (a, b) in serial.embeddings().zip(par.embeddings()) {
            assert_eq!(a.all_nodes(), b.all_nodes());
        }
        assert_eq!(
            serial.match_stats.identified,
            par.match_stats.identified
        );
    }

    #[test]
    fn parallel_segment_build_matches_serial() {
        let (g, li) = world();
        let serial = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default().with_segment_docs(1),
            DOCS,
        );
        let par = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default()
                .with_segment_docs(1)
                .with_threads(3),
            DOCS,
        );
        assert_eq!(serial.segment_count(), 3);
        assert_eq!(par.segment_count(), 3);
        for (a, b) in serial.segments().iter().zip(par.segments()) {
            assert_eq!(a.globals(), b.globals());
            assert_eq!(a.bow().doc_count(), b.bow().doc_count());
            assert_eq!(a.bon().doc_count(), b.bon().doc_count());
        }
    }

    #[test]
    fn tree_model_indexes_too() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_model(EmbeddingModel::Tree);
        let idx = index_corpus(&g, &li, &cfg, DOCS);
        assert_eq!(idx.embedded_docs, 2);
        // Tree embeddings never exceed LCAG embeddings in node count.
        let lcag = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        for (t, l) in idx.embeddings().zip(lcag.embeddings()) {
            assert!(t.all_nodes().len() <= l.all_nodes().len());
        }
    }

    #[test]
    fn timers_record_components() {
        let (g, li) = world();
        let idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        assert_eq!(idx.timer.count("nlp"), 3);
        assert_eq!(idx.timer.count("ne"), 3);
        assert!(idx.timer.count("ns") >= 1);
    }

    #[test]
    fn cached_indexing_matches_uncached_and_counts() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default();
        let uncached = index_corpus_with(&g, &li, &cfg, None, DOCS);
        assert_eq!(uncached.cache_stats, CacheStats::default());

        let cache = EmbeddingCache::new(64, 64);
        let first = index_corpus_with(&g, &li, &cfg, Some(&cache), DOCS);
        assert!(first.cache_stats.lookups() > 0);
        // A rebuild over the same corpus is answered by the group memo.
        let second = index_corpus_with(&g, &li, &cfg, Some(&cache), DOCS);
        assert_eq!(second.cache_stats.misses, 0);
        assert!(second.cache_stats.hits > 0);

        for run in [&first, &second] {
            assert_eq!(run.embedded_docs, uncached.embedded_docs);
            for (a, b) in uncached.embeddings().zip(run.embeddings()) {
                assert_eq!(a.all_nodes(), b.all_nodes());
            }
        }
    }

    #[test]
    fn empty_corpus() {
        let (g, li) = world();
        let idx = index_corpus::<&str>(&g, &li, &NewsLinkConfig::default(), &[]);
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.segment_count(), 0);
        assert_eq!(idx.embedded_ratio(), 0.0);
    }

    #[test]
    fn striped_builds_partition_the_corpus() {
        let (g, li) = world();
        let cfg = NewsLinkConfig::default().with_segment_docs(1);
        let mono = index_corpus(&g, &li, &cfg, DOCS);
        for shard_count in [1u32, 2, 3, 4] {
            let mut shards: Vec<NewsLinkIndex> = (0..shard_count)
                .map(|s| index_corpus_sharded(&g, &li, &cfg, None, DOCS, s, shard_count))
                .collect();
            // Stripes are disjoint and their union is the full id range.
            let mut union: Vec<u32> = Vec::new();
            for (s, shard) in shards.iter().enumerate() {
                let ids: Vec<u32> = shard.doc_ids().map(|d| d.0).collect();
                assert!(
                    ids.iter().all(|id| id % shard_count == s as u32),
                    "shard {s} holds only its stripe"
                );
                union.extend(ids);
            }
            union.sort_unstable();
            assert_eq!(union, (0..DOCS.len() as u32).collect::<Vec<_>>());
            // Each stripe's documents embed identically to the monolithic
            // build (same artifacts under their global ids).
            for shard in &shards {
                for d in shard.doc_ids() {
                    assert_eq!(
                        shard.embedding(d).unwrap().all_nodes(),
                        mono.embedding(d).unwrap().all_nodes()
                    );
                }
            }
            // The allocator resumes past the corpus, on this shard's
            // stripe, and keeps minting on it.
            for (s, shard) in shards.iter_mut().enumerate() {
                let a = shard.reserve_id();
                let b = shard.reserve_id();
                assert!(a.0 >= DOCS.len() as u32);
                assert_eq!(a.0 % shard_count, s as u32);
                assert_eq!(b.0, a.0 + shard_count);
            }
        }
    }

    #[test]
    fn set_id_stripe_fast_forwards_to_the_stripe() {
        let (g, li) = world();
        let mut idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        // next_id is 3 after the build; stripe 1 of 3 keeps ids ≡ 1 (mod 3).
        idx.set_id_stripe(1, 3);
        let a = idx.reserve_id();
        let b = idx.reserve_id();
        assert_eq!(a.0, 4);
        assert_eq!(b.0, 7);
        // Already on-stripe: no fast-forward.
        let mut idx2 = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        idx2.set_id_stripe(0, 3);
        assert_eq!(idx2.reserve_id().0, 3);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_stripe_panics() {
        let (g, li) = world();
        let mut idx = index_corpus(&g, &li, &NewsLinkConfig::default(), DOCS);
        idx.set_id_stripe(2, 2);
    }

    #[test]
    fn doc_ids_dense_at_build_and_stable_after_compaction() {
        let (g, li) = world();
        let mut idx = index_corpus(
            &g,
            &li,
            &NewsLinkConfig::default()
                .with_segment_docs(1)
                .with_threads(3),
            DOCS,
        );
        // Dense at build, in corpus order, independent of sharding and
        // thread count.
        let ids: Vec<u32> = doc_ids(&idx).map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Deletion leaves a gap; compaction does not renumber survivors.
        idx.delete(DocId(1));
        idx.compact();
        let ids: Vec<u32> = doc_ids(&idx).map(|d| d.0).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(idx.embedding(DocId(0)).is_some());
        assert!(idx.embedding(DocId(1)).is_none());
    }
}
