//! English stopword list for the analyzer, comparable to Lucene's default
//! `EnglishAnalyzer` set plus a few news-domain function words.

/// Sorted stopword list (binary-searchable).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "between", "both", "but", "by", "can", "could",
    "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further",
    "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if",
    "in", "into", "is", "it", "its", "itself", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over",
    "own", "said", "same", "she", "should", "so", "some", "such", "than", "that", "the", "their",
    "theirs", "them", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "very", "was", "we", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "will", "with", "would", "you", "your", "yours",
];

/// Is `word` (lowercase) a stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "in", "is"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["taliban", "pakistan", "bombing", "election"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn case_sensitive_lowercase_contract() {
        // Caller must lowercase first.
        assert!(!is_stopword("The"));
    }
}
