//! Tokenization with source spans.
//!
//! A token is a maximal run of alphanumeric characters (plus internal
//! apostrophes, so `People's` stays one token). Spans index the original
//! text, letting the NER report exact surface forms.

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Token {
    /// The token's surface text within `source`.
    #[inline]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }

    /// True when the first character is uppercase.
    pub fn is_capitalized(&self, source: &str) -> bool {
        self.text(source)
            .chars()
            .next()
            .is_some_and(|c| c.is_uppercase())
    }

    /// True when every character is a digit.
    pub fn is_numeric(&self, source: &str) -> bool {
        let t = self.text(source);
        !t.is_empty() && t.chars().all(|c| c.is_ascii_digit())
    }
}

/// Is `c` part of a token?
#[inline]
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

/// Tokenize `text` into spans.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = text.char_indices().collect::<Vec<_>>();
    let mut i = 0;
    while i < bytes.len() {
        let (pos, c) = bytes[i];
        if is_word_char(c) {
            let start = pos;
            let mut j = i + 1;
            while j < bytes.len() {
                let (_, cj) = bytes[j];
                if is_word_char(cj) {
                    j += 1;
                } else if cj == '\'' && j + 1 < bytes.len() && is_word_char(bytes[j + 1].1) {
                    // internal apostrophe: People's
                    j += 2;
                } else {
                    break;
                }
            }
            let end = if j < bytes.len() { bytes[j].0 } else { text.len() };
            tokens.push(Token { start, end });
            i = j;
        } else {
            i += 1;
        }
    }
    tokens
}

/// Convenience: lowercase token strings (no span bookkeeping).
pub fn tokenize_lower(text: &str) -> Vec<String> {
    tokenize(text)
        .iter()
        .map(|t| t.text(text).to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_space() {
        let text = "Bombing attack, by Taliban in Pakistan.";
        let toks: Vec<&str> = tokenize(text).iter().map(|t| t.text(text)).collect();
        assert_eq!(
            toks,
            vec!["Bombing", "attack", "by", "Taliban", "in", "Pakistan"]
        );
    }

    #[test]
    fn internal_apostrophe_kept() {
        let text = "the People's Party";
        let toks: Vec<&str> = tokenize(text).iter().map(|t| t.text(text)).collect();
        assert_eq!(toks, vec!["the", "People's", "Party"]);
    }

    #[test]
    fn trailing_apostrophe_dropped() {
        let text = "the voters' choice";
        let toks: Vec<&str> = tokenize(text).iter().map(|t| t.text(text)).collect();
        assert_eq!(toks, vec!["the", "voters", "choice"]);
    }

    #[test]
    fn numbers_are_tokens() {
        let text = "2016 Pakistan presidential election";
        let toks = tokenize(text);
        assert_eq!(toks[0].text(text), "2016");
        assert!(toks[0].is_numeric(text));
        assert!(!toks[1].is_numeric(text));
    }

    #[test]
    fn capitalization_detection() {
        let text = "Upper Dir region";
        let toks = tokenize(text);
        assert!(toks[0].is_capitalized(text));
        assert!(toks[1].is_capitalized(text));
        assert!(!toks[2].is_capitalized(text));
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!... --- ").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let text = "Zürich café";
        let toks: Vec<&str> = tokenize(text).iter().map(|t| t.text(text)).collect();
        assert_eq!(toks, vec!["Zürich", "café"]);
    }

    #[test]
    fn tokenize_lower_lowercases() {
        assert_eq!(
            tokenize_lower("Taliban IN Pakistan"),
            vec!["taliban", "in", "pakistan"]
        );
    }
}
