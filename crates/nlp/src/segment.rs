//! Document analysis: the NLP component's end-to-end output.
//!
//! §III/§IV: a news document is split into *news segments* (sentences),
//! entities are recognized per segment, and the entity groups are reduced
//! to the maximal entity co-occurrence set that the NE component embeds.

use newslink_kg::{KnowledgeGraph, LabelIndex};

use crate::analyzer::analyze;
use crate::cooccur::{maximal_cooccurrence, EntitySet};
use crate::ner::{matched_labels, EntityMention, MatchStats, Recognizer};
use crate::sentence::split_sentences;
use crate::token::tokenize;

/// One news segment (a sentence) with its recognized entities.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The segment text.
    pub text: String,
    /// Entity mentions recognized in the segment.
    pub mentions: Vec<EntityMention>,
}

impl Segment {
    /// Entity density: entities per token, the paper's query-selection
    /// criterion (§VII-B).
    pub fn entity_density(&self) -> f64 {
        let tokens = tokenize(&self.text).len();
        if tokens == 0 {
            0.0
        } else {
            self.mentions.len() as f64 / tokens as f64
        }
    }
}

/// The NLP component's output for one document.
#[derive(Debug, Clone)]
pub struct DocumentAnalysis {
    /// Analyzed BOW terms of the full document.
    pub terms: Vec<String>,
    /// Per-sentence segments with mentions.
    pub segments: Vec<Segment>,
    /// The maximal entity co-occurrence set `U_m` (matched labels only —
    /// unmatched mentions have no KG nodes to embed).
    pub entity_groups: Vec<EntitySet>,
    /// Identified/matched counts (Table V).
    pub stats: MatchStats,
}

impl DocumentAnalysis {
    /// All distinct matched entity labels across the document.
    pub fn all_entities(&self) -> EntitySet {
        self.entity_groups.iter().flatten().cloned().collect()
    }
}

/// The full NLP component.
#[derive(Clone, Copy)]
pub struct NlpPipeline<'g> {
    recognizer: Recognizer<'g>,
}

impl<'g> NlpPipeline<'g> {
    /// Build the pipeline over a graph and its label index.
    pub fn new(graph: &'g KnowledgeGraph, index: &'g LabelIndex) -> Self {
        Self {
            recognizer: Recognizer::new(graph, index),
        }
    }

    /// The underlying recognizer.
    pub fn recognizer(&self) -> Recognizer<'g> {
        self.recognizer
    }

    /// Run tokenization, sentence splitting, NER, and co-occurrence
    /// reduction over `text`.
    pub fn analyze_document(&self, text: &str) -> DocumentAnalysis {
        let mut segments = Vec::new();
        let mut stats = MatchStats::default();
        let mut sets: Vec<EntitySet> = Vec::new();
        for span in split_sentences(text) {
            let sentence = span.text(text);
            let tokens = tokenize(sentence);
            let mentions = self.recognizer.recognize(sentence, &tokens);
            stats.add(&mentions);
            let labels: EntitySet = matched_labels(&mentions).into_iter().collect();
            sets.push(labels);
            segments.push(Segment {
                text: sentence.to_string(),
                mentions,
            });
        }
        DocumentAnalysis {
            terms: analyze(text),
            segments,
            entity_groups: maximal_cooccurrence(&sets),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Taliban", EntityType::Organization);
        b.add_node("Upper Dir", EntityType::Gpe);
        b.add_node("Swat Valley", EntityType::Location);
        b.add_node("Afghanistan", EntityType::Gpe);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn full_document_analysis() {
        let (g, idx) = world();
        let nlp = NlpPipeline::new(&g, &idx);
        let text = "Fighting between Pakistan, Afghanistan and Taliban spread. \
                    Clashes near Upper Dir hit Afghanistan and Taliban. \
                    Strikes in Upper Dir and Swat Valley shook Pakistan and Taliban. \
                    Residents of Upper Dir blamed Taliban.";
        let a = nlp.analyze_document(text);
        assert_eq!(a.segments.len(), 4);
        // Last sentence's set {upper dir, taliban} is a subset of sentence 3.
        assert_eq!(a.entity_groups.len(), 3);
        assert!(a.all_entities().contains("swat valley"));
        assert!(a.stats.identified >= a.stats.matched);
        assert!(!a.terms.is_empty());
    }

    #[test]
    fn entity_density_selects_entity_rich_sentences() {
        let (g, idx) = world();
        let nlp = NlpPipeline::new(&g, &idx);
        let a = nlp.analyze_document(
            "Pakistan Taliban Afghanistan clashed. This sentence has no entities whatsoever in it.",
        );
        assert!(a.segments[0].entity_density() > a.segments[1].entity_density());
        assert_eq!(a.segments[1].entity_density(), 0.0);
    }

    #[test]
    fn empty_document() {
        let (g, idx) = world();
        let nlp = NlpPipeline::new(&g, &idx);
        let a = nlp.analyze_document("");
        assert!(a.segments.is_empty());
        assert!(a.entity_groups.is_empty());
        assert!(a.terms.is_empty());
        assert_eq!(a.stats.ratio(), 1.0);
    }

    #[test]
    fn document_without_entities() {
        let (g, idx) = world();
        let nlp = NlpPipeline::new(&g, &idx);
        let a = nlp.analyze_document("the quick brown fox jumps over the lazy dog.");
        assert_eq!(a.entity_groups.len(), 0);
        assert!(!a.terms.is_empty());
    }

    #[test]
    fn segments_keep_original_text() {
        let (g, idx) = world();
        let nlp = NlpPipeline::new(&g, &idx);
        let a = nlp.analyze_document("Taliban struck. Pakistan responded.");
        assert_eq!(a.segments[0].text, "Taliban struck");
        assert_eq!(a.segments[1].text, "Pakistan responded");
    }
}
