//! Sentence splitting.
//!
//! The paper uses "every sentence as a news segment, as it guarantees the
//! semantic consistence of occurring entities" (§VII-A4). This splitter
//! breaks on `.`, `!`, `?` and newlines, with a small abbreviation guard.

/// Common abbreviations that do not end a sentence.
const ABBREVIATIONS: &[&str] = &["mr", "mrs", "ms", "dr", "prof", "gen", "col", "lt", "st", "vs"];

/// A sentence span over the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Sentence {
    /// The sentence text within `source`.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

/// True when the word ending at `end` (exclusive) is a known abbreviation.
fn ends_with_abbreviation(text: &str, end: usize) -> bool {
    let head = &text[..end];
    let word_start = head
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphabetic())
        .map(|(i, c)| i + c.len_utf8())
        .unwrap_or(0);
    let word = &head[word_start..end];
    if word.is_empty() {
        return false;
    }
    let lower = word.to_lowercase();
    ABBREVIATIONS.contains(&lower.as_str()) || (word.len() == 1 && word != "I" && word != "A")
}

/// Split `text` into trimmed, non-empty sentence spans.
pub fn split_sentences(text: &str) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let mut start = 0usize;
    let push = |start: usize, end: usize, sentences: &mut Vec<Sentence>| {
        let raw = &text[start..end];
        let trimmed = raw.trim();
        if !trimmed.is_empty() {
            let lead = raw.len() - raw.trim_start().len();
            let trail = raw.len() - raw.trim_end().len();
            sentences.push(Sentence {
                start: start + lead,
                end: end - trail,
            });
        }
    };
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let mut i = 0;
    while i < chars.len() {
        let (pos, c) = chars[i];
        let is_break = match c {
            '!' | '?' | '\n' => true,
            '.' => {
                // Not a break after an abbreviation or inside a number.
                let next_is_digit = chars
                    .get(i + 1)
                    .is_some_and(|&(_, n)| n.is_ascii_digit());
                !ends_with_abbreviation(text, pos) && !next_is_digit
            }
            _ => false,
        };
        if is_break {
            push(start, pos, &mut sentences);
            start = pos + c.len_utf8();
        }
        i += 1;
    }
    push(start, text.len(), &mut sentences);
    sentences
}

/// Convenience: sentence texts.
pub fn sentence_texts(text: &str) -> Vec<&str> {
    split_sentences(text).iter().map(|s| s.text(text)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_basic_sentences() {
        let s = sentence_texts("Pakistan fights Taliban. Attack hits Lahore! Is it over?");
        assert_eq!(
            s,
            vec!["Pakistan fights Taliban", "Attack hits Lahore", "Is it over"]
        );
    }

    #[test]
    fn newlines_split() {
        let s = sentence_texts("Headline about Khyber\nBody starts here");
        assert_eq!(s, vec!["Headline about Khyber", "Body starts here"]);
    }

    #[test]
    fn abbreviations_do_not_split() {
        let s = sentence_texts("Mr. Sanders spoke. Dr. Khan agreed.");
        assert_eq!(s, vec!["Mr. Sanders spoke", "Dr. Khan agreed"]);
    }

    #[test]
    fn decimal_numbers_do_not_split() {
        let s = sentence_texts("Turnout was 56.4 percent. Very high.");
        assert_eq!(s, vec!["Turnout was 56.4 percent", "Very high"]);
    }

    #[test]
    fn single_initial_does_not_split() {
        let s = sentence_texts("George W. Bush spoke.");
        assert_eq!(s, vec!["George W. Bush spoke"]);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n\n  ").is_empty());
    }

    #[test]
    fn spans_index_source() {
        let text = "One. Two.";
        let spans = split_sentences(text);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].text(text), "One");
        assert_eq!(spans[1].text(text), "Two");
        assert!(spans[1].start > spans[0].end);
    }

    #[test]
    fn no_terminal_punctuation() {
        let s = sentence_texts("no punctuation at all");
        assert_eq!(s, vec!["no punctuation at all"]);
    }
}
