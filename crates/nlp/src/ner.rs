//! Named-entity recognition.
//!
//! The paper delegates NER to spaCy's pretrained pipeline. Our offline
//! substitute is a *gazetteer recognizer*: longest-match of token windows
//! against the knowledge graph's label index (DESIGN.md §6.2), plus a
//! capitalization fallback that identifies proper-noun runs with no KG
//! counterpart. The fallback matters: it recreates the paper's imperfect
//! *entity matching ratio* (Table V reports ≈96–97%, not 100%), because the
//! corpus generator plants out-of-KG names.

use newslink_kg::{normalize_label, KnowledgeGraph, LabelIndex};
use newslink_util::FxHashSet;

use crate::stopwords::is_stopword;
use crate::token::Token;

/// One recognized entity mention within a sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityMention {
    /// Exact surface text.
    pub surface: String,
    /// Normalized form (lowercased, whitespace-collapsed) — the entity
    /// label `l` used downstream.
    pub norm: String,
    /// Index of the first token of the mention.
    pub token_start: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// True when the mention resolved to at least one KG node of a
    /// searchable entity type (the paper's "matched entity").
    pub matched: bool,
}

/// Gazetteer + capitalization-fallback recognizer.
///
/// Borrowed from a [`KnowledgeGraph`] and its [`LabelIndex`]; cheap to
/// construct, free to clone.
#[derive(Clone, Copy)]
pub struct Recognizer<'g> {
    graph: &'g KnowledgeGraph,
    index: &'g LabelIndex,
}

impl<'g> Recognizer<'g> {
    /// Create a recognizer over `graph` with its prebuilt `index`.
    pub fn new(graph: &'g KnowledgeGraph, index: &'g LabelIndex) -> Self {
        Self { graph, index }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g KnowledgeGraph {
        self.graph
    }

    /// The underlying label index.
    pub fn index(&self) -> &'g LabelIndex {
        self.index
    }

    /// Recognize entity mentions in one sentence.
    ///
    /// `tokens` must be the tokenization of `sentence` (spans index it).
    pub fn recognize(&self, sentence: &str, tokens: &[Token]) -> Vec<EntityMention> {
        let lower: Vec<String> = tokens
            .iter()
            .map(|t| t.text(sentence).to_lowercase())
            .collect();
        let lower_refs: Vec<&str> = lower.iter().map(String::as_str).collect();
        let max_window = self.index.max_label_tokens().max(1);
        let mut searchable = |n| self.graph.entity_type(n).is_searchable();
        let mut mentions = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            // Longest gazetteer match first: one resolver probe covers
            // every window width starting at `i` (the FST backend walks
            // the automaton forward once; the hash backend joins and
            // probes per width). Single-token matches must look like
            // proper nouns in the text: a lowercase "as" must not link
            // to a node or acronym alias labeled "AS".
            let cap = max_window.min(tokens.len() - i);
            let allow_single =
                tokens[i].is_capitalized(sentence) || tokens[i].is_numeric(sentence);
            if let Some(w) =
                self.index
                    .longest_match(&lower_refs[i..i + cap], cap, allow_single, &mut searchable)
            {
                let start = tokens[i].start;
                let end = tokens[i + w - 1].end;
                let surface = sentence[start..end].to_string();
                mentions.push(EntityMention {
                    norm: normalize_label(&surface).into_owned(),
                    surface,
                    token_start: i,
                    token_len: w,
                    matched: true,
                });
                i += w;
                continue;
            }
            // Fallback: a maximal run of capitalized, non-stopword,
            // non-numeric tokens is an identified (but unmatched) entity.
            if self.starts_proper_run(sentence, tokens, &lower, i) {
                let mut j = i + 1;
                while j < tokens.len()
                    && tokens[j].is_capitalized(sentence)
                    && !is_stopword(&lower[j])
                    && !tokens[j].is_numeric(sentence)
                {
                    j += 1;
                }
                // A single capitalized sentence-initial word is almost
                // always ordinary prose; require length >= 2 there.
                let run_len = j - i;
                if run_len >= 2 || i > 0 {
                    let start = tokens[i].start;
                    let end = tokens[j - 1].end;
                    let surface = sentence[start..end].to_string();
                    mentions.push(EntityMention {
                        norm: normalize_label(&surface).into_owned(),
                        surface,
                        token_start: i,
                        token_len: run_len,
                        matched: false,
                    });
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
        mentions
    }

    fn starts_proper_run(
        &self,
        sentence: &str,
        tokens: &[Token],
        lower: &[String],
        i: usize,
    ) -> bool {
        tokens[i].is_capitalized(sentence)
            && !is_stopword(&lower[i])
            && !tokens[i].is_numeric(sentence)
    }
}

/// The paper's Table V statistic for one query/document: identified and
/// matched mention counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Mentions the recognizer identified.
    pub identified: usize,
    /// Mentions that resolved to searchable KG nodes.
    pub matched: usize,
}

impl MatchStats {
    /// Accumulate mention counts.
    pub fn add(&mut self, mentions: &[EntityMention]) {
        self.identified += mentions.len();
        self.matched += mentions.iter().filter(|m| m.matched).count();
    }

    /// matched / identified, or 1.0 when nothing was identified.
    pub fn ratio(&self) -> f64 {
        if self.identified == 0 {
            1.0
        } else {
            self.matched as f64 / self.identified as f64
        }
    }
}

/// Collect the distinct normalized labels of matched mentions, in first-
/// occurrence order.
pub fn matched_labels(mentions: &[EntityMention]) -> Vec<String> {
    let mut seen = FxHashSet::default();
    let mut out = Vec::new();
    for m in mentions {
        if m.matched && seen.insert(m.norm.clone()) {
            out.push(m.norm.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;
    use newslink_kg::{EntityType, GraphBuilder};

    fn world() -> (KnowledgeGraph, LabelIndex) {
        let mut b = GraphBuilder::new();
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Taliban", EntityType::Organization);
        b.add_node("Upper Dir", EntityType::Gpe);
        b.add_node("Swat Valley", EntityType::Location);
        b.add_node("Five", EntityType::Quantity);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        (g, idx)
    }

    fn recognize(text: &str) -> Vec<EntityMention> {
        let (g, idx) = world();
        let r = Recognizer::new(&g, &idx);
        let toks = tokenize(text);
        r.recognize(text, &toks)
    }

    #[test]
    fn finds_single_token_entities() {
        let m = recognize("Military conflicts between Pakistan and Taliban.");
        let names: Vec<_> = m.iter().map(|x| x.norm.as_str()).collect();
        assert_eq!(names, vec!["pakistan", "taliban"]);
        assert!(m.iter().all(|x| x.matched));
    }

    #[test]
    fn longest_match_wins() {
        let m = recognize("Clashes in Upper Dir continued.");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].norm, "upper dir");
        assert_eq!(m[0].token_len, 2);
        assert!(m[0].matched);
    }

    #[test]
    fn multiword_entities_found_mid_sentence() {
        let m = recognize("Fighting reached Swat Valley and Pakistan yesterday.");
        let names: Vec<_> = m.iter().map(|x| x.norm.as_str()).collect();
        assert_eq!(names, vec!["swat valley", "pakistan"]);
    }

    #[test]
    fn quantity_entities_filtered() {
        // "Five" is in the KG but with a non-searchable type.
        let m = recognize("Attack kills Five in Pakistan.");
        let names: Vec<_> = m.iter().map(|x| x.norm.as_str()).collect();
        // "Five" is capitalized mid-sentence -> identified-but-unmatched.
        assert!(names.contains(&"pakistan"));
        let five = m.iter().find(|x| x.norm == "five").unwrap();
        assert!(!five.matched);
    }

    #[test]
    fn unknown_proper_nouns_identified_but_unmatched() {
        let m = recognize("Forces entered Quettaville near Pakistan.");
        let unmatched: Vec<_> = m.iter().filter(|x| !x.matched).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0].norm, "quettaville");
    }

    #[test]
    fn sentence_initial_single_word_not_entity() {
        let m = recognize("Bombing hit the city.");
        assert!(m.is_empty());
    }

    #[test]
    fn sentence_initial_two_word_run_is_entity() {
        let m = recognize("Kunar Heights saw clashes.");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].norm, "kunar heights");
        assert!(!m[0].matched);
    }

    #[test]
    fn lowercase_words_do_not_link_to_acronyms() {
        let mut b = GraphBuilder::new();
        let org = b.add_node("Adrainviam Systems", EntityType::Organization);
        b.add_alias(org, "AS");
        b.add_node("Pakistan", EntityType::Gpe);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let r = Recognizer::new(&g, &idx);
        let text = "Officials described Pakistan as calm.";
        let m = r.recognize(text, &tokenize(text));
        let names: Vec<&str> = m.iter().map(|x| x.norm.as_str()).collect();
        assert_eq!(names, vec!["pakistan"], "lowercase 'as' must not match");
        // The capitalized acronym still links.
        let text2 = "AS expanded operations in Pakistan.";
        let m2 = r.recognize(text2, &tokenize(text2));
        assert!(m2.iter().any(|x| x.norm == "as" && x.matched));
    }

    #[test]
    fn fst_backend_recognizes_identically() {
        let mut b = GraphBuilder::new();
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Upper Dir", EntityType::Gpe);
        b.add_node("Swat Valley", EntityType::Location);
        b.add_node("Five", EntityType::Quantity);
        let org = b.add_node("Adrainviam Systems", EntityType::Organization);
        b.add_alias(org, "AS");
        let g = b.freeze();
        let hash = LabelIndex::build(&g);
        let fst = LabelIndex::build_fst(&g);
        for text in [
            "Military conflicts between Pakistan and Taliban.",
            "Clashes in Upper Dir continued.",
            "Fighting reached Swat Valley and Pakistan yesterday.",
            "Attack kills Five in Pakistan.",
            "Officials described Pakistan as calm.",
            "AS expanded operations in Pakistan.",
            "Kunar Heights saw clashes.",
            "Upper Dir Upper Dir Upper.",
        ] {
            let toks = tokenize(text);
            let h = Recognizer::new(&g, &hash).recognize(text, &toks);
            let f = Recognizer::new(&g, &fst).recognize(text, &toks);
            assert_eq!(h, f, "backends disagree on {text:?}");
        }
    }

    #[test]
    fn match_stats_ratio() {
        let m = recognize("Forces entered Quettaville near Pakistan.");
        let mut stats = MatchStats::default();
        stats.add(&m);
        assert_eq!(stats.identified, 2);
        assert_eq!(stats.matched, 1);
        assert!((stats.ratio() - 0.5).abs() < 1e-12);
        assert_eq!(MatchStats::default().ratio(), 1.0);
    }

    #[test]
    fn matched_labels_dedupe_in_order() {
        let m = recognize("Pakistan praised Pakistan and Taliban.");
        assert_eq!(matched_labels(&m), vec!["pakistan", "taliban"]);
    }
}
