//! The term analyzer: text → indexing/search terms.
//!
//! Pipeline: tokenize → lowercase → stopword removal → light suffix
//! stemming (an S-stemmer: plurals and a few verbal suffixes). This is the
//! BOW term stream for the Lucene-substitute index and every bag-of-words
//! baseline, applied identically at index and query time.

use crate::stopwords::is_stopword;
use crate::token::tokenize;

/// Light suffix stemmer (Harman's S-stemmer extended with -ing/-ed).
///
/// Deliberately conservative: over-stemming hurts BM25 precision more than
/// under-stemming hurts recall at our corpus sizes.
pub fn stem(word: &str) -> String {
    let w = word;
    let n = w.len();
    if n > 4 && w.ends_with("ies") {
        return format!("{}y", &w[..n - 3]);
    }
    if n > 4 && w.ends_with("ing") && !w.ends_with("thing") {
        return w[..n - 3].to_string();
    }
    if n > 3 && w.ends_with("ed") && !w.ends_with("eed") {
        return w[..n - 2].to_string();
    }
    if n > 3 && w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is")
    {
        return w[..n - 1].to_string();
    }
    w.to_string()
}

/// Analyze `text` into the canonical term stream.
pub fn analyze(text: &str) -> Vec<String> {
    tokenize(text)
        .iter()
        .filter_map(|t| {
            let lower = t.text(text).to_lowercase();
            if is_stopword(&lower) {
                None
            } else {
                Some(stem(&lower))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_stopwords_and_lowercases() {
        let terms = analyze("The Taliban in Pakistan");
        assert_eq!(terms, vec!["taliban", "pakistan"]);
    }

    #[test]
    fn stems_plurals() {
        assert_eq!(stem("attacks"), "attack");
        assert_eq!(stem("parties"), "party");
        assert_eq!(stem("armies"), "army");
    }

    #[test]
    fn stems_verb_suffixes() {
        assert_eq!(stem("bombing"), "bomb");
        assert_eq!(stem("attacked"), "attack");
    }

    #[test]
    fn avoids_overstemming() {
        assert_eq!(stem("glass"), "glass");
        assert_eq!(stem("crisis"), "crisis");
        assert_eq!(stem("status"), "status");
        assert_eq!(stem("thing"), "thing");
        assert_eq!(stem("agreed"), "agreed");
        assert_eq!(stem("is"), "is");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("us"), "us");
        assert_eq!(stem("ed"), "ed");
    }

    #[test]
    fn query_and_doc_analysis_agree() {
        let a = analyze("Bombing attacks by the Taliban");
        let b = analyze("bombing attack by taliban");
        assert_eq!(a, b);
    }

    #[test]
    fn numbers_survive() {
        assert_eq!(analyze("2016 election"), vec!["2016", "election"]);
    }

    #[test]
    fn empty_text() {
        assert!(analyze("").is_empty());
        assert!(analyze("the of and").is_empty());
    }
}
