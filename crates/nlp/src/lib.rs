//! NLP substrate for NewsLink (the paper's NLP component, §IV).
//!
//! The paper uses spaCy for tokenization, sentence splitting and NER; this
//! crate is the from-scratch offline substitute:
//!
//! - [`token`] — span-preserving tokenizer;
//! - [`sentence`] — sentence splitter (each sentence is a *news segment*);
//! - [`analyzer`] — BOW term analysis (lowercase, stopwords, light stems);
//! - [`ner`] — gazetteer NER against the KG label index with a
//!   capitalization fallback for out-of-KG names;
//! - [`cooccur`] — maximal entity co-occurrence sets (Definition 1);
//! - [`segment`] — the end-to-end [`segment::NlpPipeline`].

#![deny(unsafe_code)]

pub mod analyzer;
pub mod cooccur;
pub mod ner;
pub mod segment;
pub mod sentence;
pub mod stopwords;
pub mod token;

pub use analyzer::{analyze, stem};
pub use cooccur::{maximal_cooccurrence, EntitySet};
pub use ner::{EntityMention, MatchStats, Recognizer};
pub use segment::{DocumentAnalysis, NlpPipeline, Segment};
pub use sentence::{split_sentences, Sentence};
pub use token::{tokenize, tokenize_lower, Token};
