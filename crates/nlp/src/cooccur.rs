//! Maximal entity co-occurrence sets (Definition 1 of the paper).
//!
//! Given the entity sets `U = {L_1, …, L_n}` identified per news segment,
//! only the sets that are not proper subsets of any other set are kept;
//! equal sets are kept once. This bounds the number of subgraph-embedding
//! searches per document.

use std::collections::BTreeSet;

/// An entity group: normalized entity labels of one news segment.
pub type EntitySet = BTreeSet<String>;

/// Compute the maximal entity co-occurrence set `U_m ⊆ U`.
///
/// `L_i ∈ U_m` iff `L_i ⊄ L_j` for all `L_j ∈ U`; duplicates collapse to
/// one representative. Output preserves first-occurrence order of the
/// surviving sets. Empty input sets are dropped (they carry no entities to
/// embed).
pub fn maximal_cooccurrence(sets: &[EntitySet]) -> Vec<EntitySet> {
    let mut out: Vec<EntitySet> = Vec::new();
    'candidate: for s in sets {
        if s.is_empty() {
            continue;
        }
        // Skip if s is a subset of (or equal to) an already-kept set…
        for kept in &out {
            if s.is_subset(kept) {
                continue 'candidate;
            }
        }
        // …or a proper subset of any later set in U.
        for other in sets {
            if s.len() < other.len() && s.is_subset(other) {
                continue 'candidate;
            }
        }
        // s supersedes any kept strict subsets.
        out.retain(|kept| !kept.is_subset(s) || kept == s);
        out.push(s.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> EntitySet {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_example_2() {
        // L1={Pakistan,Taliban,Afghan}, L2={Upper Dir,Afghanistan,Taliban},
        // L3={Upper Dir,Swat Valley,Pakistan,Taliban}, L4={Upper Dir,Taliban}
        // L4 ⊂ L2 ⇒ U_m = {L1, L2, L3}.
        let u = vec![
            set(&["pakistan", "taliban", "afghan"]),
            set(&["upper dir", "afghanistan", "taliban"]),
            set(&["upper dir", "swat valley", "pakistan", "taliban"]),
            set(&["upper dir", "taliban"]),
        ];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um.len(), 3);
        assert!(um.contains(&u[0]));
        assert!(um.contains(&u[1]));
        assert!(um.contains(&u[2]));
        assert!(!um.contains(&u[3]));
    }

    #[test]
    fn duplicates_kept_once() {
        let u = vec![set(&["a", "b"]), set(&["a", "b"]), set(&["c"])];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um.len(), 2);
    }

    #[test]
    fn subset_before_superset_is_dropped() {
        let u = vec![set(&["a"]), set(&["a", "b"])];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um, vec![set(&["a", "b"])]);
    }

    #[test]
    fn superset_before_subset_is_kept() {
        let u = vec![set(&["a", "b"]), set(&["a"])];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um, vec![set(&["a", "b"])]);
    }

    #[test]
    fn incomparable_sets_all_survive() {
        let u = vec![set(&["a", "b"]), set(&["b", "c"]), set(&["c", "a"])];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um.len(), 3);
    }

    #[test]
    fn empty_sets_dropped() {
        let u = vec![set(&[]), set(&["a"])];
        let um = maximal_cooccurrence(&u);
        assert_eq!(um, vec![set(&["a"])]);
    }

    #[test]
    fn empty_input() {
        assert!(maximal_cooccurrence(&[]).is_empty());
    }

    #[test]
    fn no_survivor_is_subset_of_another() {
        let u = vec![
            set(&["a"]),
            set(&["a", "b"]),
            set(&["a", "b", "c"]),
            set(&["d", "e"]),
            set(&["e"]),
            set(&["d", "e"]),
        ];
        let um = maximal_cooccurrence(&u);
        for (i, a) in um.iter().enumerate() {
            for (j, b) in um.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
        assert_eq!(um.len(), 2);
    }
}
