//! Property tests for the NLP substrate.

use std::collections::BTreeSet;

use proptest::prelude::*;

use newslink_nlp::{analyze, maximal_cooccurrence, split_sentences, stem, tokenize};

fn set_strategy() -> impl Strategy<Value = Vec<BTreeSet<String>>> {
    prop::collection::vec(
        prop::collection::btree_set((0u8..10).prop_map(|e| format!("e{e}")), 0..6),
        0..12,
    )
}

proptest! {
    /// Definition 1: every survivor is in U, no survivor is a subset of
    /// another survivor, and every member of U is a subset of some
    /// survivor (so no information is lost).
    #[test]
    fn maximal_cooccurrence_is_sound_and_complete(sets in set_strategy()) {
        let um = maximal_cooccurrence(&sets);
        for s in &um {
            prop_assert!(sets.contains(s), "survivor not from U");
        }
        for (i, a) in um.iter().enumerate() {
            for (j, b) in um.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
        for s in sets.iter().filter(|s| !s.is_empty()) {
            prop_assert!(
                um.iter().any(|m| s.is_subset(m)),
                "{s:?} lost without a covering survivor"
            );
        }
    }

    /// Survivors are unique.
    #[test]
    fn maximal_cooccurrence_unique(sets in set_strategy()) {
        let um = maximal_cooccurrence(&sets);
        let distinct: BTreeSet<_> = um.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), um.len());
    }

    /// Token spans index the source exactly and never overlap.
    #[test]
    fn token_spans_are_well_formed(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        let mut prev_end = 0;
        for t in &toks {
            prop_assert!(t.start >= prev_end, "overlapping tokens");
            prop_assert!(t.end > t.start);
            prop_assert!(t.end <= text.len());
            prop_assert!(text.is_char_boundary(t.start));
            prop_assert!(text.is_char_boundary(t.end));
            prop_assert!(!t.text(&text).is_empty());
            prev_end = t.end;
        }
    }

    /// Sentence spans are ordered, in-bounds, and non-empty.
    #[test]
    fn sentence_spans_are_well_formed(text in "\\PC{0,300}") {
        let sents = split_sentences(&text);
        let mut prev_end = 0;
        for s in &sents {
            prop_assert!(s.start >= prev_end);
            prop_assert!(s.end > s.start);
            prop_assert!(s.end <= text.len());
            prop_assert!(!s.text(&text).trim().is_empty());
            prev_end = s.end;
        }
    }

    /// Stemming is idempotent for ascii words (stem(stem(w)) == stem(w)).
    #[test]
    fn stemming_is_idempotent(word in "[a-z]{1,15}") {
        let once = stem(&word);
        prop_assert_eq!(stem(&once), once.clone());
    }

    /// Analysis is case-insensitive.
    #[test]
    fn analysis_is_case_insensitive(text in "[a-zA-Z ]{0,80}") {
        prop_assert_eq!(analyze(&text), analyze(&text.to_lowercase()));
    }
}
