//! Blended top-k pruning benchmark.
//!
//! Measures the NS stage (Equation 3 scoring + top-k selection) with the
//! block-max pruned evaluator against the exhaustive full-scoring oracle
//! (`with_prune_topk(false)`), sweeping corpus size, segment layout, and
//! k. Every timed query is also checked for bit-parity between the two
//! paths, and the block-compressed postings footprint is reported
//! against the uncompressed 8-byte-per-posting equivalent.
//!
//! Run with `cargo bench --bench blended_topk`. Set
//! `NEWSLINK_BENCH_QUICK=1` for a small sweep (CI snapshot mode). Either
//! way the numbers land in `BENCH_PR5.json` at the repo root.

use std::fmt::Write as _;
use std::time::Duration;

use newslink_core::{search, NewsLink, NewsLinkConfig, PruneStats};
use newslink_kg::{synth, LabelIndex, SynthConfig};
use newslink_text::{Posting, TermId};

struct Entry {
    docs: usize,
    segments: usize,
    k: usize,
    exhaustive: Duration,
    pruned: Duration,
    stats: PruneStats,
}

struct MemRow {
    docs: usize,
    segments: usize,
    compressed: usize,
    uncompressed: usize,
}

/// Sum a side's postings footprint: block-compressed heap bytes vs the
/// flat `Vec<Posting>` representation the index used before blocks.
fn footprint(index: &newslink_core::NewsLinkIndex) -> (usize, usize) {
    let mut compressed = 0usize;
    let mut postings = 0usize;
    for seg in index.segments() {
        for side in [seg.bow(), seg.bon()] {
            compressed += side.postings_heap_bytes();
            for t in 0..side.dictionary().len() {
                postings += side.postings(TermId(t as u32)).len();
            }
        }
    }
    (compressed, postings * std::mem::size_of::<Posting>())
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (sizes, reps, n_queries): (&[usize], usize, usize) = if quick {
        (&[400, 1200], 2, 8)
    } else {
        (&[1000, 4000, 10000], 3, 12)
    };
    let ks: &[usize] = &[1, 10, 100];

    let world = synth::generate(&SynthConfig::medium(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();
    let label = |i: usize| world.graph.label(pool[i % pool.len()]);
    let fillers = ["trade", "aid", "security", "border", "election", "flood"];
    let queries: Vec<String> = (0..n_queries)
        .map(|q| {
            format!(
                "{} {} {} {} talks",
                label(q * 5),
                label(q * 13 + 3),
                fillers[q % fillers.len()],
                fillers[(q + 2) % fillers.len()],
            )
        })
        .collect();

    println!("blended_topk: sizes {sizes:?}, k {ks:?}, {n_queries} queries, quick={quick}\n");
    println!(
        "{:<10} {:>8} {:>5} {:>14} {:>14} {:>9} {:>12} {:>12} {:>14}",
        "docs", "segments", "k", "exhaustive", "pruned", "speedup", "candidates", "scored", "blocks skipped"
    );

    let mut entries: Vec<Entry> = Vec::new();
    let mut memory: Vec<MemRow> = Vec::new();
    for &size in sizes {
        let docs: Vec<String> = (0..size)
            .map(|i| {
                let a = label(i * 3);
                let b = label(i * 7 + 1);
                let c = label(i * 11 + 2);
                let filler = fillers[i % fillers.len()];
                format!(
                    "Report {i}: {a} officials discussed {filler} developments with {b} \
                     while observers in {c} tracked trade, aid and security talks."
                )
            })
            .collect();
        // 1 segment, then a multi-segment layout (~6 segments).
        for segment_docs in [0usize, size.div_ceil(6)] {
            let build_cfg = NewsLinkConfig::default()
                .with_auto_threads()
                .with_segment_docs(segment_docs);
            let engine = NewsLink::new(&world.graph, &labels, build_cfg);
            let index = engine.index_corpus(&docs);
            let segments = index.segment_count();
            let (compressed, uncompressed) = footprint(&index);
            memory.push(MemRow {
                docs: size,
                segments,
                compressed,
                uncompressed,
            });

            let pruned_cfg = NewsLinkConfig::default();
            let oracle_cfg = NewsLinkConfig::default().with_prune_topk(false);
            for &k in ks {
                // Best-of-`reps` total NS time over the query set, with a
                // bit-parity check between both paths on every query.
                let mut best_oracle = Duration::MAX;
                let mut best_pruned = Duration::MAX;
                let mut stats = PruneStats::default();
                for rep in 0..reps {
                    let mut t_oracle = Duration::ZERO;
                    let mut t_pruned = Duration::ZERO;
                    let mut rep_stats = PruneStats::default();
                    for q in &queries {
                        let a = search(&world.graph, &labels, &oracle_cfg, &index, q, k);
                        let b = search(&world.graph, &labels, &pruned_cfg, &index, q, k);
                        t_oracle += a.timer.total("ns");
                        t_pruned += b.timer.total("ns");
                        rep_stats.add(&b.prune);
                        if rep == 0 {
                            assert_eq!(a.results.len(), b.results.len(), "query {q}");
                            for (x, y) in a.results.iter().zip(&b.results) {
                                assert_eq!(x.doc, y.doc, "query {q}");
                                assert_eq!(x.score.to_bits(), y.score.to_bits(), "query {q}");
                            }
                        }
                    }
                    best_oracle = best_oracle.min(t_oracle);
                    best_pruned = best_pruned.min(t_pruned);
                    stats = rep_stats;
                }
                let speedup = best_oracle.as_secs_f64() / best_pruned.as_secs_f64().max(1e-12);
                println!(
                    "{size:<10} {segments:>8} {k:>5} {:>11.2} us {:>11.2} us {:>8.2}x {:>12} {:>12} {:>14}",
                    best_oracle.as_secs_f64() * 1e6,
                    best_pruned.as_secs_f64() * 1e6,
                    speedup,
                    stats.candidates,
                    stats.scored,
                    stats.blocks_skipped,
                );
                entries.push(Entry {
                    docs: size,
                    segments,
                    k,
                    exhaustive: best_oracle,
                    pruned: best_pruned,
                    stats,
                });
            }
        }
    }

    println!("\n{:<10} {:>8} {:>16} {:>18} {:>8}", "docs", "segments", "blocked bytes", "flat-vec bytes", "ratio");
    for m in &memory {
        println!(
            "{:<10} {:>8} {:>16} {:>18} {:>7.2}x",
            m.docs,
            m.segments,
            m.compressed,
            m.uncompressed,
            m.uncompressed as f64 / m.compressed.max(1) as f64
        );
    }

    // Machine-readable snapshot for EXPERIMENTS.md / CI.
    let mut json = String::from("{\n  \"bench\": \"blended_topk\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"docs\": {}, \"segments\": {}, \"k\": {}, \"exhaustive_ns_us\": {:.2}, \"pruned_ns_us\": {:.2}, \"speedup\": {:.2}, \"candidates\": {}, \"scored\": {}, \"blocks_skipped\": {}}}{}",
            e.docs,
            e.segments,
            e.k,
            e.exhaustive.as_secs_f64() * 1e6,
            e.pruned.as_secs_f64() * 1e6,
            e.exhaustive.as_secs_f64() / e.pruned.as_secs_f64().max(1e-12),
            e.stats.candidates,
            e.stats.scored,
            e.stats.blocks_skipped,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"memory\": [\n");
    for (i, m) in memory.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"docs\": {}, \"segments\": {}, \"compressed_bytes\": {}, \"uncompressed_bytes\": {}, \"ratio\": {:.2}}}{}",
            m.docs,
            m.segments,
            m.compressed,
            m.uncompressed,
            m.uncompressed as f64 / m.compressed.max(1) as f64,
            if i + 1 == memory.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    std::fs::write(&out, &json).expect("write BENCH_PR5.json");
    println!("\nwrote {}", out.display());
    println!("all pruned rankings matched the exhaustive oracle bit-identically");
}
