//! WAL fsync overhead benchmark.
//!
//! Measures live-mutation throughput with durability off (in-memory
//! insert only) versus on (insert + WAL append, fsynced before the
//! acknowledgement — the serve crate's discipline). The embedding cache
//! is pre-warmed with a throwaway pass so both runs are embed-warm and
//! the delta isolates the durability cost: one `write_all` + one
//! `fdatasync` per acknowledged mutation. A final checkpoint is timed
//! too, since that is what folds the log away in production.
//!
//! Run with `cargo bench --bench wal_append`.

use std::time::{Duration, Instant};

use newslink_core::{DurableStore, NewsLink, NewsLinkConfig};
use newslink_kg::{synth, LabelIndex, SynthConfig};

const MUTATIONS: usize = 200;

fn per_op(total: Duration) -> String {
    let us = total.as_secs_f64() * 1e6 / MUTATIONS as f64;
    let rate = MUTATIONS as f64 / total.as_secs_f64();
    format!("{us:>9.1} µs/op {rate:>10.0} ops/s")
}

fn main() {
    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let engine = NewsLink::new(
        &world.graph,
        &labels,
        NewsLinkConfig::default().with_segment_docs(1).with_max_segments(8),
    );
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.cities)
        .chain(&world.organizations)
        .copied()
        .collect();
    let texts: Vec<String> = (0..MUTATIONS)
        .map(|i| {
            let a = world.graph.label(pool[i % pool.len()]);
            let b = world.graph.label(pool[(i * 5 + 1) % pool.len()]);
            format!("Late update {i}: {a} responded after talks in {b} stalled.")
        })
        .collect();

    // Warm the embedding cache so neither measured run pays NLP/NE.
    let mut warm = engine.index_corpus(&[] as &[String]);
    for text in &texts {
        engine.insert_document(&mut warm, text);
    }

    println!("wal_append: {MUTATIONS} inserts, one sealed segment each (compaction at 8)\n");

    // Durability off: the insert is acknowledged from memory.
    let mut index = engine.index_corpus(&[] as &[String]);
    let t = Instant::now();
    for text in &texts {
        engine.insert_document(&mut index, text);
    }
    let off = t.elapsed();
    println!("{:<26} {}", "wal off (in-memory)", per_op(off));

    // Durability on: every insert is appended + fsynced before the ack.
    let dir = std::env::temp_dir().join(format!("newslink_wal_bench_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (mut store, mut index) =
        DurableStore::open(&engine, &dir, || engine.index_corpus(&[] as &[String]))
            .expect("open store");
    let t = Instant::now();
    for text in &texts {
        let id = engine.insert_document(&mut index, text);
        store.log_insert(id, text).expect("wal append");
    }
    let on = t.elapsed();
    let wal_bytes = store.wal_len();
    println!("{:<26} {}", "wal on (append+fsync)", per_op(on));

    let t = Instant::now();
    store.checkpoint(&index, &world.graph).expect("checkpoint");
    let ckpt = t.elapsed();

    println!(
        "\nfsync overhead: {:.2}x per acknowledged insert ({:.1} µs added)",
        on.as_secs_f64() / off.as_secs_f64(),
        (on.as_secs_f64() - off.as_secs_f64()) * 1e6 / MUTATIONS as f64,
    );
    println!(
        "wal grew to {wal_bytes} bytes; checkpoint (snapshot + wal reset) took {:.2} ms",
        ckpt.as_secs_f64() * 1e3
    );
    assert_eq!(index.doc_count(), MUTATIONS);
    std::fs::remove_dir_all(&dir).ok();
}
