//! Label-resolution benchmark: FST automaton vs HashMap oracle at
//! 10k / 100k / 1M labels (DESIGN.md §6j).
//!
//! For each scale a synthetic world of roughly that many nodes is
//! generated ([`SynthConfig::scaled`]) and both [`LabelIndex`] backends
//! are built from the same graph. The bench records, per scale:
//!
//! - **resident bytes** of each resolver (`resolver_bytes`) and the
//!   memory ratio — the automaton must stay well under the HashMap;
//! - **build time** for each backend;
//! - **exact-probe latency** over a mixed hit/miss probe set, with every
//!   timed probe parity-checked against the oracle node-for-node.
//!
//! The largest scale then exercises the streaming ingest path end to
//! end: the world is serialized as a wikidata-shaped TSV, re-ingested
//! with a deliberately small sort buffer (forcing external spill runs),
//! and the resulting blob is round-tripped through the v4 `Directory`
//! on both the heap and mmap storage backends.
//!
//! Run with `cargo bench --bench label_resolve`. Set
//! `NEWSLINK_BENCH_QUICK=1` for the reduced CI sweep (10k/100k only).
//! Either way the numbers land in `BENCH_PR8.json` at the repo root.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use newslink_core::{Directory, FsDirectory};
use newslink_kg::{
    ingest_tsv, synth, write_graph_tsv, FstLabelIndex, IngestConfig, LabelIndex, SynthConfig,
};

struct ScaleRow {
    labels: usize,
    hash_bytes: usize,
    fst_bytes: usize,
    hash_build: Duration,
    fst_build: Duration,
    hash_probe_ns: f64,
    fst_probe_ns: f64,
    probes: usize,
}

/// Time `f` once.
fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed(), r)
}

/// Probe every surface in `probes` against `index`, returning ns/probe
/// and a checksum of the postings walked (so the loop can't be elided).
fn probe_pass(index: &LabelIndex, probes: &[String]) -> (f64, u64) {
    let t = Instant::now();
    let mut checksum = 0u64;
    for p in probes {
        for node in index.exact(p) {
            checksum = checksum.wrapping_mul(31).wrapping_add(node.index() as u64);
        }
    }
    let dt = t.elapsed();
    (dt.as_secs_f64() * 1e9 / probes.len() as f64, checksum)
}

fn run_scale(target: usize, max_probes: usize) -> ScaleRow {
    let world = synth::generate(&SynthConfig::scaled(42, target));

    let (hash_build, hash) = timed(|| LabelIndex::build(&world.graph));
    let (fst_build, fst) = timed(|| LabelIndex::build_fst(&world.graph));
    assert_eq!(hash.len(), fst.len(), "surface counts diverged");

    // Mixed probe set: every kth known surface (already normalized by the
    // build) plus a guaranteed-miss variant per hit, shuffled by stride.
    let surfaces = hash.surface_postings();
    let stride = (surfaces.len() / (max_probes / 2).max(1)).max(1);
    let mut probes = Vec::new();
    for (s, _) in surfaces.iter().step_by(stride) {
        probes.push(s.clone());
        probes.push(format!("{s} zz"));
    }

    // Parity: every probe resolves to the same node set on both backends.
    for p in &probes {
        let h: Vec<_> = hash.exact(p).collect();
        let f: Vec<_> = fst.exact(p).collect();
        assert_eq!(h, f, "postings diverged for {p:?}");
    }

    // Warm up once, then time; checksums must agree (same walk).
    let _ = probe_pass(&hash, &probes);
    let _ = probe_pass(&fst, &probes);
    let (hash_probe_ns, hsum) = probe_pass(&hash, &probes);
    let (fst_probe_ns, fsum) = probe_pass(&fst, &probes);
    assert_eq!(hsum, fsum, "probe checksums diverged");

    ScaleRow {
        labels: hash.len(),
        hash_bytes: hash.resolver_bytes(),
        fst_bytes: fst.resolver_bytes(),
        hash_build,
        fst_build,
        hash_probe_ns,
        fst_probe_ns,
        probes: probes.len(),
    }
}

/// Streaming-ingest round trip at the largest scale: world → TSV →
/// `ingest_tsv` with a small sort buffer (forced spill runs) → blob →
/// decode via heap read and via mmap, node tables intact on both.
fn run_ingest(target: usize) -> String {
    let world = synth::generate(&SynthConfig::scaled(7, target));
    let dir_path =
        std::env::temp_dir().join(format!("newslink_label_resolve_{}", std::process::id()));
    std::fs::remove_dir_all(&dir_path).ok();
    std::fs::create_dir_all(&dir_path).unwrap();

    let tsv_path = dir_path.join("labels.tsv");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&tsv_path).unwrap());
    let lines = write_graph_tsv(&world.graph, &mut w).unwrap();
    drop(w);
    let tsv_bytes = std::fs::metadata(&tsv_path).unwrap().len();

    // 4 MiB sort buffers: large worlds must spill, proving the external
    // sort path is what's being measured.
    let cfg = IngestConfig {
        spill_dir: Some(dir_path.clone()),
        run_bytes: 4 << 20,
        ..IngestConfig::default()
    };
    let reader = std::io::BufReader::new(std::fs::File::open(&tsv_path).unwrap());
    let (ingest_time, out) = timed(|| ingest_tsv(reader, &cfg).expect("ingest succeeds"));
    let (index, report) = out;
    assert_eq!(report.quarantined, 0);
    println!(
        "label_resolve: ingest of {lines} label lines ({:.1} MiB TSV): {:.3?} ({} spill runs)",
        tsv_bytes as f64 / (1024.0 * 1024.0),
        ingest_time,
        report.spilled_runs,
    );

    let dir = FsDirectory::create(&dir_path).unwrap();
    let blob = index.encode();
    let blob_bytes = blob.len();
    dir.atomic_write("labels.fst", &blob).unwrap();

    let (heap_open, heap_idx) = timed(|| {
        FstLabelIndex::decode(dir.read("labels.fst").unwrap()).expect("heap decode")
    });
    let (mmap_open, mmap_idx) = timed(|| {
        let bytes = dir.open_bytes("labels.fst").unwrap();
        assert!(bytes.is_mapped(), "FsDirectory must mmap");
        FstLabelIndex::decode(bytes).expect("mmap decode")
    });
    assert_eq!(heap_idx.node_meta_count(), report.nodes as u32);
    assert_eq!(mmap_idx.node_meta_count(), report.nodes as u32);
    println!(
        "label_resolve: blob {:.1} MiB  heap open {:.3?}  mmap open {:.3?}",
        blob_bytes as f64 / (1024.0 * 1024.0),
        heap_open,
        mmap_open,
    );

    let mut json = String::new();
    let _ = writeln!(json, "  \"ingest\": {{");
    let _ = writeln!(json, "    \"label_lines\": {lines},");
    let _ = writeln!(json, "    \"tsv_bytes\": {tsv_bytes},");
    let _ = writeln!(json, "    \"run_bytes\": {},", cfg.run_bytes);
    let _ = writeln!(json, "    \"spilled_runs\": {},", report.spilled_runs);
    let _ = writeln!(
        json,
        "    \"ingest_ms\": {:.1},",
        ingest_time.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"blob_bytes\": {blob_bytes},");
    let _ = writeln!(
        json,
        "    \"heap_open_ms\": {:.2},",
        heap_open.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"mmap_open_ms\": {:.2}",
        mmap_open.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  }}");
    std::fs::remove_dir_all(&dir_path).ok();
    json
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (scales, max_probes): (&[usize], usize) = if quick {
        (&[10_000, 100_000], 2_000)
    } else {
        // ~1.4M-node world → >1M distinct surface forms in the resolver.
        (&[10_000, 100_000, 1_400_000], 10_000)
    };

    let mut rows = Vec::new();
    for &target in scales {
        println!("label_resolve: building resolvers at ~{target} nodes…");
        let row = run_scale(target, max_probes);
        println!(
            "  {:>9} labels  hash {:>8.1} MiB / fst {:>8.1} MiB ({:.2}x smaller)  \
             build {:>8.3?} / {:>8.3?}  probe {:>7.0} ns / {:>7.0} ns",
            row.labels,
            row.hash_bytes as f64 / (1024.0 * 1024.0),
            row.fst_bytes as f64 / (1024.0 * 1024.0),
            row.hash_bytes as f64 / row.fst_bytes as f64,
            row.hash_build,
            row.fst_build,
            row.hash_probe_ns,
            row.fst_probe_ns,
        );
        rows.push(row);
    }

    let last = rows.last().unwrap();
    let memory_ratio = last.hash_bytes as f64 / last.fst_bytes as f64;
    let slowdown = last.fst_probe_ns / last.hash_probe_ns;
    println!(
        "\nlabel_resolve: at {} labels the automaton is {memory_ratio:.2}x smaller, \
         probes {slowdown:.2}x the oracle's latency",
        last.labels
    );
    assert!(
        memory_ratio >= 2.0,
        "acceptance: automaton must be ≥2x smaller than the HashMap (got {memory_ratio:.2}x)"
    );
    assert!(
        slowdown <= 2.0,
        "acceptance: automaton lookups must stay within 2x of the HashMap (got {slowdown:.2}x)"
    );

    let ingest_json = run_ingest(*scales.last().unwrap());

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"label_resolve\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"scales\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"labels\": {}, \"probes\": {}, \"hash_bytes\": {}, \"fst_bytes\": {}, \
             \"memory_ratio\": {:.2}, \"hash_build_ms\": {:.1}, \"fst_build_ms\": {:.1}, \
             \"hash_probe_ns\": {:.0}, \"fst_probe_ns\": {:.0}}}{comma}",
            r.labels,
            r.probes,
            r.hash_bytes,
            r.fst_bytes,
            r.hash_bytes as f64 / r.fst_bytes as f64,
            r.hash_build.as_secs_f64() * 1e3,
            r.fst_build.as_secs_f64() * 1e3,
            r.hash_probe_ns,
            r.fst_probe_ns,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"memory_ratio\": {memory_ratio:.2},");
    let _ = writeln!(json, "  \"probe_slowdown\": {slowdown:.2},");
    json.push_str(&ingest_json);
    let _ = writeln!(json, "}}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR8.json");
    std::fs::write(&out, &json).expect("write BENCH_PR8.json");
    println!("label_resolve: wrote {}", out.display());
}
