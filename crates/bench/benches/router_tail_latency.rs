//! Tail latency of the cluster router with one injected slow replica:
//! hedged reads off vs on.
//!
//! One shard group holds the whole corpus on two replicas serving the
//! same index. The first replica sits behind a seeded chaos proxy that
//! delays every response by ~15 ms (±5 ms jitter) — the classic
//! one-slow-machine tail. Because the slow replica is listed first it
//! is every read's primary choice, so without hedging each request
//! eats the full delay. With `--hedge-after-ms 3` the router launches
//! a budget-paid second attempt at the healthy sibling after 3 ms and
//! takes whichever answers first.
//!
//! The run asserts (from the router's own `/metrics` counters) that
//! hedging cut p99 and that upstream amplification stayed inside the
//! configured retry budget: `retries_spent ≤ ratio × primary_calls +
//! cap`.
//!
//! Run with `cargo bench --bench router_tail_latency`. Set
//! `NEWSLINK_BENCH_QUICK=1` for fewer requests (CI snapshot mode).
//! Either way the numbers land in `BENCH_PR9.json` at the repo root.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

use newslink_core::{NewsLink, NewsLinkConfig};
use newslink_kg::{synth, LabelIndex, SynthConfig};
use newslink_serve::{client, Cluster, ResilienceConfig, ServeConfig, Server};
use newslink_util::chaos::{ChaosProxy, Fault, FaultPlan};
use parking_lot::RwLock;

/// Percentile over a latency sample (nearest-rank on the sorted set).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

struct ScenarioResult {
    p50_ms: f64,
    p99_ms: f64,
    errors: usize,
    primary_calls: i64,
    retries_spent: i64,
    hedges_launched: i64,
    hedges_won: i64,
}

/// Serve the corpus through a 2-replica group (replica A delayed by
/// the chaos proxy) and time `requests` sequential searches.
fn run_scenario(
    engine: &NewsLink<'_>,
    docs: &[String],
    bodies: &[String],
    hedge_after_ms: Option<u64>,
    requests: usize,
) -> ScenarioResult {
    let index = RwLock::new(engine.index_corpus(docs));
    let serve_config = ServeConfig {
        read_timeout_ms: 250,
        ..ServeConfig::default().with_workers(4).with_queue_depth(256)
    };
    let replica_a = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind replica a");
    let replica_b = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind replica b");
    let proxy = ChaosProxy::spawn(
        replica_a.local_addr(),
        FaultPlan::always(Fault::Delay { ms: 15, jitter_ms: 5 }),
    )
    .expect("spawn proxy");
    let groups: Vec<Vec<SocketAddr>> = vec![vec![proxy.addr(), replica_b.local_addr()]];
    let resilience = ResilienceConfig {
        hedge_after_ms,
        retry_budget: 2.0, // enough tokens that every request may hedge
        ..ResilienceConfig::default()
    };
    let cluster = Cluster::with_config(groups, resilience);
    let router = Server::bind("127.0.0.1:0", serve_config).expect("bind router");
    let router_handle = router.handle();
    let a_handle = replica_a.handle();
    let b_handle = replica_b.handle();

    let (index, cluster, router, replica_a, replica_b) =
        (&index, &cluster, &router, &replica_a, &replica_b);
    std::thread::scope(|scope| {
        scope.spawn(move || replica_a.run(engine, index).expect("replica a run"));
        scope.spawn(move || replica_b.run(engine, index).expect("replica b run"));
        scope.spawn(move || router.run_router(engine, cluster).expect("router run"));
        let addr = router_handle.addr();

        // Warm up: park connections, fill caches, settle the prober.
        for body in bodies.iter().take(8) {
            let _ = client::request(addr, "POST", "/v1/search", body);
        }

        let mut latencies_ms = Vec::with_capacity(requests);
        let mut errors = 0usize;
        for i in 0..requests {
            let body = &bodies[i % bodies.len()];
            let t = Instant::now();
            match client::request(addr, "POST", "/v1/search", body) {
                Ok((200, _)) => latencies_ms.push(t.elapsed().as_secs_f64() * 1e3),
                Ok(_) | Err(_) => errors += 1,
            }
        }
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        // Resilience counters from the router's own /metrics endpoint.
        let (status, text) =
            client::request(addr, "GET", "/metrics", "").expect("metrics fetch");
        assert_eq!(status, 200, "{text}");
        let metrics: serde::Value = serde_json::from_str(&text).expect("metrics json");
        let res = metrics
            .get("cluster")
            .and_then(|c| c.get("resilience").cloned())
            .expect("resilience section");
        let counter =
            |k: &str| res.get(k).and_then(|v| v.as_i64()).expect("resilience counter");

        router_handle.shutdown();
        a_handle.shutdown();
        b_handle.shutdown();
        ScenarioResult {
            p50_ms: percentile(&latencies_ms, 0.50),
            p99_ms: percentile(&latencies_ms, 0.99),
            errors,
            primary_calls: counter("primary_calls"),
            retries_spent: counter("retries_spent"),
            hedges_launched: counter("hedges_launched"),
            hedges_won: counter("hedges_won"),
        }
    })
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (n_docs, requests) = if quick { (400, 120) } else { (1_200, 400) };

    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .copied()
        .collect();
    let docs: Vec<String> = (0..n_docs)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 7 + 1) % pool.len()]);
            format!("Update {i}: sources close to {a} commented on events involving {b}.")
        })
        .collect();
    let bodies: Vec<String> = (0..24)
        .map(|i| {
            let a = world.graph.label(pool[(i * 5 + 2) % pool.len()]);
            format!(r#"{{"query": "what is happening around {a}", "k": 10}}"#)
        })
        .collect();

    let config = NewsLinkConfig::default()
        .with_segment_docs((n_docs / 8).max(1))
        .with_auto_threads();
    let engine = NewsLink::new(&world.graph, &labels, config);
    println!(
        "router_tail_latency: {n_docs} docs, {requests} requests per scenario, \
         one replica delayed ~15ms…\n"
    );
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "scenario", "p50", "p99", "errors", "hedges", "won", "retries"
    );

    let off = run_scenario(&engine, &docs, &bodies, None, requests);
    println!(
        "{:<14} {:>8.2}ms {:>8.2}ms {:>8} {:>9} {:>9} {:>8}",
        "hedge off", off.p50_ms, off.p99_ms, off.errors, off.hedges_launched, off.hedges_won,
        off.retries_spent
    );
    let on = run_scenario(&engine, &docs, &bodies, Some(3), requests);
    println!(
        "{:<14} {:>8.2}ms {:>8.2}ms {:>8} {:>9} {:>9} {:>8}",
        "hedge 3ms", on.p50_ms, on.p99_ms, on.errors, on.hedges_launched, on.hedges_won,
        on.retries_spent
    );

    // The two claims this bench exists to check.
    assert_eq!(off.errors + on.errors, 0, "all requests answered 200");
    assert!(
        on.p99_ms < off.p99_ms,
        "hedging must cut p99 under a slow replica: {:.2}ms !< {:.2}ms",
        on.p99_ms,
        off.p99_ms
    );
    for (name, r) in [("off", &off), ("on", &on)] {
        let bound = 2.0 * r.primary_calls as f64 + 16.0; // ratio × primaries + cap
        assert!(
            (r.retries_spent as f64) <= bound,
            "hedge {name}: amplification {} exceeds retry budget bound {bound}",
            r.retries_spent
        );
    }
    let speedup = off.p99_ms / on.p99_ms;
    println!(
        "\nrouter_tail_latency: hedging cut p99 {speedup:.1}x \
         ({:.2}ms -> {:.2}ms); amplification stayed within budget",
        off.p99_ms, on.p99_ms
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"router_tail_latency\",");
    let _ = writeln!(json, "  \"docs\": {n_docs},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"slow_replica_delay_ms\": 15,");
    let _ = writeln!(json, "  \"quick\": {quick},");
    for (key, r, comma) in [("hedge_off", &off, ","), ("hedge_on_3ms", &on, ",")] {
        let _ = writeln!(
            json,
            "  \"{key}\": {{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"errors\": {}, \
             \"primary_calls\": {}, \"retries_spent\": {}, \"hedges_launched\": {}, \
             \"hedges_won\": {}}}{comma}",
            r.p50_ms, r.p99_ms, r.errors, r.primary_calls, r.retries_spent, r.hedges_launched,
            r.hedges_won
        );
    }
    let _ = writeln!(json, "  \"p99_speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json");
    std::fs::write(&out, &json).expect("write BENCH_PR9.json");
    println!("router_tail_latency: wrote {}", out.display());
}
