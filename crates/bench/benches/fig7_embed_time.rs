//! Figure 7: average embedding time per news document, NewsLink (G*)
//! vs TreeEmb, with the NLP/NE component split.

use newslink_bench::{banner, cnn_context, kaggle_context};
use newslink_eval::{render_embed_timing, run_fig7};

fn main() {
    let mut rows = Vec::new();
    for ctx in [cnn_context(), kaggle_context()] {
        banner("Figure 7", &ctx);
        rows.push(run_fig7(&ctx));
    }
    newslink_eval::maybe_report("fig7", &rows);
    println!("{}", render_embed_timing(&rows));
}
