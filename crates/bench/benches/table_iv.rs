//! Table IV: effectiveness of search results against popular approaches.
//!
//! Reproduces SIM@{5,10,20} and HIT@{1,5} on both corpora for Doc2Vec,
//! SBERT, LDA, QEPRF, Lucene, and NewsLink(0.2), under both the
//! largest-entity-density and random query strategies.

use newslink_bench::{banner, cnn_context, kaggle_context};
use newslink_eval::{render_scores, run_table_iv};

fn main() {
    for ctx in [cnn_context(), kaggle_context()] {
        banner("Table IV", &ctx);
        let start = std::time::Instant::now();
        let scores = run_table_iv(&ctx);
        newslink_eval::maybe_report(
            &format!("table_iv_{}", ctx.corpus.flavor.name().to_lowercase()),
            &scores,
        );
        println!(
            "{}",
            render_scores(
                &format!("Table IV — {}", ctx.corpus.flavor.name()),
                &scores
            )
        );
        println!("(took {:.1}s)", start.elapsed().as_secs_f64());
    }
}
