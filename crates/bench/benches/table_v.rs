//! Table V: average entity matching ratio per test query.

use newslink_bench::{banner, cnn_context, kaggle_context};
use newslink_eval::{render_matching, run_table_v};

fn main() {
    let mut rows = Vec::new();
    for ctx in [cnn_context(), kaggle_context()] {
        banner("Table V", &ctx);
        rows.push(run_table_v(&ctx));
    }
    newslink_eval::maybe_report("table_v", &rows);
    println!("{}", render_matching(&rows));
}
