//! Criterion micro-benchmarks for the core operations: the `G*` search,
//! the TreeEmb search, inverted-index queries, NER throughput, and
//! whole-document embedding.

use criterion::{criterion_group, criterion_main, Criterion};

use newslink_core::{EmbeddingModel, NewsLinkConfig};
use newslink_corpus::{generate_corpus, CorpusConfig, CorpusFlavor};
use newslink_embed::{find_lcag, find_tree_embedding, SearchConfig};
use newslink_kg::{synth, LabelIndex, SynthConfig};
use newslink_nlp::{analyze, tokenize, NlpPipeline, Recognizer};
use newslink_text::{Bm25, IndexBuilder, Searcher};

fn bench_embedding_search(c: &mut Criterion) {
    let world = synth::generate(&SynthConfig::medium(5));
    let labels_idx = LabelIndex::build(&world.graph);
    let g = &world.graph;
    // A realistic entity group: an event, its country, a participant.
    let ev = &world.events[0];
    let group: Vec<String> = [ev.node, ev.places[0]]
        .iter()
        .chain(ev.participants.first())
        .map(|&n| g.label(n).to_lowercase())
        .collect();
    let cfg = SearchConfig::default();

    let mut group_bench = c.benchmark_group("ne_search");
    group_bench.bench_function("lcag", |b| {
        b.iter(|| find_lcag(g, &labels_idx, &group, &cfg).unwrap())
    });
    group_bench.bench_function("tree", |b| {
        b.iter(|| find_tree_embedding(g, &labels_idx, &group, &cfg).unwrap())
    });
    group_bench.finish();
}

fn bench_text_search(c: &mut Criterion) {
    let world = synth::generate(&SynthConfig::medium(5));
    let corpus = generate_corpus(&world, &CorpusConfig::new(3, 500, CorpusFlavor::CnnLike));
    let mut ib = IndexBuilder::new();
    let terms: Vec<Vec<String>> = corpus.docs.iter().map(|d| analyze(&d.text)).collect();
    for t in &terms {
        ib.add_document(t);
    }
    let index = ib.build();
    let query = analyze(&corpus.docs[0].title);
    c.bench_function("bm25_top20", |b| {
        let s = Searcher::new(&index, Bm25::default());
        b.iter(|| s.search(&query, 20))
    });
}

fn bench_nlp(c: &mut Criterion) {
    let world = synth::generate(&SynthConfig::medium(5));
    let labels_idx = LabelIndex::build(&world.graph);
    let corpus = generate_corpus(&world, &CorpusConfig::new(3, 10, CorpusFlavor::CnnLike));
    let text = corpus.docs[0].text.clone();
    let recognizer = Recognizer::new(&world.graph, &labels_idx);
    let tokens = tokenize(&text);
    c.bench_function("ner_document", |b| {
        b.iter(|| recognizer.recognize(&text, &tokens))
    });
    let nlp = NlpPipeline::new(&world.graph, &labels_idx);
    c.bench_function("nlp_analyze_document", |b| {
        b.iter(|| nlp.analyze_document(&text))
    });
}

fn bench_document_embedding(c: &mut Criterion) {
    let world = synth::generate(&SynthConfig::medium(5));
    let labels_idx = LabelIndex::build(&world.graph);
    let corpus = generate_corpus(&world, &CorpusConfig::new(3, 10, CorpusFlavor::CnnLike));
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let cfg = NewsLinkConfig::default().with_model(EmbeddingModel::Lcag);
    c.bench_function("embed_10_documents", |b| {
        b.iter(|| newslink_core::index_corpus(&world.graph, &labels_idx, &cfg, &texts))
    });
}

fn bench_blended_ranking(c: &mut Criterion) {
    let world = synth::generate(&SynthConfig::medium(5));
    let labels_idx = LabelIndex::build(&world.graph);
    let corpus = generate_corpus(&world, &CorpusConfig::new(3, 400, CorpusFlavor::CnnLike));
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let exhaustive_cfg = NewsLinkConfig::default();
    let ta_cfg = NewsLinkConfig::default().with_threshold_algorithm(true);
    let index = newslink_core::index_corpus(&world.graph, &labels_idx, &exhaustive_cfg, &texts);
    let query = corpus.docs[0].title.clone();
    let mut group = c.benchmark_group("blended_rank");
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            newslink_core::search(&world.graph, &labels_idx, &exhaustive_cfg, &index, &query, 10)
        })
    });
    group.bench_function("threshold_algorithm", |b| {
        b.iter(|| newslink_core::search(&world.graph, &labels_idx, &ta_cfg, &index, &query, 10))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_embedding_search,
    bench_text_search,
    bench_nlp,
    bench_document_embedding,
    bench_blended_ranking
);
criterion_main!(benches);
