//! Cold-start benchmark: process start → first query served, heap vs
//! mmap storage backends.
//!
//! Builds a ~10k-doc corpus once, saves a format-v4 snapshot, then
//! measures **time-to-first-query** per backend: open the snapshot
//! through its [`SegmentReader`] and answer one search. The heap
//! backend reads and checksums the whole file before it can serve; the
//! mmap backend maps the file, validates the envelope, and faults pages
//! in as the first query touches them.
//!
//! Run with `cargo bench --bench cold_start`. Set
//! `NEWSLINK_BENCH_QUICK=1` for a smaller corpus (CI snapshot mode).
//! Either way the numbers land in `BENCH_PR6.json` at the repo root.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use newslink_core::{FsDirectory, NewsLink, NewsLinkConfig, StorageBackend};
use newslink_kg::{synth, LabelIndex, SynthConfig};

/// Best-of-`reps` wall time of `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(r);
    }
    (best.unwrap(), out.unwrap())
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (n_docs, reps) = if quick { (2_000, 3) } else { (10_000, 5) };

    let world = synth::generate(&SynthConfig::medium(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();
    let docs: Vec<String> = (0..n_docs)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 7 + 1) % pool.len()]);
            let c = world.graph.label(pool[(i * 11 + 2) % pool.len()]);
            format!(
                "Report {i}: {a} officials discussed developments with {b} while \
                 observers in {c} tracked trade, aid and security talks."
            )
        })
        .collect();
    // Entity-shaped probe, the query class NewsLink exists for: selective
    // terms, so the measurement isolates open cost instead of drowning it
    // in a full-corpus postings walk.
    let query = format!(
        "{} {}",
        world.graph.label(pool[0]),
        world.graph.label(pool[1])
    );

    // Sharded build (~10 sections) — the shape a served snapshot has in
    // practice, and what lets the mapped open verify sections in parallel.
    let config = NewsLinkConfig::default()
        .with_segment_docs((n_docs / 10).max(1))
        .with_auto_threads();
    let engine = NewsLink::new(&world.graph, &labels, config);
    println!("cold_start: indexing {n_docs} docs…");
    let index = engine.index_corpus(&docs);

    let dir_path = std::env::temp_dir().join(format!("newslink_cold_start_{}", std::process::id()));
    std::fs::remove_dir_all(&dir_path).ok();
    std::fs::create_dir_all(&dir_path).unwrap();
    let snap = dir_path.join("index.nlnk");
    newslink_core::save_newslink_index(&index, &world.graph, &snap).unwrap();
    let snapshot_bytes = std::fs::metadata(&snap).unwrap().len();
    println!(
        "cold_start: snapshot is {:.1} MiB ({} segments)\n",
        snapshot_bytes as f64 / (1024.0 * 1024.0),
        index.segments().len(),
    );

    let dir = FsDirectory::create(&dir_path).unwrap();
    let reference = engine.search(&index, &query, 10);
    assert!(!reference.results.is_empty(), "probe query must match");

    let mut rows: Vec<(StorageBackend, Duration, Duration)> = Vec::new();
    for backend in [StorageBackend::Heap, StorageBackend::Mmap] {
        let reader = backend.reader();
        let (open_only, _) = best_of(reps, || {
            let (idx, report) = reader
                .read_snapshot(&dir, "index.nlnk", &world.graph, false)
                .expect("snapshot loads");
            assert!(!report.degraded());
            idx
        });
        let (first_query, loaded) = best_of(reps, || {
            let (idx, _) = reader
                .read_snapshot(&dir, "index.nlnk", &world.graph, false)
                .expect("snapshot loads");
            let out = engine.search(&idx, &query, 10);
            assert_eq!(out.results.len(), reference.results.len());
            idx
        });
        // Bit-parity with the in-memory build, per backend.
        let out = engine.search(&loaded, &query, 10);
        for (x, y) in out.results.iter().zip(&reference.results) {
            assert_eq!(x.doc, y.doc, "{backend}: ranking diverged");
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{backend}: score bits diverged");
        }
        println!(
            "{backend:>5}: open {:>10.3?}  open+first-query {:>10.3?}",
            open_only, first_query
        );
        rows.push((backend, open_only, first_query));
    }

    let heap = rows[0].2.as_secs_f64();
    let mmap = rows[1].2.as_secs_f64();
    let speedup = heap / mmap;
    println!("\ncold_start: mmap time-to-first-query speedup = {speedup:.1}x");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"cold_start\",");
    let _ = writeln!(json, "  \"docs\": {n_docs},");
    let _ = writeln!(json, "  \"snapshot_bytes\": {snapshot_bytes},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"backends\": [");
    for (i, (backend, open, first)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{backend}\", \"open_us\": {:.1}, \
             \"time_to_first_query_us\": {:.1}}}{comma}",
            open.as_secs_f64() * 1e6,
            first.as_secs_f64() * 1e6,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"mmap_speedup\": {speedup:.2}");
    let _ = writeln!(json, "}}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json");
    std::fs::write(&out, &json).expect("write BENCH_PR6.json");
    println!("cold_start: wrote {}", out.display());
    std::fs::remove_dir_all(&dir_path).ok();
}
