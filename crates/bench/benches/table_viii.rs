//! Table VIII: per-component query processing time (NLP / NE / NS).

use newslink_bench::{banner, cnn_context, kaggle_context};
use newslink_core::EmbeddingModel;
use newslink_eval::{render_query_timing, run_table_viii, NewsLinkMethod};

fn main() {
    let mut rows = Vec::new();
    for ctx in [cnn_context(), kaggle_context()] {
        banner("Table VIII", &ctx);
        let method = NewsLinkMethod::new(&ctx, 0.2, EmbeddingModel::Lcag);
        rows.push(run_table_viii(&ctx, &method));
    }
    newslink_eval::maybe_report("table_viii", &rows);
    println!("{}", render_query_timing(&rows));
}
