//! Figure 6 + Tables I/II/VI: the case study — a worked query/result pair
//! with matched/unmatched/induced entities and rendered relationship
//! paths.

use newslink_bench::{banner, cnn_context};
use newslink_eval::run_case_study;

fn main() {
    let ctx = cnn_context();
    banner("Figure 6 / case study", &ctx);
    match run_case_study(&ctx) {
        Some(cs) => {
            println!("{cs}");
            if let Some(dir) = newslink_eval::report_dir() {
                let path = dir.join("figure6.dot");
                if std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, &cs.dot))
                    .is_ok()
                {
                    println!("(wrote {} — render with: dot -Tsvg)", path.display());
                }
            }
        }
        None => println!("no explainable pair found at this scale"),
    }
}
