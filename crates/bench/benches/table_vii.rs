//! Table VII: NewsLink(β) vs TreeEmb(β) across β ∈ {0.2, 0.5, 0.8, 1.0}.
//!
//! β = 0 reduces to Lucene (see Table IV's Lucene row).

use newslink_bench::{banner, cnn_context, kaggle_context};
use newslink_eval::{render_scores, run_table_vii};

fn main() {
    let betas = [0.2, 0.5, 0.8, 1.0];
    for ctx in [cnn_context(), kaggle_context()] {
        banner("Table VII", &ctx);
        let start = std::time::Instant::now();
        let scores = run_table_vii(&ctx, &betas);
        newslink_eval::maybe_report(
            &format!("table_vii_{}", ctx.corpus.flavor.name().to_lowercase()),
            &scores,
        );
        println!(
            "{}",
            render_scores(
                &format!("Table VII — {}", ctx.corpus.flavor.name()),
                &scores
            )
        );
        println!("(took {:.1}s)", start.elapsed().as_secs_f64());
    }
}
