//! Scatter-gather overhead of the cluster router.
//!
//! Builds one corpus, serves it two ways in-process — a single
//! standalone server, and a router in front of 1, 2 or 4 single-replica
//! shard groups each holding its id stripe — and measures `POST
//! /v1/search` requests per second through each front door at client
//! concurrency 8. Every request is a full TCP connect + round-trip with
//! distinct queries (cycled), so the engines really score; the router
//! additionally pays its internal stats/search fan-out per request.
//!
//! Run with `cargo bench --bench router_throughput`. Set
//! `NEWSLINK_BENCH_QUICK=1` for a smaller corpus and fewer requests (CI
//! snapshot mode). Either way the numbers land in `BENCH_PR7.json` at
//! the repo root.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use newslink_core::{NewsLink, NewsLinkConfig, NewsLinkIndex};
use newslink_kg::{synth, LabelIndex, SynthConfig};
use newslink_serve::{client, Cluster, ServeConfig, Server};
use parking_lot::RwLock;

const CONCURRENCY: usize = 8;

/// Fire `requests` at `addr` from [`CONCURRENCY`] client threads and
/// return `(requests_per_sec, mean_ms, errors)`.
fn run_level(addr: SocketAddr, bodies: &[String], requests: usize) -> (f64, f64, usize) {
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONCURRENCY {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    break;
                }
                let body = &bodies[i % bodies.len()];
                match client::request(addr, "POST", "/v1/search", body) {
                    Ok((200, _)) => {}
                    Ok(_) | Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    (
        requests as f64 / elapsed,
        elapsed * 1e3 / requests as f64,
        errors.load(Ordering::Relaxed),
    )
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (n_docs, requests) = if quick { (600, 200) } else { (2_400, 600) };

    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .copied()
        .collect();
    let docs: Vec<String> = (0..n_docs)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 7 + 1) % pool.len()]);
            format!("Update {i}: sources close to {a} commented on events involving {b}.")
        })
        .collect();
    let bodies: Vec<String> = (0..24)
        .map(|i| {
            let a = world.graph.label(pool[(i * 5 + 2) % pool.len()]);
            format!(r#"{{"query": "what is happening around {a}", "k": 10}}"#)
        })
        .collect();

    let config = NewsLinkConfig::default()
        .with_segment_docs((n_docs / 8).max(1))
        .with_auto_threads();
    let engine = NewsLink::new(&world.graph, &labels, config);
    println!("router_throughput: indexing {n_docs} docs, {requests} requests per scenario…\n");
    println!("{:<24} {:>12} {:>12} {:>8}", "scenario", "req/s", "mean", "errors");

    // A short idle read timeout so shutdown does not wait out the
    // default drain for every connection the router leaves parked.
    let serve_config = ServeConfig {
        read_timeout_ms: 250,
        ..ServeConfig::default().with_workers(4).with_queue_depth(256)
    };

    // Baseline: one standalone process over the whole corpus.
    let mono_index = RwLock::new(engine.index_corpus(&docs));
    let mono = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind mono");
    let mono_handle = mono.handle();
    let baseline = std::thread::scope(|scope| {
        scope.spawn(|| mono.run(&engine, &mono_index).expect("mono run"));
        let row = run_level(mono_handle.addr(), &bodies, requests);
        mono_handle.shutdown();
        row
    });
    println!(
        "{:<24} {:>10.0}/s {:>9.2}ms {:>8}",
        "standalone", baseline.0, baseline.1, baseline.2
    );

    let mut rows: Vec<(u32, f64, f64, usize)> = Vec::new();
    for shard_count in [1u32, 2, 4] {
        let shard_indexes: Vec<RwLock<NewsLinkIndex>> = (0..shard_count)
            .map(|s| {
                let mut idx = engine.index_corpus_sharded(&docs, s, shard_count);
                idx.set_id_stripe(s, shard_count);
                RwLock::new(idx)
            })
            .collect();
        let shard_servers: Vec<Server> = (0..shard_count)
            .map(|_| Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind shard"))
            .collect();
        let groups: Vec<Vec<SocketAddr>> =
            shard_servers.iter().map(|s| vec![s.local_addr()]).collect();
        let cluster = Cluster::new(groups);
        let router = Server::bind("127.0.0.1:0", serve_config.clone()).expect("bind router");
        let router_handle = router.handle();
        let shard_handles: Vec<_> = shard_servers.iter().map(Server::handle).collect();

        let (engine, cluster, router) = (&engine, &cluster, &router);
        let row = std::thread::scope(|scope| {
            for (srv, idx) in shard_servers.iter().zip(&shard_indexes) {
                scope.spawn(move || srv.run(engine, idx).expect("shard run"));
            }
            scope.spawn(move || router.run_router(engine, cluster).expect("router run"));
            let row = run_level(router_handle.addr(), &bodies, requests);
            router_handle.shutdown();
            for h in &shard_handles {
                h.shutdown();
            }
            row
        });
        println!(
            "{:<24} {:>10.0}/s {:>9.2}ms {:>8}",
            format!("router shards={shard_count}"),
            row.0,
            row.1,
            row.2
        );
        rows.push((shard_count, row.0, row.1, row.2));
    }

    let overhead_1 = baseline.0 / rows[0].1;
    println!(
        "\nrouter_throughput: 1-shard router costs {overhead_1:.2}x the standalone rate \
         (scatter-gather + second hop)"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"router_throughput\",");
    let _ = writeln!(json, "  \"docs\": {n_docs},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"concurrency\": {CONCURRENCY},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"standalone\": {{\"reqs_per_sec\": {:.1}, \"mean_ms\": {:.3}, \"errors\": {}}},",
        baseline.0, baseline.1, baseline.2
    );
    let _ = writeln!(json, "  \"router\": [");
    for (i, (shards, rate, mean, errors)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"shards\": {shards}, \"reqs_per_sec\": {rate:.1}, \
             \"mean_ms\": {mean:.3}, \"errors\": {errors}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"single_shard_overhead\": {overhead_1:.3}");
    let _ = writeln!(json, "}}");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR7.json");
    std::fs::write(&out, &json).expect("write BENCH_PR7.json");
    println!("router_throughput: wrote {}", out.display());
}
