//! Ablation (beyond the paper): does edge weighting matter?
//!
//! The model is defined over weighted KGs but the paper evaluates unit
//! weights. This ablation compares, on identical topology, β = 1 retrieval
//! quality under (a) unit weights and (b) predicate-rarity weights where
//! common predicates (generic containment) cost 2 — biasing `G*` toward
//! specific relationships.

use newslink_core::{EmbeddingModel, NewsLinkConfig};
use newslink_corpus::QueryStrategy;
use newslink_eval::{evaluate_method, judge, judge_vectors, render_scores, SearchMethod};
use newslink_kg::{reweight_by_predicate_rarity, KnowledgeGraph, LabelIndex};

use newslink_bench::{banner, cnn_context};

/// NewsLink over an explicit (possibly reweighted) graph.
struct WeightedMethod<'a> {
    name: &'a str,
    graph: &'a KnowledgeGraph,
    labels: &'a LabelIndex,
    config: NewsLinkConfig,
    index: newslink_core::NewsLinkIndex,
}

impl SearchMethod for WeightedMethod<'_> {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn rank(&self, query: &str, k: usize) -> Vec<usize> {
        newslink_core::search(self.graph, self.labels, &self.config, &self.index, query, k)
            .results
            .into_iter()
            .map(|r| r.doc.index())
            .collect()
    }
}

fn main() {
    let ctx = cnn_context();
    banner("Ablation: edge weighting", &ctx);
    let judge = judge();
    let vectors = judge_vectors(&judge, &ctx.texts);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = NewsLinkConfig::default()
        .with_beta(1.0)
        .with_model(EmbeddingModel::Lcag)
        .with_threads(threads);

    let reweighted = reweight_by_predicate_rarity(&ctx.world.graph, 0.5);
    let reweighted_labels = LabelIndex::build(&reweighted);

    let mut scores = Vec::new();
    for (name, graph, labels) in [
        ("unit weights", &ctx.world.graph, &ctx.label_index),
        ("rarity weights", &reweighted, &reweighted_labels),
    ] {
        let index = newslink_core::index_corpus(graph, labels, &config, &ctx.texts);
        let avg_nodes: f64 = index
            .embeddings()
            .map(|e| e.all_nodes().len())
            .sum::<usize>() as f64
            / ctx.texts.len().max(1) as f64;
        println!("{name:<16} avg embedding nodes/doc = {avg_nodes:.2}");
        let method = WeightedMethod {
            name,
            graph,
            labels,
            config: config.clone(),
            index,
        };
        for strategy in [QueryStrategy::LargestEntityDensity, QueryStrategy::Random] {
            let cases = ctx.queries(strategy);
            scores.push(evaluate_method(&method, &cases, strategy, &vectors));
        }
    }
    println!("{}", render_scores("Ablation — edge weighting (β = 1)", &scores));
}
