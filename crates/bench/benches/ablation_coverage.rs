//! Ablation (DESIGN.md E8): does the multi-path *width* of `G*` matter?
//!
//! Compares, at β = 1 (embeddings only) with identical compactness-optimal
//! root selection:
//!   - full `G*` (all shortest paths per label), vs
//!   - the `single_path` variant (one shortest path per label).
//!
//! Reports embedding sizes and SIM/HIT quality under both query
//! strategies. This isolates exactly the coverage property the paper
//! credits for beating tree models.

use newslink_bench::{banner, cnn_context};
use newslink_core::{EmbeddingModel, NewsLinkConfig};
use newslink_corpus::QueryStrategy;
use newslink_embed::SearchConfig;
use newslink_eval::{evaluate_method, judge, judge_vectors, render_scores, NewsLinkMethod};

fn main() {
    let ctx = cnn_context();
    banner("Ablation: multi-path coverage", &ctx);
    let judge = judge();
    let vectors = judge_vectors(&judge, &ctx.texts);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let full_cfg = NewsLinkConfig::default()
        .with_beta(1.0)
        .with_model(EmbeddingModel::Lcag)
        .with_threads(threads);
    let mut narrow_cfg = full_cfg.clone();
    narrow_cfg.search = SearchConfig {
        single_path: true,
        ..SearchConfig::default()
    };

    let mut scores = Vec::new();
    for (label, cfg) in [("full-width G*", full_cfg), ("single-path G*", narrow_cfg)] {
        let method = NewsLinkMethod::with_config(&ctx, cfg);
        let nodes: usize = method
            .index()
            .embeddings()
            .map(|e| e.all_nodes().len())
            .sum();
        println!(
            "{label:<16} avg embedding nodes/doc = {:.2}",
            nodes as f64 / ctx.texts.len().max(1) as f64
        );
        for strategy in [QueryStrategy::LargestEntityDensity, QueryStrategy::Random] {
            let cases = ctx.queries(strategy);
            let mut s = evaluate_method(&method, &cases, strategy, &vectors);
            s.method = label.to_string();
            scores.push(s);
        }
    }
    println!("{}", render_scores("Ablation — coverage (β = 1)", &scores));
}
