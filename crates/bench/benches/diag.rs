//! Internal diagnostic (not a paper table): per-query comparison of
//! Lucene vs NewsLink(0.2) HIT@1 outcomes, categorizing where the BON
//! blend rescues and where it hurts.

use newslink_bench::{banner, cnn_context};
use newslink_core::EmbeddingModel;
use newslink_corpus::QueryStrategy;
use newslink_eval::{LuceneMethod, NewsLinkMethod, SearchMethod};

fn main() {
    let ctx = cnn_context();
    banner("diagnostic: BON rescue/hurt", &ctx);
    let lucene = LuceneMethod::new(&ctx);
    let newslink = if std::env::var("NEWSLINK_DIAG_RAW").is_ok() {
        let mut cfg = newslink_core::NewsLinkConfig::default()
            .with_beta(0.2)
            .with_threads(
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            );
        cfg.normalize_scores = false;
        NewsLinkMethod::with_config(&ctx, cfg)
    } else {
        NewsLinkMethod::new(&ctx, 0.2, EmbeddingModel::Lcag)
    };
    let cases = ctx.queries(QueryStrategy::LargestEntityDensity);
    let mut both = 0;
    let mut rescued = 0;
    let mut hurt = 0;
    let mut neither = 0;
    for c in &cases {
        let l1 = lucene.rank(&c.query, 1).first() == Some(&c.doc);
        let n1 = newslink.rank(&c.query, 1).first() == Some(&c.doc);
        match (l1, n1) {
            (true, true) => both += 1,
            (false, true) => rescued += 1,
            (true, false) => {
                hurt += 1;
                let lr = lucene.rank(&c.query, 3);
                let nr = newslink.rank(&c.query, 3);
                println!("HURT doc={} q={:?}", c.doc, &c.query[..c.query.len().min(70)]);
                println!("  lucene top3   {lr:?}");
                println!("  newslink top3 {nr:?}");
                let winner = nr[0];
                println!(
                    "  winner event={} source event={}",
                    ctx.corpus.docs[winner].event_idx, ctx.corpus.docs[c.doc].event_idx
                );
            }
            (false, false) => neither += 1,
        }
    }
    println!("\nboth={both} rescued={rescued} hurt={hurt} neither={neither} / {}", cases.len());
    // Paired bootstrap: is the HIT@1 difference statistically meaningful?
    for k in [1usize, 5] {
        if let Some(r) =
            newslink_eval::compare_hit_at_k(&newslink, &lucene, &cases, k, 5000, 0xB007)
        {
            println!(
                "HIT@{k}: NewsLink − Lucene = {:+.4}, paired-bootstrap p = {:.3} ({})",
                r.observed_diff,
                r.p_value,
                if r.significant_at(0.05) { "significant" } else { "not significant" }
            );
        }
    }
}
