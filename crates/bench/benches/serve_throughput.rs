//! Loopback throughput of the `newslink-serve` HTTP layer.
//!
//! Starts one server over a synthetic world and measures requests per
//! second at client concurrency 1, 8 and 64 — every request a full TCP
//! connect + HTTP round-trip against `POST /search` (distinct queries,
//! so the engine really scores) plus a warm-cache pass (repeated query,
//! served by the whole-query memo) to isolate protocol overhead.
//!
//! Run with `cargo bench --bench serve_throughput`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use newslink_core::{NewsLink, NewsLinkConfig};
use newslink_kg::{synth, LabelIndex, SynthConfig};
use newslink_serve::{client, ServeConfig, Server};

const REQUESTS_PER_LEVEL: usize = 300;
const CONCURRENCY: [usize; 3] = [1, 8, 64];

fn main() {
    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let engine = NewsLink::new(&world.graph, &labels, NewsLinkConfig::default());
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .copied()
        .collect();
    let docs: Vec<String> = (0..120)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 7 + 1) % pool.len()]);
            format!("Update {i}: sources close to {a} commented on events involving {b}.")
        })
        .collect();
    let index = parking_lot::RwLock::new(engine.index_corpus(&docs));

    // Distinct query bodies (cycled) and one repeated body for the
    // warm-cache pass.
    let bodies: Vec<String> = (0..24)
        .map(|i| {
            let a = world.graph.label(pool[(i * 5 + 2) % pool.len()]);
            format!(r#"{{"query": "what is happening around {a}", "k": 10}}"#)
        })
        .collect();
    let warm_body = bodies[0].clone();

    let config = ServeConfig::default().with_workers(4).with_queue_depth(256);
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let handle = server.handle();
    let addr = handle.addr();
    println!(
        "serve_throughput: {} docs, {} workers, {} requests per level\n",
        index.read().doc_count(),
        server.config().workers,
        REQUESTS_PER_LEVEL
    );
    println!("{:<24} {:>12} {:>12} {:>8}", "scenario", "req/s", "mean", "errors");

    std::thread::scope(|scope| {
        scope.spawn(|| server.run(&engine, &index).expect("server run"));

        for &concurrency in &CONCURRENCY {
            run_level(addr, &bodies, concurrency, &format!("search c={concurrency}"));
        }
        // Warm pass: the repeated query is answered by the query memo, so
        // this approximates pure protocol + dispatch overhead.
        run_level(addr, std::slice::from_ref(&warm_body), 8, "warm cache c=8");

        handle.shutdown();
    });
}

/// Fire `REQUESTS_PER_LEVEL` requests at `addr` from `concurrency`
/// client threads and print the achieved rate.
fn run_level(addr: std::net::SocketAddr, bodies: &[String], concurrency: usize, label: &str) {
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= REQUESTS_PER_LEVEL {
                    break;
                }
                let body = &bodies[i % bodies.len()];
                match client::request(addr, "POST", "/search", body) {
                    Ok((200, _)) => {}
                    // 429s count as errors here: the bench sizes its
                    // queue to admit the full offered load.
                    Ok(_) | Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let rate = REQUESTS_PER_LEVEL as f64 / elapsed.as_secs_f64();
    println!(
        "{:<24} {:>10.0}/s {:>9.2}ms {:>8}",
        label,
        rate,
        elapsed.as_secs_f64() * 1e3 / REQUESTS_PER_LEVEL as f64,
        errors.load(Ordering::Relaxed)
    );
}
