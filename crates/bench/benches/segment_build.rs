//! Parallel segment-build benchmark.
//!
//! Measures wall time of `index_corpus` as the segment size (and with
//! it, the build parallelism) varies: one monolithic segment built on a
//! single thread versus sharded builds on 2/4/N threads. The embedding
//! stage is deliberately pre-warmed through the engine cache so the
//! numbers isolate the *index construction* path the segmented
//! architecture parallelizes, and a final check asserts every layout
//! ranks a probe query bit-identically to the monolithic build.
//!
//! Run with `cargo bench --bench segment_build`.

use std::time::{Duration, Instant};

use newslink_core::{NewsLink, NewsLinkConfig, SearchRequest};
use newslink_kg::{synth, LabelIndex, SynthConfig};

/// Best-of-`reps` wall time of `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(r);
    }
    (best.unwrap(), out.unwrap())
}

fn main() {
    let world = synth::generate(&SynthConfig::medium(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();
    let docs: Vec<String> = (0..2000)
        .map(|i| {
            let a = world.graph.label(pool[(i * 3) % pool.len()]);
            let b = world.graph.label(pool[(i * 7 + 1) % pool.len()]);
            let c = world.graph.label(pool[(i * 11 + 2) % pool.len()]);
            format!(
                "Report {i}: {a} officials discussed developments with {b} while \
                 observers in {c} tracked trade, aid and security talks."
            )
        })
        .collect();

    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "segment_build: {} docs, machine has {machine} hardware threads\n",
        docs.len()
    );
    println!(
        "{:<36} {:>12} {:>10} {:>9}",
        "layout", "build time", "segments", "speedup"
    );

    // One engine per layout shares nothing; instead each engine warms
    // its own embed cache with a throwaway build, so the measured rebuild
    // is dominated by segment construction rather than NLP/NE.
    let probe = format!(
        r#"{} {} security talks"#,
        world.graph.label(pool[0]),
        world.graph.label(pool[1])
    );
    let layouts: Vec<(String, NewsLinkConfig)> = vec![
        (
            "monolithic (threads=1)".to_string(),
            NewsLinkConfig::default().with_threads(1),
        ),
        (
            "segment_docs=250 (threads=2)".to_string(),
            NewsLinkConfig::default().with_segment_docs(250).with_threads(2),
        ),
        (
            "segment_docs=250 (threads=4)".to_string(),
            NewsLinkConfig::default().with_segment_docs(250).with_threads(4),
        ),
        (
            format!("segment_docs=125 (threads={machine})"),
            NewsLinkConfig::default().with_segment_docs(125).with_threads(machine),
        ),
    ];

    let mut baseline: Option<Duration> = None;
    let mut reference: Option<Vec<(u32, u64)>> = None;
    for (label, config) in layouts {
        let engine = NewsLink::new(&world.graph, &labels, config);
        engine.index_corpus(&docs); // warm the embed cache
        let (dt, index) = best_of(3, || engine.index_corpus(&docs));
        let speedup = baseline.map_or(1.0, |b| b.as_secs_f64() / dt.as_secs_f64());
        if baseline.is_none() {
            baseline = Some(dt);
        }
        println!(
            "{label:<36} {:>9.2} ms {:>10} {:>8.2}x",
            dt.as_secs_f64() * 1e3,
            index.segment_count(),
            speedup
        );

        // Bit-parity guard: every layout must rank identically.
        let response = engine.execute(&index, &SearchRequest::new(&probe).with_k(10));
        let ranking: Vec<(u32, u64)> = response
            .results
            .iter()
            .map(|h| (h.doc.0, h.score.to_bits()))
            .collect();
        match &reference {
            None => reference = Some(ranking),
            Some(expected) => assert_eq!(
                expected, &ranking,
                "{label}: segmented ranking diverged from monolithic"
            ),
        }
    }
    println!("\nall layouts ranked the probe query bit-identically");
}
