//! Cold-vs-warm micro-benchmark for the shared traversal/embedding cache.
//!
//! Measures the two hot paths the cache fronts:
//!
//! 1. corpus indexing over a stream with recurring entity groups
//!    (uncached vs. engine-cached rebuild);
//! 2. repeated query execution (cold engine vs. warm query memo).
//!
//! Prints absolute times and warm-speedup ratios; run with
//! `cargo bench --bench cache_hit`.

use std::time::{Duration, Instant};

use newslink_core::{index_corpus_with, NewsLink, NewsLinkConfig, SearchRequest};
use newslink_kg::{synth, LabelIndex, SynthConfig};

/// Best-of-`reps` wall time of `f`.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        let dt = t.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(r);
    }
    (best.unwrap(), out.unwrap())
}

fn fmt(d: Duration) -> String {
    format!("{:8.2} ms", d.as_secs_f64() * 1e3)
}

fn main() {
    let world = synth::generate(&SynthConfig::small(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();

    // A news stream: 240 articles cycling through 24 recurring entity
    // pairings, the shape the group memo is built for.
    let docs: Vec<String> = (0..240)
        .map(|i| {
            let story = i % 24;
            let a = world.graph.label(pool[(story * 3) % pool.len()]);
            let b = world.graph.label(pool[(story * 7 + 1) % pool.len()]);
            format!("Update {i}: sources close to {a} commented on events involving {b}.")
        })
        .collect();
    let queries: Vec<String> = (0..24)
        .map(|i| {
            let a = world.graph.label(pool[(i * 5 + 2) % pool.len()]);
            format!("what is happening around {a}")
        })
        .collect();

    let cfg = NewsLinkConfig::default();
    println!(
        "cache_hit: {} docs / {} queries over a {}-node graph\n",
        docs.len(),
        queries.len(),
        world.graph.node_count()
    );

    // --- Indexing: uncached vs. cached engine (cache pre-warmed by one
    // build, as in a rebuild/refresh deployment).
    let (cold_index, _) =
        best_of(3, || index_corpus_with(&world.graph, &labels, &cfg, None, &docs));
    let engine = NewsLink::new(&world.graph, &labels, cfg.clone());
    let index = engine.index_corpus(&docs); // populate
    let (warm_index, warm_idx) = best_of(3, || engine.index_corpus(&docs));
    println!("index   cold (uncached)      {}", fmt(cold_index));
    println!(
        "index   warm (group memo)    {}   {:5.1}x speedup",
        fmt(warm_index),
        cold_index.as_secs_f64() / warm_index.as_secs_f64()
    );
    println!(
        "        warm run counters: {} hits / {} misses",
        warm_idx.cache_stats.hits, warm_idx.cache_stats.misses
    );

    // --- Queries: cold engine pass vs. warm query-memo pass.
    let run_queries = |engine: &NewsLink| {
        let mut n = 0;
        for q in &queries {
            n += engine
                .execute(&index, &SearchRequest::new(q).with_k(10))
                .results
                .len();
        }
        n
    };
    let (cold_query, _) = best_of(1, || {
        let fresh = NewsLink::new(&world.graph, &labels, cfg.clone());
        run_queries(&fresh)
    });
    run_queries(&engine); // ensure the memo holds every query
    let (warm_query, _) = best_of(3, || run_queries(&engine));
    println!("query   cold (empty caches)  {}", fmt(cold_query));
    println!(
        "query   warm (query memo)    {}   {:5.1}x speedup",
        fmt(warm_query),
        cold_query.as_secs_f64() / warm_query.as_secs_f64()
    );
    let stats = engine.cache_stats();
    println!(
        "        engine totals: groups {}/{} hit, queries {}/{} hit",
        stats.groups.hits,
        stats.groups.lookups(),
        stats.queries.hits,
        stats.queries.lookups()
    );
}
