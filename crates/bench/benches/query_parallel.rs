//! Intra-query parallel segment fan-out benchmark.
//!
//! Measures the NS stage (block-max pruned Equation 3 top-k) with the
//! segment fan-out at three settings — sequential (`search_threads = 1`),
//! auto (`0`, machine parallelism), and pinned 4 workers — over 1 vs ~6
//! segment layouts. Every timed query is checked for bit-parity across
//! all three settings, and the auto run's shared-floor counters
//! (raises, floor-attributed prunes and block skips) are reported.
//!
//! The corpus and query recipe is identical to `blended_topk` (same
//! synth seed, same document template), so the sequential numbers here
//! are directly comparable to `BENCH_PR5.json`'s `pruned_ns_us` column —
//! that delta isolates the hot-loop scoring kernels (batched block
//! decode + per-term BM25 partials), while the auto-vs-sequential delta
//! isolates the fan-out. On a single-core host auto resolves to one
//! worker and the fan-out delta degenerates to ~1×; the `cores` field
//! in the snapshot records what the machine could give.
//!
//! Run with `cargo bench --bench query_parallel`. Set
//! `NEWSLINK_BENCH_QUICK=1` for a small sweep (CI snapshot mode). Either
//! way the numbers land in `BENCH_PR10.json` at the repo root.

use std::fmt::Write as _;
use std::time::Duration;

use newslink_core::{search, NewsLink, NewsLinkConfig, ParallelStats};
use newslink_kg::{synth, LabelIndex, SynthConfig};

struct Entry {
    docs: usize,
    segments: usize,
    k: usize,
    seq: Duration,
    auto: Duration,
    pinned: Duration,
    stats: ParallelStats,
}

fn main() {
    let quick = std::env::var("NEWSLINK_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let (sizes, reps, n_queries): (&[usize], usize, usize) = if quick {
        (&[1200], 2, 8)
    } else {
        (&[4000, 10000], 3, 12)
    };
    let ks: &[usize] = &[10, 100];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let world = synth::generate(&SynthConfig::medium(42));
    let labels = LabelIndex::build(&world.graph);
    let pool: Vec<_> = world
        .countries
        .iter()
        .chain(&world.provinces)
        .chain(&world.cities)
        .chain(&world.people)
        .chain(&world.organizations)
        .copied()
        .collect();
    let label = |i: usize| world.graph.label(pool[i % pool.len()]);
    let fillers = ["trade", "aid", "security", "border", "election", "flood"];
    let queries: Vec<String> = (0..n_queries)
        .map(|q| {
            format!(
                "{} {} {} {} talks",
                label(q * 5),
                label(q * 13 + 3),
                fillers[q % fillers.len()],
                fillers[(q + 2) % fillers.len()],
            )
        })
        .collect();

    println!(
        "query_parallel: sizes {sizes:?}, k {ks:?}, {n_queries} queries, {cores} cores, quick={quick}\n"
    );
    println!(
        "{:<8} {:>8} {:>5} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8} {:>12} {:>12}",
        "docs",
        "segments",
        "k",
        "seq",
        "auto",
        "pinned4",
        "auto spd",
        "pin spd",
        "workers",
        "floor raise",
        "floor prune"
    );

    let mut entries: Vec<Entry> = Vec::new();
    for &size in sizes {
        let docs: Vec<String> = (0..size)
            .map(|i| {
                let a = label(i * 3);
                let b = label(i * 7 + 1);
                let c = label(i * 11 + 2);
                let filler = fillers[i % fillers.len()];
                format!(
                    "Report {i}: {a} officials discussed {filler} developments with {b} \
                     while observers in {c} tracked trade, aid and security talks."
                )
            })
            .collect();
        // 1 segment, then the same ~6-segment layout `blended_topk` uses
        // (keeps rows comparable to BENCH_PR5.json).
        for segment_docs in [0usize, size.div_ceil(6)] {
            let build_cfg = NewsLinkConfig::default()
                .with_auto_threads()
                .with_segment_docs(segment_docs);
            let engine = NewsLink::new(&world.graph, &labels, build_cfg);
            let index = engine.index_corpus(&docs);
            let segments = index.segment_count();

            let seq_cfg = NewsLinkConfig::default().with_search_threads(1);
            let auto_cfg = NewsLinkConfig::default().with_search_threads(0);
            let pinned_cfg = NewsLinkConfig::default().with_search_threads(4);
            for &k in ks {
                // Best-of-`reps` total NS time over the query set, with a
                // bit-parity check across all three settings on rep 0.
                let mut best = [Duration::MAX; 3];
                let mut stats = ParallelStats::default();
                for rep in 0..reps {
                    let mut totals = [Duration::ZERO; 3];
                    let mut rep_stats = ParallelStats::default();
                    for q in &queries {
                        let s = search(&world.graph, &labels, &seq_cfg, &index, q, k);
                        let a = search(&world.graph, &labels, &auto_cfg, &index, q, k);
                        let p = search(&world.graph, &labels, &pinned_cfg, &index, q, k);
                        totals[0] += s.timer.total("ns");
                        totals[1] += a.timer.total("ns");
                        totals[2] += p.timer.total("ns");
                        rep_stats.add(&p.parallel);
                        if rep == 0 {
                            for (other, label) in [(&a, "auto"), (&p, "pinned")] {
                                assert_eq!(s.results.len(), other.results.len(), "{label} {q}");
                                for (x, y) in s.results.iter().zip(&other.results) {
                                    assert_eq!(x.doc, y.doc, "{label} {q}");
                                    assert_eq!(
                                        x.score.to_bits(),
                                        y.score.to_bits(),
                                        "{label} {q}"
                                    );
                                }
                            }
                        }
                    }
                    for (b, t) in best.iter_mut().zip(totals) {
                        *b = (*b).min(t);
                    }
                    stats = rep_stats;
                }
                let spd = |base: Duration, t: Duration| {
                    base.as_secs_f64() / t.as_secs_f64().max(1e-12)
                };
                println!(
                    "{size:<8} {segments:>8} {k:>5} {:>9.2} us {:>9.2} us {:>9.2} us {:>8.2}x {:>8.2}x {:>8} {:>12} {:>12}",
                    best[0].as_secs_f64() * 1e6,
                    best[1].as_secs_f64() * 1e6,
                    best[2].as_secs_f64() * 1e6,
                    spd(best[0], best[1]),
                    spd(best[0], best[2]),
                    stats.workers,
                    stats.floor_raises,
                    stats.floor_pruned,
                );
                entries.push(Entry {
                    docs: size,
                    segments,
                    k,
                    seq: best[0],
                    auto: best[1],
                    pinned: best[2],
                    stats,
                });
            }
        }
    }

    // Machine-readable snapshot for EXPERIMENTS.md / CI.
    let mut json = String::from("{\n  \"bench\": \"query_parallel\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"docs\": {}, \"segments\": {}, \"k\": {}, \"seq_ns_us\": {:.2}, \"auto_ns_us\": {:.2}, \"pinned4_ns_us\": {:.2}, \"auto_speedup\": {:.2}, \"pinned4_speedup\": {:.2}, \"workers\": {}, \"floor_raises\": {}, \"floor_pruned\": {}, \"floor_blocks_skipped\": {}}}{}",
            e.docs,
            e.segments,
            e.k,
            e.seq.as_secs_f64() * 1e6,
            e.auto.as_secs_f64() * 1e6,
            e.pinned.as_secs_f64() * 1e6,
            e.seq.as_secs_f64() / e.auto.as_secs_f64().max(1e-12),
            e.seq.as_secs_f64() / e.pinned.as_secs_f64().max(1e-12),
            e.stats.workers,
            e.stats.floor_raises,
            e.stats.floor_pruned,
            e.stats.floor_blocks_skipped,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json");
    std::fs::write(&out, &json).expect("write BENCH_PR10.json");
    println!("\nwrote {}", out.display());
    println!("all parallel rankings matched the sequential scan bit-identically");
}
