//! Figure 5: the (simulated) user study — 20 participants judge 10
//! query/result pairs retrieved with subgraph embeddings only (β = 1).
//! See DESIGN.md §6.7 for the simulation model.

use newslink_bench::{banner, cnn_context};
use newslink_eval::{render_user_study, run_user_study};

fn main() {
    let ctx = cnn_context();
    banner("Figure 5", &ctx);
    let result = run_user_study(&ctx, 10, 20, 0xF165);
    newslink_eval::maybe_report("fig5", &result);
    println!("{}", render_user_study(&result));
    println!("pair features (path count / novel entities / embedding size):");
    for p in &result.pairs {
        println!(
            "  docs {:>4} vs {:>4}: paths={:<3} novel={:<3} size={}",
            p.query_doc, p.result_doc, p.path_count, p.novel_entities, p.embedding_size
        );
    }
}
