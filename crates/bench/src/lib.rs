//! Shared setup for the benchmark targets.
//!
//! Every paper table/figure has its own `[[bench]]` target with
//! `harness = false`; running `cargo bench` regenerates all of them.
//! Scale is controlled with `NEWSLINK_SCALE=tiny|small|medium|large`
//! (default `small`); see EXPERIMENTS.md for the scale each recorded
//! result used.

#![deny(unsafe_code)]

use newslink_corpus::CorpusFlavor;
use newslink_eval::{EvalContext, EvalScale};

/// The fixed seed the recorded CNN-flavor experiments use.
pub const CNN_SEED: u64 = 1101;
/// Kaggle-flavor fixture seed.
pub const KAGGLE_SEED: u64 = 2202;

/// Build the CNN-flavor fixture at the env-selected scale.
pub fn cnn_context() -> EvalContext {
    EvalContext::build(CorpusFlavor::CnnLike, EvalScale::from_env(), CNN_SEED)
}

/// Build the Kaggle-flavor fixture at the env-selected scale.
pub fn kaggle_context() -> EvalContext {
    EvalContext::build(CorpusFlavor::KaggleLike, EvalScale::from_env(), KAGGLE_SEED)
}

/// Print the standard experiment banner.
pub fn banner(name: &str, ctx: &EvalContext) {
    println!(
        "\n### {name} | corpus={} docs={} kg_nodes={} kg_edges={} scale={:?}",
        ctx.corpus.flavor.name(),
        ctx.corpus.len(),
        ctx.world.graph.node_count(),
        ctx.world.graph.edge_count(),
        EvalScale::from_env(),
    );
}
