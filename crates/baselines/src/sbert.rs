//! SBERT simulation (DESIGN.md §6.5).
//!
//! The paper uses the pretrained `bert-large-nli-mean-tokens` model. A
//! pretrained transformer is out of scope offline, so we reproduce the
//! *behavioral signature* Table IV shows for SBERT — very high SIM@k
//! (dense mean-pooled sentence vectors smooth similarity) but low HIT@k
//! (no exact term anchoring) — with SIF-weighted mean pooling of
//! deterministic word vectors. The smooth-inverse-frequency weights
//! (Arora et al., 2017) downweight frequent words exactly like BERT's
//! contextual attention effectively does for stopwords; frequencies come
//! from a fixed background estimate, keeping the model corpus-independent
//! ("pretrained").

use newslink_nlp::{stopwords::is_stopword, tokenize_lower};
use newslink_util::FxHashMap;

use crate::vector::{cosine, hash_vector, normalize};

/// Mean-pooled sentence embedder with SIF weighting.
#[derive(Debug, Clone)]
pub struct SbertEmbedder {
    dim: usize,
    seed: u64,
    /// SIF smoothing constant `a` in `a / (a + p(w))`.
    sif_a: f64,
}

impl SbertEmbedder {
    /// Standard configuration (the paper's SBERT uses 1024 dims; 256 keeps
    /// our brute-force ranking fast with identical behaviour).
    pub fn new(dim: usize, seed: u64) -> Self {
        Self {
            dim,
            seed,
            sif_a: 1e-3,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// A fixed background word-probability estimate: stopwords are very
    /// frequent; short words are more frequent than long ones. This is the
    /// "pretrained knowledge" stand-in — independent of any corpus.
    fn background_prob(word: &str) -> f64 {
        if is_stopword(word) {
            0.05
        } else {
            // ~Zipf by length: longer words are rarer.
            (0.01 / (word.len() as f64)).min(0.01)
        }
    }

    /// SIF weight for a word.
    fn weight(&self, word: &str) -> f64 {
        self.sif_a / (self.sif_a + Self::background_prob(word))
    }

    /// Embed a text: SIF-weighted mean of word vectors, L2-normalized.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut tf: FxHashMap<String, u32> = FxHashMap::default();
        for t in tokenize_lower(text) {
            *tf.entry(t).or_default() += 1;
        }
        let mut v = vec![0.0f32; self.dim];
        let mut total = 0.0f64;
        for (word, count) in tf {
            let w = self.weight(&word) * f64::from(count);
            let wv = hash_vector(&word, self.dim, self.seed);
            for (a, &x) in v.iter_mut().zip(&wv) {
                *a += (w as f32) * x;
            }
            total += w;
        }
        if total > 0.0 {
            normalize(&mut v);
        }
        v
    }

    /// Cosine similarity of two texts.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sbert() -> SbertEmbedder {
        SbertEmbedder::new(256, 99)
    }

    #[test]
    fn content_words_outweigh_stopwords() {
        let e = sbert();
        assert!(e.weight("taliban") > e.weight("the") * 5.0);
    }

    #[test]
    fn identical_sentences_max_similarity() {
        let e = sbert();
        let s = e.similarity("Pakistan condemned the attack", "Pakistan condemned the attack");
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shared_content_words_dominate_similarity() {
        let e = sbert();
        let share = e.similarity(
            "the taliban attacked pakistan",
            "a taliban offensive in pakistan",
        );
        let none = e.similarity(
            "the taliban attacked pakistan",
            "a cricket final in melbourne",
        );
        assert!(share > none + 0.2, "{share} vs {none}");
    }

    #[test]
    fn stopword_only_overlap_scores_low() {
        let e = sbert();
        let s = e.similarity("the of and in", "the of and in but over");
        let t = e.similarity("taliban attack", "taliban attack");
        assert!(s < t);
    }

    #[test]
    fn deterministic() {
        let e = sbert();
        assert_eq!(e.embed("abc def"), e.embed("abc def"));
    }

    #[test]
    fn empty_text_zero_vector() {
        let e = sbert();
        assert_eq!(e.embed(""), vec![0.0; 256]);
    }
}
