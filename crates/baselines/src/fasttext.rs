//! The FastText-style judge embedding (DESIGN.md §6.8).
//!
//! The paper converts full test documents and results to FastText vectors
//! and measures SIM@k as their cosine. The judge only needs to be a *fixed
//! external* embedding space shared by all methods, so we reproduce
//! FastText's signature design — bags of character n-grams plus the word
//! itself — with deterministic hash vectors.

use newslink_nlp::tokenize_lower;
use newslink_util::FxHashMap;

use crate::vector::{add_assign, cosine, hash_vector, normalize};

/// A deterministic character-n-gram sentence/document embedder.
#[derive(Debug, Clone)]
pub struct FastTextEmbedder {
    dim: usize,
    seed: u64,
    min_gram: usize,
    max_gram: usize,
}

impl FastTextEmbedder {
    /// Standard configuration: 128 dimensions, 3–5-grams.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self {
            dim,
            seed,
            min_gram: 3,
            max_gram: 5,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The n-grams of `word`, FastText-style with boundary markers.
    fn ngrams(&self, word: &str) -> Vec<String> {
        let decorated: Vec<char> = format!("<{word}>").chars().collect();
        let mut grams = vec![word.to_string()];
        for n in self.min_gram..=self.max_gram {
            if decorated.len() < n {
                break;
            }
            for w in decorated.windows(n) {
                grams.push(w.iter().collect());
            }
        }
        grams
    }

    /// Embed one word (mean of its n-gram vectors).
    pub fn embed_word(&self, word: &str) -> Vec<f32> {
        let grams = self.ngrams(word);
        let mut v = vec![0.0f32; self.dim];
        for g in &grams {
            add_assign(&mut v, &hash_vector(g, self.dim, self.seed));
        }
        normalize(&mut v);
        v
    }

    /// Embed a text: tf-weighted mean of word vectors, L2-normalized.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut tf: FxHashMap<String, u32> = FxHashMap::default();
        for t in tokenize_lower(text) {
            *tf.entry(t).or_default() += 1;
        }
        let mut v = vec![0.0f32; self.dim];
        for (word, count) in tf {
            let wv = self.embed_word(&word);
            for (a, &x) in v.iter_mut().zip(&wv) {
                *a += count as f32 * x;
            }
        }
        normalize(&mut v);
        v
    }

    /// Cosine similarity of two texts in this space.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FastTextEmbedder {
        FastTextEmbedder::new(128, 42)
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let e = ft();
        let s = e.similarity("Taliban attack in Pakistan", "Taliban attack in Pakistan");
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = ft();
        assert_eq!(e.embed("some news text"), e.embed("some news text"));
    }

    #[test]
    fn related_texts_score_higher_than_unrelated() {
        let e = ft();
        let related = e.similarity(
            "Taliban bombing rocked Pakistan on Sunday",
            "Pakistan blamed Taliban for the bombing",
        );
        let unrelated = e.similarity(
            "Taliban bombing rocked Pakistan on Sunday",
            "the cricket final ended in a thrilling draw",
        );
        assert!(related > unrelated, "{related} <= {unrelated}");
    }

    #[test]
    fn char_ngrams_give_partial_credit_for_morphology() {
        let e = ft();
        // "bombing" vs "bombings" share most n-grams.
        let morph = cosine(&e.embed_word("bombing"), &e.embed_word("bombings"));
        let distinct = cosine(&e.embed_word("bombing"), &e.embed_word("election"));
        assert!(morph > distinct + 0.2, "{morph} vs {distinct}");
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = ft();
        assert_eq!(e.embed(""), vec![0.0; 128]);
        assert_eq!(e.similarity("", "anything"), 0.0);
    }

    #[test]
    fn word_order_is_ignored() {
        let e = ft();
        let s = e.similarity("pakistan taliban attack", "attack taliban pakistan");
        assert!((s - 1.0).abs() < 1e-6);
    }
}
