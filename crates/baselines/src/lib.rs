//! Search baselines for the NewsLink evaluation (Table IV competitors).
//!
//! - [`doc2vec`] — random-indexing document embeddings (gensim Doc2Vec
//!   substitute, DESIGN.md §6.4);
//! - [`sbert`] — SIF-pooled deterministic word vectors (pretrained SBERT
//!   substitute, §6.5);
//! - [`lda`] — a real collapsed-Gibbs LDA (PLDA substitute, §6.6);
//! - [`qeprf`] — KG-description + pseudo-relevance-feedback query
//!   expansion (Xiong & Callan);
//! - [`fasttext`] — the char-n-gram judge embedding used only for SIM@k
//!   evaluation (§6.8);
//! - [`vector`] — shared dense-vector helpers.
//!
//! The Lucene baseline is `newslink-text` itself (BM25 with default
//! settings), used directly by the evaluation harness.

#![deny(unsafe_code)]

pub mod doc2vec;
pub mod fasttext;
pub mod lda;
pub mod qeprf;
pub mod sbert;
pub mod vector;

pub use doc2vec::{Doc2Vec, Doc2VecConfig};
pub use fasttext::FastTextEmbedder;
pub use lda::{Lda, LdaConfig};
pub use qeprf::{Qeprf, QeprfConfig};
pub use sbert::SbertEmbedder;
