//! Doc2Vec substitute: random-indexing document embeddings (DESIGN.md
//! §6.4).
//!
//! gensim's PV training is replaced by *random indexing* (Kanerva et al.):
//! every word has a fixed sparse ternary index vector; training slides a
//! context window over the training split and accumulates, for each word,
//! the index vectors of its neighbours. Words used in similar contexts —
//! e.g. the synonym pools of the corpus templates — therefore end up with
//! similar *context vectors*, capturing word co-occurrence just as the
//! paper describes Doc2Vec doing ("uses the skip-gram model to capture the
//! word co-occurrences"). A document embeds as the idf-weighted mean of
//! its words' context vectors.

use newslink_util::FxHashMap;

use crate::vector::{add_assign, add_scaled, cosine, normalize, ternary_vector};

/// Training and inference configuration.
#[derive(Debug, Clone)]
pub struct Doc2VecConfig {
    /// Embedding dimensionality (the paper trains 500; 128 keeps brute-
    /// force ranking fast with the same behaviour).
    pub dim: usize,
    /// Nonzero entries per ternary index vector.
    pub nonzeros: usize,
    /// Context window radius.
    pub window: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for Doc2VecConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            nonzeros: 8,
            window: 4,
            seed: 0xD0C2,
        }
    }
}

/// A trained random-indexing model.
#[derive(Debug, Clone)]
pub struct Doc2Vec {
    config: Doc2VecConfig,
    /// word → accumulated context vector (unnormalized).
    context: FxHashMap<String, Vec<f32>>,
    /// word → training document frequency (for idf weighting).
    doc_freq: FxHashMap<String, u32>,
    /// number of training documents.
    n_docs: usize,
}

impl Doc2Vec {
    /// Train on the term streams of the training split.
    pub fn train<S: AsRef<str>>(docs: &[Vec<S>], config: Doc2VecConfig) -> Self {
        let mut context: FxHashMap<String, Vec<f32>> = FxHashMap::default();
        let mut doc_freq: FxHashMap<String, u32> = FxHashMap::default();
        let dim = config.dim;
        for doc in docs {
            let terms: Vec<&str> = doc.iter().map(|t| t.as_ref()).collect();
            let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
            for (i, &w) in terms.iter().enumerate() {
                seen.insert(w);
                let lo = i.saturating_sub(config.window);
                let hi = (i + config.window + 1).min(terms.len());
                let entry = context
                    .entry(w.to_string())
                    .or_insert_with(|| vec![0.0f32; dim]);
                for (j, &c) in terms.iter().enumerate().take(hi).skip(lo) {
                    if j != i {
                        add_assign(
                            entry,
                            &ternary_vector(c, dim, config.nonzeros, config.seed),
                        );
                    }
                }
            }
            for w in seen {
                *doc_freq.entry(w.to_string()).or_default() += 1;
            }
        }
        Self {
            config,
            context,
            doc_freq,
            n_docs: docs.len(),
        }
    }

    /// Vocabulary size after training.
    pub fn vocab_size(&self) -> usize {
        self.context.len()
    }

    /// idf weight; unseen words get the maximum idf.
    fn idf(&self, word: &str) -> f32 {
        let n = (self.n_docs.max(1)) as f64;
        let df = self.doc_freq.get(word).copied().unwrap_or(0) as f64;
        (((n + 1.0) / (df + 1.0)).ln() + 1.0) as f32
    }

    /// Embed a term stream: idf-weighted mean of context vectors. Unseen
    /// words fall back to their index vector (FastText-like OOV handling).
    pub fn embed<S: AsRef<str>>(&self, terms: &[S]) -> Vec<f32> {
        let dim = self.config.dim;
        let mut v = vec![0.0f32; dim];
        for t in terms {
            let w = t.as_ref();
            let idf = self.idf(w);
            match self.context.get(w) {
                Some(cv) => {
                    // Context vectors grow with corpus frequency; normalize
                    // per word so frequent words don't dominate.
                    let norm: f64 = cv.iter().map(|&x| f64::from(x).powi(2)).sum();
                    if norm > 0.0 {
                        add_scaled(&mut v, cv, idf / norm.sqrt() as f32);
                        continue;
                    }
                    add_scaled(
                        &mut v,
                        &ternary_vector(w, dim, self.config.nonzeros, self.config.seed),
                        idf,
                    );
                }
                None => add_scaled(
                    &mut v,
                    &ternary_vector(w, dim, self.config.nonzeros, self.config.seed),
                    idf,
                ),
            }
        }
        normalize(&mut v);
        v
    }

    /// Cosine similarity of two term streams.
    pub fn similarity<S: AsRef<str>>(&self, a: &[S], b: &[S]) -> f64 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    fn training() -> Vec<Vec<String>> {
        // "struck" and "hit" share contexts; "cricket" lives elsewhere.
        vec![
            terms("bomb struck city officials said"),
            terms("bomb hit city officials said"),
            terms("blast struck town forces said"),
            terms("blast hit town forces said"),
            terms("cricket match drew fans stadium"),
            terms("cricket final drew crowds stadium"),
        ]
    }

    #[test]
    fn training_builds_vocab() {
        let m = Doc2Vec::train(&training(), Doc2VecConfig::default());
        assert!(m.vocab_size() >= 10);
    }

    #[test]
    fn synonyms_by_context_are_similar() {
        let m = Doc2Vec::train(&training(), Doc2VecConfig::default());
        let struck = m.embed(&terms("struck"));
        let hit = m.embed(&terms("hit"));
        let cricket = m.embed(&terms("cricket"));
        let syn = cosine(&struck, &hit);
        let diff = cosine(&struck, &cricket);
        assert!(syn > diff, "context similarity {syn} <= {diff}");
    }

    #[test]
    fn similar_documents_score_higher() {
        let m = Doc2Vec::train(&training(), Doc2VecConfig::default());
        let q = terms("bomb struck city");
        let rel = terms("blast hit town");
        let unrel = terms("cricket final stadium");
        assert!(m.similarity(&q, &rel) > m.similarity(&q, &unrel));
    }

    #[test]
    fn oov_words_still_embed() {
        let m = Doc2Vec::train(&training(), Doc2VecConfig::default());
        let v = m.embed(&terms("zeppelin"));
        assert!(v.iter().any(|&x| x != 0.0));
        // OOV embedding is deterministic.
        assert_eq!(v, m.embed(&terms("zeppelin")));
    }

    #[test]
    fn empty_input_embeds_to_zero() {
        let m = Doc2Vec::train(&training(), Doc2VecConfig::default());
        assert_eq!(m.embed::<&str>(&[]), vec![0.0; 128]);
        assert_eq!(m.similarity::<&str>(&[], &[]), 0.0);
    }

    #[test]
    fn deterministic_training() {
        let a = Doc2Vec::train(&training(), Doc2VecConfig::default());
        let b = Doc2Vec::train(&training(), Doc2VecConfig::default());
        assert_eq!(a.embed(&terms("bomb city")), b.embed(&terms("bomb city")));
    }
}
