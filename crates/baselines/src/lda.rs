//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! A real LDA implementation (not a simulation): the paper trains PLDA
//! with 500 topics on the 80% training split and ranks documents by the
//! similarity of their topic mixtures. At our corpus scale a few dozen
//! topics and a few dozen sweeps converge; the behavioural signature —
//! topic mixing smooths similarity but destroys exact-document recovery
//! (lowest HIT@k in Table IV) — is preserved.

use newslink_util::{DetRng, FxHashMap};

/// LDA hyperparameters.
#[derive(Debug, Clone)]
pub struct LdaConfig {
    /// Number of latent topics.
    pub topics: usize,
    /// Dirichlet prior on document–topic mixtures.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Gibbs sweeps over the training corpus.
    pub train_sweeps: usize,
    /// Gibbs sweeps for folding in an unseen document.
    pub infer_sweeps: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            topics: 32,
            alpha: 0.1,
            beta: 0.01,
            train_sweeps: 30,
            infer_sweeps: 15,
            seed: 0x1DA,
        }
    }
}

/// A trained LDA model.
#[derive(Debug, Clone)]
pub struct Lda {
    config: LdaConfig,
    vocab: FxHashMap<String, usize>,
    /// `topic_word[k][w]` — topic-word assignment counts.
    topic_word: Vec<Vec<u32>>,
    /// `topic_total[k]` — tokens assigned to topic k.
    topic_total: Vec<u64>,
}

impl Lda {
    /// Train on term streams via collapsed Gibbs sampling.
    pub fn train<S: AsRef<str>>(docs: &[Vec<S>], config: LdaConfig) -> Self {
        assert!(config.topics > 0, "LDA needs at least one topic");
        let mut vocab: FxHashMap<String, usize> = FxHashMap::default();
        let corpus: Vec<Vec<usize>> = docs
            .iter()
            .map(|d| {
                d.iter()
                    .map(|t| {
                        let next = vocab.len();
                        *vocab.entry(t.as_ref().to_string()).or_insert(next)
                    })
                    .collect()
            })
            .collect();
        let v = vocab.len();
        let k = config.topics;
        let mut rng = DetRng::new(config.seed);

        let mut topic_word = vec![vec![0u32; v]; k];
        let mut topic_total = vec![0u64; k];
        let mut doc_topic: Vec<Vec<u32>> = corpus.iter().map(|_| vec![0u32; k]).collect();
        let mut assignments: Vec<Vec<usize>> = corpus
            .iter()
            .map(|doc| doc.iter().map(|_| 0usize).collect())
            .collect();

        // Random initialization.
        for (d, doc) in corpus.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let z = rng.below(k);
                assignments[d][i] = z;
                doc_topic[d][z] += 1;
                topic_word[z][w] += 1;
                topic_total[z] += 1;
            }
        }

        let beta_sum = config.beta * v as f64;
        let mut weights = vec![0.0f64; k];
        for _sweep in 0..config.train_sweeps {
            for (d, doc) in corpus.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i];
                    doc_topic[d][old] -= 1;
                    topic_word[old][w] -= 1;
                    topic_total[old] -= 1;
                    for (z, wt) in weights.iter_mut().enumerate() {
                        *wt = (f64::from(doc_topic[d][z]) + config.alpha)
                            * (f64::from(topic_word[z][w]) + config.beta)
                            / (topic_total[z] as f64 + beta_sum);
                    }
                    let z = rng.pick_weighted(&weights).unwrap_or(old);
                    assignments[d][i] = z;
                    doc_topic[d][z] += 1;
                    topic_word[z][w] += 1;
                    topic_total[z] += 1;
                }
            }
        }

        Self {
            config,
            vocab,
            topic_word,
            topic_total,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of topics.
    pub fn topics(&self) -> usize {
        self.config.topics
    }

    /// Fold in an unseen term stream, returning its topic mixture θ.
    ///
    /// Uses a per-document sampler seeded from the stream so inference is
    /// deterministic per input. Out-of-vocabulary words are skipped.
    pub fn infer<S: AsRef<str>>(&self, terms: &[S]) -> Vec<f64> {
        let k = self.config.topics;
        let words: Vec<usize> = terms
            .iter()
            .filter_map(|t| self.vocab.get(t.as_ref()).copied())
            .collect();
        let mut theta = vec![self.config.alpha; k];
        if words.is_empty() {
            let sum: f64 = theta.iter().sum();
            for t in theta.iter_mut() {
                *t /= sum;
            }
            return theta;
        }
        let mix = words.iter().fold(self.config.seed, |acc, &w| {
            acc.rotate_left(7) ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        });
        let mut rng = DetRng::new(mix);
        let v = self.vocab.len();
        let beta_sum = self.config.beta * v as f64;
        let mut doc_topic = vec![0u32; k];
        let mut assignments = vec![0usize; words.len()];
        for (i, &w) in words.iter().enumerate() {
            let _ = w;
            let z = rng.below(k);
            assignments[i] = z;
            doc_topic[z] += 1;
        }
        let mut weights = vec![0.0f64; k];
        for _ in 0..self.config.infer_sweeps {
            for (i, &w) in words.iter().enumerate() {
                let old = assignments[i];
                doc_topic[old] -= 1;
                for (z, wt) in weights.iter_mut().enumerate() {
                    *wt = (f64::from(doc_topic[z]) + self.config.alpha)
                        * (f64::from(self.topic_word[z][w]) + self.config.beta)
                        / (self.topic_total[z] as f64 + beta_sum);
                }
                let z = rng.pick_weighted(&weights).unwrap_or(old);
                assignments[i] = z;
                doc_topic[z] += 1;
            }
        }
        for (z, &c) in doc_topic.iter().enumerate() {
            theta[z] += f64::from(c);
        }
        let sum: f64 = theta.iter().sum();
        for t in theta.iter_mut() {
            *t /= sum;
        }
        theta
    }

    /// Cosine similarity between two topic mixtures.
    pub fn similarity(theta_a: &[f64], theta_b: &[f64]) -> f64 {
        let dot: f64 = theta_a.iter().zip(theta_b).map(|(a, b)| a * b).sum();
        let na: f64 = theta_a.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = theta_b.iter().map(|b| b * b).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    /// Two clearly separated topics: conflict vs sports.
    fn corpus() -> Vec<Vec<String>> {
        let conflict = [
            "bomb attack city forces casualties militants strike",
            "militants attack forces bomb strike casualties war",
            "war forces strike militants bomb city attack",
            "casualties city war attack strike bomb militants",
        ];
        let sports = [
            "match goal team fans stadium championship score",
            "team score match championship goal stadium fans",
            "fans stadium goal team score match championship",
            "championship match team stadium fans score goal",
        ];
        conflict
            .iter()
            .chain(sports.iter())
            .map(|s| terms(s))
            .collect()
    }

    fn small_config() -> LdaConfig {
        LdaConfig {
            topics: 4,
            train_sweeps: 60,
            infer_sweeps: 30,
            ..LdaConfig::default()
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = Lda::train(&corpus(), small_config());
        let b = Lda::train(&corpus(), small_config());
        assert_eq!(a.infer(&terms("bomb attack")), b.infer(&terms("bomb attack")));
    }

    #[test]
    fn theta_is_a_distribution() {
        let m = Lda::train(&corpus(), small_config());
        let theta = m.infer(&terms("bomb attack city"));
        assert_eq!(theta.len(), 4);
        let sum: f64 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(theta.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn same_topic_documents_are_more_similar() {
        let m = Lda::train(&corpus(), small_config());
        let q = m.infer(&terms("bomb attack forces"));
        let conflict = m.infer(&terms("militants strike casualties"));
        let sports = m.infer(&terms("match goal stadium"));
        assert!(
            Lda::similarity(&q, &conflict) > Lda::similarity(&q, &sports),
            "topic separation failed"
        );
    }

    #[test]
    fn oov_only_document_gets_uniform_theta() {
        let m = Lda::train(&corpus(), small_config());
        let theta = m.infer(&terms("zzz yyy xxx"));
        let expected = 1.0 / 4.0;
        assert!(theta.iter().all(|&t| (t - expected).abs() < 1e-9));
    }

    #[test]
    fn similarity_bounds() {
        let a = [0.7, 0.1, 0.1, 0.1];
        assert!((Lda::similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(Lda::similarity(&a, &[0.0; 4]), 0.0);
    }

    #[test]
    fn vocab_and_topics_exposed() {
        let m = Lda::train(&corpus(), small_config());
        assert!(m.vocab_size() >= 14);
        assert_eq!(m.topics(), 4);
    }
}
