//! Dense-vector helpers shared by the embedding baselines.
//!
//! Word vectors are *hash-seeded*: a word's vector is a pure function of
//! its surface form and a global seed, simulating "pretrained" models whose
//! parameters do not depend on our corpora (DESIGN.md §6.5).

use newslink_util::fxhash::hash_str;
use newslink_util::DetRng;

/// Cosine similarity; 0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// `acc += v`.
pub fn add_assign(acc: &mut [f32], v: &[f32]) {
    debug_assert_eq!(acc.len(), v.len());
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += x;
    }
}

/// `acc += s · v`.
pub fn add_scaled(acc: &mut [f32], v: &[f32], s: f32) {
    debug_assert_eq!(acc.len(), v.len());
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += s * x;
    }
}

/// Scale in place.
pub fn scale(v: &mut [f32], s: f32) {
    for x in v.iter_mut() {
        *x *= s;
    }
}

/// L2-normalize in place (no-op for the zero vector).
pub fn normalize(v: &mut [f32]) {
    let norm: f64 = v.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    if norm > 0.0 {
        let inv = (1.0 / norm.sqrt()) as f32;
        scale(v, inv);
    }
}

/// Deterministic Gaussian vector for `key` under `seed`.
pub fn hash_vector(key: &str, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = DetRng::new(hash_str(key) ^ seed.rotate_left(17));
    (0..dim).map(|_| rng.normal() as f32).collect()
}

/// Deterministic *sparse ternary* index vector for `key` (classic random
/// indexing): mostly zeros with a few ±1 entries.
pub fn ternary_vector(key: &str, dim: usize, nonzeros: usize, seed: u64) -> Vec<f32> {
    let mut rng = DetRng::new(hash_str(key) ^ seed.rotate_left(29));
    let mut v = vec![0.0f32; dim];
    for _ in 0..nonzeros {
        let i = rng.below(dim);
        v[i] += if rng.chance(0.5) { 1.0 } else { -1.0 };
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn hash_vector_is_deterministic_and_word_specific() {
        let a = hash_vector("taliban", 64, 7);
        let b = hash_vector("taliban", 64, 7);
        let c = hash_vector("pakistan", 64, 7);
        assert_eq!(a, b);
        assert!(cosine(&a, &c).abs() < 0.5, "distinct words nearly orthogonal");
        let d = hash_vector("taliban", 64, 8);
        assert_ne!(a, d, "seed changes the space");
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = hash_vector("x", 32, 1);
        normalize(&mut v);
        let n: f64 = v.iter().map(|&x| f64::from(x).powi(2)).sum();
        assert!((n - 1.0).abs() < 1e-5);
        let mut z = vec![0.0f32; 4];
        normalize(&mut z);
        assert_eq!(z, vec![0.0; 4]);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut acc = vec![1.0, 2.0];
        add_assign(&mut acc, &[3.0, 4.0]);
        assert_eq!(acc, vec![4.0, 6.0]);
        add_scaled(&mut acc, &[1.0, 1.0], 0.5);
        assert_eq!(acc, vec![4.5, 6.5]);
        scale(&mut acc, 2.0);
        assert_eq!(acc, vec![9.0, 13.0]);
    }

    #[test]
    fn ternary_vectors_are_sparse() {
        let v = ternary_vector("word", 512, 8, 3);
        let nz = v.iter().filter(|&&x| x != 0.0).count();
        assert!(nz <= 8);
        assert!(nz >= 4);
        assert_eq!(v, ternary_vector("word", 512, 8, 3));
    }
}
