//! QEPRF: query expansion with KG entity descriptions plus pseudo-
//! relevance feedback (Xiong & Callan, ICTIR'15 — the paper's KG-powered
//! query-expansion competitor).
//!
//! Unsupervised version, as evaluated in the paper: (1) link query
//! entities to KG nodes and expand with terms from their descriptions;
//! (2) run a first-pass BM25 retrieval and expand with the most
//! discriminative terms of the top-ranked documents; (3) re-run BM25 with
//! the expanded query, original terms weighted higher.

use newslink_kg::{describe, KnowledgeGraph, LabelIndex};
use newslink_nlp::{analyze, stem, stopwords::is_stopword, tokenize, Recognizer};
use newslink_text::{Bm25, Hit, InvertedIndex, Searcher};
use newslink_util::FxHashMap;

/// Expansion knobs.
#[derive(Debug, Clone)]
pub struct QeprfConfig {
    /// Feedback depth: top documents of the first pass.
    pub prf_docs: usize,
    /// Expansion terms taken from feedback documents.
    pub prf_terms: usize,
    /// Expansion terms taken from each linked entity's description.
    pub desc_terms: usize,
    /// Repetition factor of original query terms in the final query.
    pub original_weight: usize,
}

impl Default for QeprfConfig {
    fn default() -> Self {
        Self {
            prf_docs: 10,
            prf_terms: 15,
            desc_terms: 10,
            original_weight: 3,
        }
    }
}

/// The QEPRF searcher.
pub struct Qeprf<'a> {
    graph: &'a KnowledgeGraph,
    label_index: &'a LabelIndex,
    index: &'a InvertedIndex,
    doc_terms: &'a [Vec<String>],
    config: QeprfConfig,
}

impl<'a> Qeprf<'a> {
    /// Create a searcher over a prebuilt BM25 index and the per-document
    /// term streams it was built from.
    pub fn new(
        graph: &'a KnowledgeGraph,
        label_index: &'a LabelIndex,
        index: &'a InvertedIndex,
        doc_terms: &'a [Vec<String>],
        config: QeprfConfig,
    ) -> Self {
        debug_assert_eq!(index.doc_count(), doc_terms.len());
        Self {
            graph,
            label_index,
            index,
            doc_terms,
            config,
        }
    }

    /// Terms from the descriptions of KG entities linked in the query.
    fn entity_expansion(&self, query_text: &str) -> Vec<String> {
        let recognizer = Recognizer::new(self.graph, self.label_index);
        let tokens = tokenize(query_text);
        let mentions = recognizer.recognize(query_text, &tokens);
        let mut out = Vec::new();
        for m in mentions.iter().filter(|m| m.matched) {
            for node in self.label_index.exact(&m.norm) {
                let terms = describe::description_terms(self.graph, node);
                out.extend(
                    terms
                        .into_iter()
                        .filter(|t| !is_stopword(t))
                        .map(|t| stem(&t))
                        .take(self.config.desc_terms),
                );
            }
        }
        out
    }

    /// PRF expansion: the most discriminative terms of the feedback docs,
    /// scored by `tf_feedback · idf`.
    fn prf_expansion(&self, first_pass: &[Hit]) -> Vec<String> {
        let mut tf: FxHashMap<&str, u32> = FxHashMap::default();
        for hit in first_pass.iter().take(self.config.prf_docs) {
            for t in &self.doc_terms[hit.doc.index()] {
                *tf.entry(t.as_str()).or_default() += 1;
            }
        }
        let n = self.index.doc_count() as f64;
        let dict = self.index.dictionary();
        let mut scored: Vec<(f64, &str)> = tf
            .into_iter()
            .map(|(t, f)| {
                let df = dict.get(t).map(|id| dict.doc_freq(id)).unwrap_or(0) as f64;
                let idf = ((n + 1.0) / (df + 1.0)).ln();
                (f64::from(f) * idf, t)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(b.1)));
        scored
            .into_iter()
            .take(self.config.prf_terms)
            .map(|(_, t)| t.to_string())
            .collect()
    }

    /// Run the expanded search.
    pub fn search(&self, query_text: &str, k: usize) -> Vec<Hit> {
        let original = analyze(query_text);
        if original.is_empty() {
            return Vec::new();
        }
        let searcher = Searcher::new(self.index, Bm25::default());

        // First pass: original + entity-description terms.
        let desc = self.entity_expansion(query_text);
        let mut first_query = original.clone();
        first_query.extend(desc.iter().cloned());
        let first_pass = searcher.search(&first_query, self.config.prf_docs.max(k));

        // Second pass: weighted original + description + PRF terms.
        let prf = self.prf_expansion(&first_pass);
        let mut final_query = Vec::with_capacity(
            original.len() * self.config.original_weight + desc.len() + prf.len(),
        );
        for _ in 0..self.config.original_weight.max(1) {
            final_query.extend(original.iter().cloned());
        }
        final_query.extend(desc);
        final_query.extend(prf);
        searcher.search(&final_query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder};
    use newslink_text::IndexBuilder;

    struct Fixture {
        graph: KnowledgeGraph,
        label_index: LabelIndex,
        index: InvertedIndex,
        doc_terms: Vec<Vec<String>>,
    }

    fn fixture() -> Fixture {
        let mut b = GraphBuilder::new();
        let khyber = b.add_node("Khyber", EntityType::Gpe);
        let pakistan = b.add_node("Pakistan", EntityType::Gpe);
        let taliban = b.add_node("Taliban", EntityType::Organization);
        b.add_edge(khyber, pakistan, "located in", 1);
        b.add_edge(taliban, khyber, "operates in", 1);
        let graph = b.freeze();
        let label_index = LabelIndex::build(&graph);
        let docs = [
            "Taliban fighters moved through Khyber toward Pakistan.",
            "Bombing in Khyber region shocked residents.",
            "Pakistan officials met about security concerns.",
            "The cricket tournament concluded with celebrations.",
        ];
        let doc_terms: Vec<Vec<String>> = docs.iter().map(|d| analyze(d)).collect();
        let mut ib = IndexBuilder::new();
        for t in &doc_terms {
            ib.add_document(t);
        }
        Fixture {
            graph,
            label_index,
            index: ib.build(),
            doc_terms,
        }
    }

    #[test]
    fn entity_descriptions_expand_the_query() {
        let f = fixture();
        let q = Qeprf::new(
            &f.graph,
            &f.label_index,
            &f.index,
            &f.doc_terms,
            QeprfConfig::default(),
        );
        let terms = q.entity_expansion("Attack by Taliban today");
        // Taliban's description mentions Khyber ("operates in Khyber").
        assert!(terms.iter().any(|t| t == "khyber"), "{terms:?}");
    }

    #[test]
    fn expansion_retrieves_vocabulary_mismatched_docs() {
        let f = fixture();
        let q = Qeprf::new(
            &f.graph,
            &f.label_index,
            &f.index,
            &f.doc_terms,
            QeprfConfig::default(),
        );
        // Query says only "Taliban"; doc 1 (Khyber bombing) shares no
        // query words but arrives via the description expansion.
        let hits = q.search("Taliban", 4);
        let ids: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&1), "expansion should reach doc 1: {ids:?}");
        assert!(!ids.contains(&3), "sports doc must not match");
    }

    #[test]
    fn original_terms_keep_top_rank() {
        let f = fixture();
        let q = Qeprf::new(
            &f.graph,
            &f.label_index,
            &f.index,
            &f.doc_terms,
            QeprfConfig::default(),
        );
        let hits = q.search("Taliban fighters Khyber Pakistan", 4);
        assert_eq!(hits[0].doc.0, 0, "directly matching doc stays first");
    }

    #[test]
    fn empty_query_returns_nothing() {
        let f = fixture();
        let q = Qeprf::new(
            &f.graph,
            &f.label_index,
            &f.index,
            &f.doc_terms,
            QeprfConfig::default(),
        );
        assert!(q.search("", 5).is_empty());
        assert!(q.search("the of and", 5).is_empty());
    }

    #[test]
    fn prf_pulls_terms_from_top_docs() {
        let f = fixture();
        let q = Qeprf::new(
            &f.graph,
            &f.label_index,
            &f.index,
            &f.doc_terms,
            QeprfConfig::default(),
        );
        let searcher = Searcher::new(&f.index, Bm25::default());
        let first = searcher.search(&["taliban"], 2);
        let prf = q.prf_expansion(&first);
        assert!(!prf.is_empty());
        assert!(prf.iter().all(|t| !t.is_empty()));
    }
}
