//! Property tests for the baseline models.

use proptest::prelude::*;

use newslink_baselines::vector::{cosine, hash_vector, normalize, ternary_vector};
use newslink_baselines::{
    Doc2Vec, Doc2VecConfig, FastTextEmbedder, Lda, LdaConfig, SbertEmbedder,
};

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(
        prop::collection::vec(0u8..12, 1..12)
            .prop_map(|ws| ws.into_iter().map(|w| format!("w{w}")).collect()),
        2..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_and_symmetric(
        a in prop::collection::vec(-10.0f32..10.0, 4..16),
    ) {
        let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let ab = cosine(&a, &b);
        let ba = cosine(&b, &a);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
        let aa = cosine(&a, &a);
        prop_assert!(aa == 0.0 || (aa - 1.0).abs() < 1e-6);
    }

    /// Hash vectors are a pure function of (key, seed).
    #[test]
    fn hash_vectors_pure(key in "[a-z]{1,10}", seed in any::<u64>()) {
        prop_assert_eq!(hash_vector(&key, 32, seed), hash_vector(&key, 32, seed));
        prop_assert_eq!(
            ternary_vector(&key, 64, 6, seed),
            ternary_vector(&key, 64, 6, seed)
        );
    }

    /// Normalization produces unit vectors (or leaves zero alone).
    #[test]
    fn normalize_unit_or_zero(mut v in prop::collection::vec(-5.0f32..5.0, 1..32)) {
        normalize(&mut v);
        let n: f64 = v.iter().map(|&x| f64::from(x).powi(2)).sum();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
    }

    /// SBERT/FastText similarities stay in [-1, 1] and self-similarity of
    /// non-empty text is 1.
    #[test]
    fn embedder_similarity_bounds(text in "[a-z ]{1,60}") {
        let sbert = SbertEmbedder::new(64, 1);
        let ft = FastTextEmbedder::new(64, 2);
        for s in [sbert.similarity(&text, "pakistan news story"),
                  ft.similarity(&text, "pakistan news story")] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        }
        if text.split_whitespace().count() > 0 {
            prop_assert!((ft.similarity(&text, &text) - 1.0).abs() < 1e-6);
        }
    }

    /// LDA inference always yields a proper distribution.
    #[test]
    fn lda_theta_is_distribution(docs in docs_strategy(), query in prop::collection::vec(0u8..12, 0..8)) {
        let cfg = LdaConfig {
            topics: 4,
            train_sweeps: 5,
            infer_sweeps: 5,
            ..LdaConfig::default()
        };
        let m = Lda::train(&docs, cfg);
        let q: Vec<String> = query.into_iter().map(|w| format!("w{w}")).collect();
        let theta = m.infer(&q);
        prop_assert_eq!(theta.len(), 4);
        let sum: f64 = theta.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(theta.iter().all(|&t| t > 0.0));
    }

    /// Doc2Vec embeddings are unit-length (or zero for empty input) and
    /// deterministic.
    #[test]
    fn doc2vec_embeddings_normalized(docs in docs_strategy()) {
        let m = Doc2Vec::train(&docs, Doc2VecConfig::default());
        for d in &docs {
            let v = m.embed(d);
            let n: f64 = v.iter().map(|&x| f64::from(x).powi(2)).sum();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4);
            prop_assert_eq!(m.embed(d), v);
        }
    }
}
