//! Query selection for the Partial Query Similarity Search task (§VII-B).
//!
//! The paper selects, from each test document, either the sentence with the
//! largest *entity density* (entities per term) or a uniformly random
//! sentence, then hides the rest of the document. Both strategies are
//! evaluated side by side in Tables IV and VII.

use newslink_nlp::DocumentAnalysis;
use newslink_util::DetRng;

/// How the query sentence is drawn from a test document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryStrategy {
    /// The sentence with the largest entity density (ties: earliest).
    LargestEntityDensity,
    /// A uniformly random sentence.
    Random,
}

impl QueryStrategy {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            QueryStrategy::LargestEntityDensity => "density",
            QueryStrategy::Random => "random",
        }
    }
}

/// Select a query sentence from an analyzed document; `None` when the
/// document has no sentences.
pub fn select_query(
    analysis: &DocumentAnalysis,
    strategy: QueryStrategy,
    rng: &mut DetRng,
) -> Option<String> {
    if analysis.segments.is_empty() {
        return None;
    }
    let segment = match strategy {
        QueryStrategy::LargestEntityDensity => analysis
            .segments
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.entity_density()
                    .total_cmp(&b.entity_density())
                    .then(ib.cmp(ia)) // earlier index wins ties
            })
            .map(|(_, s)| s)?,
        QueryStrategy::Random => &analysis.segments[rng.below(analysis.segments.len())],
    };
    Some(segment.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{EntityType, GraphBuilder, LabelIndex};
    use newslink_nlp::NlpPipeline;

    fn analysis(text: &str) -> DocumentAnalysis {
        let mut b = GraphBuilder::new();
        b.add_node("Pakistan", EntityType::Gpe);
        b.add_node("Taliban", EntityType::Organization);
        b.add_node("Khyber", EntityType::Gpe);
        let g = b.freeze();
        let idx = LabelIndex::build(&g);
        let nlp = NlpPipeline::new(&g, &idx);
        nlp.analyze_document(text)
    }

    #[test]
    fn density_picks_entity_rich_sentence() {
        let a = analysis(
            "This first sentence rambles on with no names at all. \
             Taliban hit Khyber in Pakistan. \
             Another plain sentence follows here.",
        );
        let mut rng = DetRng::new(1);
        let q = select_query(&a, QueryStrategy::LargestEntityDensity, &mut rng).unwrap();
        assert_eq!(q, "Taliban hit Khyber in Pakistan");
    }

    #[test]
    fn density_ties_prefer_earlier_sentence() {
        let a = analysis("Pakistan acted fast. Taliban acted fast.");
        let mut rng = DetRng::new(1);
        let q = select_query(&a, QueryStrategy::LargestEntityDensity, &mut rng).unwrap();
        assert_eq!(q, "Pakistan acted fast");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = analysis("One about Pakistan. Two about Taliban. Three about Khyber.");
        let mut r1 = DetRng::new(42);
        let mut r2 = DetRng::new(42);
        assert_eq!(
            select_query(&a, QueryStrategy::Random, &mut r1),
            select_query(&a, QueryStrategy::Random, &mut r2)
        );
    }

    #[test]
    fn random_covers_multiple_sentences() {
        let a = analysis("Alpha about Pakistan. Beta about Taliban. Gamma about Khyber.");
        let mut rng = DetRng::new(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(select_query(&a, QueryStrategy::Random, &mut rng).unwrap());
        }
        assert!(seen.len() >= 2);
    }

    #[test]
    fn empty_document_yields_none() {
        let a = analysis("");
        let mut rng = DetRng::new(1);
        assert_eq!(select_query(&a, QueryStrategy::Random, &mut rng), None);
        assert_eq!(
            select_query(&a, QueryStrategy::LargestEntityDensity, &mut rng),
            None
        );
    }

    #[test]
    fn strategy_names() {
        assert_eq!(QueryStrategy::LargestEntityDensity.name(), "density");
        assert_eq!(QueryStrategy::Random.name(), "random");
    }
}
