//! Train / validation / test splits.
//!
//! §VII-A3: "We randomly split each news dataset into training (80%),
//! validation (10%) and testing (10%) data." Training data feeds the
//! trainable baselines (Doc2Vec-style, LDA); evaluation runs on the test
//! split.

use newslink_util::DetRng;

/// Index sets of one split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// 80% — baseline training.
    pub train: Vec<usize>,
    /// 10% — baseline tuning.
    pub validation: Vec<usize>,
    /// 10% — evaluation queries.
    pub test: Vec<usize>,
}

impl Split {
    /// Randomly split `n` documents with the paper's 80/10/10 ratios.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut idx);
        let n_test = n / 10;
        let n_val = n / 10;
        let test = idx.split_off(n - n_test);
        let validation = idx.split_off(idx.len() - n_val);
        Split {
            train: idx,
            validation,
            test,
        }
    }

    /// Total documents covered.
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// True for an empty split.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_disjoint_and_complete() {
        let s = Split::new(100, 7);
        assert_eq!(s.train.len(), 80);
        assert_eq!(s.validation.len(), 10);
        assert_eq!(s.test.len(), 10);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.validation)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Split::new(50, 1), Split::new(50, 1));
        assert_ne!(Split::new(50, 1), Split::new(50, 2));
    }

    #[test]
    fn small_n_keeps_everything_in_train() {
        let s = Split::new(5, 3);
        assert_eq!(s.train.len(), 5);
        assert!(s.validation.is_empty());
        assert!(s.test.is_empty());
    }

    #[test]
    fn zero_documents() {
        let s = Split::new(0, 3);
        assert!(s.is_empty());
    }
}
