//! Entity-grounded fact-sentence documents.
//!
//! The event corpus ([`crate::gen`]) stresses retrieval; this module
//! stresses *resolution at scale*. Each document profiles one anchor
//! entity and renders a handful of its knowledge-graph edges as short
//! declarative fact sentences ("Khyber is located in Pakistan."), the way
//! Wikidata-derived datasets flatten triples into natural-language rows.
//! Every sentence is grounded: its proper names are KG labels, so a
//! gazetteer pass over a fact corpus should resolve essentially every
//! mention — which makes these documents the calibration corpus for the
//! FST label automaton on multi-million-node worlds.

use newslink_kg::synth::predicates;
use newslink_kg::{NodeId, SynthWorld};
use newslink_util::DetRng;

/// Fact-corpus knobs.
#[derive(Debug, Clone)]
pub struct FactCorpusConfig {
    /// Seed for anchor sampling and fact selection.
    pub seed: u64,
    /// Number of documents (one anchor entity each).
    pub documents: usize,
    /// Facts per document (inclusive range); clamped to the anchor's
    /// degree.
    pub facts_per_doc: (usize, usize),
}

impl FactCorpusConfig {
    /// Defaults: 3–8 facts per document.
    pub fn new(seed: u64, documents: usize) -> Self {
        Self {
            seed,
            documents,
            facts_per_doc: (3, 8),
        }
    }
}

/// One entity-profile document.
#[derive(Debug, Clone)]
pub struct FactDoc {
    /// Dense id within the corpus.
    pub id: usize,
    /// Headline ("Profile: <label>").
    pub title: String,
    /// Full text (headline + fact sentences).
    pub text: String,
    /// The profiled entity (generation ground truth).
    pub anchor: NodeId,
}

/// A generated fact corpus.
#[derive(Debug, Clone)]
pub struct FactCorpus {
    /// The documents.
    pub docs: Vec<FactDoc>,
}

impl FactCorpus {
    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Render one forward edge as a declarative sentence. The subject and
/// object are verbatim graph labels so every sentence resolves through the
/// label index.
fn fact_sentence(subj: &str, pred: &str, obj: &str) -> String {
    use predicates::*;
    match pred {
        LOCATED_IN => format!("{subj} is located in {obj}."),
        CAPITAL_OF => format!("{subj} is the capital of {obj}."),
        SHARES_BORDER => format!("{subj} shares a border with {obj}."),
        CITIZEN_OF => format!("{subj} is a citizen of {obj}."),
        MEMBER_OF => format!("{subj} is a member of {obj}."),
        LEADER_OF => format!("{subj} leads {obj}."),
        HEADQUARTERED_IN => format!("{subj} is headquartered in {obj}."),
        OPERATES_IN => format!("{subj} operates in {obj}."),
        PARTICIPANT_OF => format!("{subj} took part in {obj}."),
        CANDIDATE_IN => format!("{subj} stood as a candidate in {obj}."),
        SPOUSE_OF => format!("{subj} is married to {obj}."),
        PLAYS_FOR => format!("{subj} plays for {obj}."),
        CREATED_BY => format!("{subj} was created by {obj}."),
        OFFICIAL_LANGUAGE => format!("{subj} has {obj} as an official language."),
        ENACTED_BY => format!("{subj} was enacted by {obj}."),
        PART_OF => format!("{subj} is part of {obj}."),
        AFFECTED => format!("{subj} affected {obj}."),
        other => format!("{subj} is linked to {obj} ({other})."),
    }
}

/// Generate a fact corpus over `world`.
///
/// Anchors are sampled uniformly from nodes with at least one forward
/// edge; an anchor may recur (popular entities get several profiles, with
/// different fact subsets).
pub fn generate_fact_corpus(world: &SynthWorld, cfg: &FactCorpusConfig) -> FactCorpus {
    let g = &world.graph;
    let anchors: Vec<NodeId> = g
        .nodes()
        .filter(|&n| g.neighbors(n).iter().any(|e| !e.inverse))
        .collect();
    assert!(!anchors.is_empty(), "world has no forward edges");
    let root = DetRng::new(cfg.seed);
    let mut rng = root.fork(0xFAC7);
    let (lo, hi) = cfg.facts_per_doc;
    let mut docs = Vec::with_capacity(cfg.documents);
    for id in 0..cfg.documents {
        let anchor = anchors[rng.below(anchors.len())];
        let subj = g.label(anchor);
        let mut edges: Vec<usize> = g
            .neighbors(anchor)
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.inverse)
            .map(|(i, _)| i)
            .collect();
        rng.shuffle(&mut edges);
        let want = rng.range(lo.max(1), hi.max(lo.max(1))).min(edges.len());
        let title = format!("Profile: {subj}");
        let mut body = Vec::with_capacity(want);
        for &i in edges.iter().take(want.max(1)) {
            let e = &g.neighbors(anchor)[i];
            body.push(fact_sentence(subj, g.resolve(e.predicate), g.label(e.to)));
        }
        let text = format!("{title}. {}", body.join(" "));
        docs.push(FactDoc {
            id,
            title,
            text,
            anchor,
        });
    }
    FactCorpus { docs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{synth, LabelIndex, SynthConfig};
    use newslink_nlp::{tokenize, Recognizer};

    fn world() -> SynthWorld {
        synth::generate(&SynthConfig::small(5))
    }

    #[test]
    fn fact_corpus_is_deterministic() {
        let w = world();
        let cfg = FactCorpusConfig::new(3, 25);
        let a = generate_fact_corpus(&w, &cfg);
        let b = generate_fact_corpus(&w, &cfg);
        assert_eq!(a.len(), 25);
        assert!(!a.is_empty());
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.anchor, y.anchor);
        }
    }

    #[test]
    fn every_doc_mentions_its_anchor() {
        let w = world();
        let c = generate_fact_corpus(&w, &FactCorpusConfig::new(7, 40));
        for d in &c.docs {
            let label = w.graph.label(d.anchor);
            assert!(d.text.contains(label), "{} missing from {}", label, d.text);
            assert!(d.text.starts_with(&d.title));
        }
    }

    #[test]
    fn fact_sentences_are_entity_grounded() {
        // Every rendered label resolves through the index, a gazetteer pass
        // matches well over half the identified mentions (the rest are
        // non-searchable types and capitalized prose runs), and the hash and
        // FST backends agree mention-for-mention.
        let w = world();
        let c = generate_fact_corpus(&w, &FactCorpusConfig::new(9, 30));
        let hash = LabelIndex::build(&w.graph);
        let fst = LabelIndex::build_fst(&w.graph);
        for d in &c.docs {
            let norm = newslink_kg::normalize_label(w.graph.label(d.anchor));
            assert!(hash.exact(&norm).len() > 0, "anchor label must resolve");
        }
        let mut identified = 0usize;
        let mut matched = 0usize;
        for d in &c.docs {
            let toks = tokenize(&d.text);
            let h = Recognizer::new(&w.graph, &hash).recognize(&d.text, &toks);
            let f = Recognizer::new(&w.graph, &fst).recognize(&d.text, &toks);
            assert_eq!(h, f, "backends disagree on {:?}", d.text);
            identified += h.len();
            matched += h.iter().filter(|m| m.matched).count();
        }
        assert!(identified > 0);
        let ratio = matched as f64 / identified as f64;
        assert!(ratio > 0.55, "grounding ratio {ratio} too low");
    }

    #[test]
    fn facts_per_doc_respects_range() {
        let w = world();
        let mut cfg = FactCorpusConfig::new(11, 20);
        cfg.facts_per_doc = (1, 2);
        let c = generate_fact_corpus(&w, &cfg);
        for d in &c.docs {
            let sentences = d.text.matches('.').count();
            // Headline period + at most 2 fact sentences.
            assert!((2..=3).contains(&sentences), "{}", d.text);
        }
    }
}
