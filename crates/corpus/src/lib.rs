//! Synthetic news corpora for the NewsLink reproduction.
//!
//! The paper evaluates on the CNN and Kaggle "all-the-news" datasets,
//! which are unavailable offline; this crate generates event-driven
//! substitutes from the synthetic knowledge-graph world (DESIGN.md §6,
//! S15):
//!
//! - [`fact`] — entity-profile fact-sentence documents (Wikidata-style
//!   triple flattening) for resolution-at-scale tests;
//! - [`gen`] — document generation over world events;
//! - [`templates`] — per-event-kind sentence templates with synonym pools
//!   (the controlled vocabulary-mismatch knob);
//! - [`split`] — the paper's 80/10/10 train/validation/test split;
//! - [`query`] — query-sentence selection (largest-entity-density and
//!   random, §VII-B).

#![deny(unsafe_code)]

pub mod fact;
pub mod gen;
pub mod query;
pub mod split;
pub mod templates;

pub use fact::{generate_fact_corpus, FactCorpus, FactCorpusConfig, FactDoc};
pub use gen::{generate_corpus, Corpus, CorpusConfig, CorpusFlavor, NewsDoc};
pub use query::{select_query, QueryStrategy};
pub use split::Split;
pub use templates::Cast;
