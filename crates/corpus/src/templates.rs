//! Sentence templates for synthetic news.
//!
//! Each event kind has a pool of sentence builders over a [`Cast`] of
//! entity surface forms. Different documents about the *same* event draw
//! different templates and different verb/noun synonyms, recreating the
//! vocabulary-mismatch problem (§I) that NewsLink's induced entities are
//! designed to bridge.

use newslink_kg::EventKind;
use newslink_util::DetRng;

/// The entity surface forms available to templates for one document.
#[derive(Debug, Clone)]
pub struct Cast {
    /// The event's label (e.g. `2015 Peshawar bombing`).
    pub event: String,
    /// Primary place (city or province).
    pub place: String,
    /// The country.
    pub country: String,
    /// A militant group / organization participant.
    pub group: String,
    /// A person participant (candidate, leader…).
    pub person: String,
    /// A second person participant.
    pub person2: String,
    /// A related organization (agency, team, party).
    pub org: String,
    /// A secondary place (neighbouring province/city).
    pub place2: String,
}

fn pick<'a>(rng: &mut DetRng, items: &'a [&'a str]) -> &'a str {
    items[rng.below(items.len())]
}

const SAY: &[&str] = &["said", "reported", "announced", "stated", "confirmed", "declared"];
const OFFICIALS: &[&str] = &["officials", "authorities", "sources", "observers", "witnesses"];
const FORCES: &[&str] = &["forces", "troops", "security units", "soldiers"];
const STRIKE: &[&str] = &["struck", "hit", "rocked", "shook", "devastated"];
const CONDEMN: &[&str] = &["condemned", "denounced", "criticized", "deplored"];
const VOTERS: &[&str] = &["voters", "citizens", "residents", "supporters"];
const WIN: &[&str] = &["leads", "dominates", "surges ahead in", "gains ground in"];
const CLASH: &[&str] = &["clashed with", "battled", "fought", "exchanged fire with"];

/// A sentence template: draws synonyms from `rng`, fills slots from `Cast`.
type Template = Box<dyn Fn(&mut DetRng, &Cast) -> String>;

/// Produce `n` sentences about an event of `kind` using `cast`.
pub fn sentences(rng: &mut DetRng, kind: EventKind, cast: &Cast, n: usize) -> Vec<String> {
    let pool: Vec<Template> = match kind {
        EventKind::Attack => vec![
            Box::new(|r, c| {
                format!(
                    "A deadly explosion {} {} as {} in {} {} heavy casualties.",
                    pick(r, STRIKE), c.place, pick(r, OFFICIALS), c.country, pick(r, SAY)
                )
            }),
            Box::new(|r, c| {
                format!(
                    "{} claimed responsibility for the {}, {} in {} {}.",
                    c.group, c.event, pick(r, OFFICIALS), c.country, pick(r, SAY)
                )
            }),
            Box::new(|r, c| {
                format!(
                    "Residents of {} mourned while {} {} sealed roads to {}.",
                    c.place, c.country, pick(r, FORCES), c.place2
                )
            }),
            Box::new(|r, c| {
                format!(
                    "The government of {} {} the {} and promised a response against {}.",
                    c.country, pick(r, CONDEMN), c.event, c.group
                )
            }),
            Box::new(|r, c| {
                format!(
                    "Hospitals in {} and {} treated the wounded, {} {}.",
                    c.place, c.place2, pick(r, OFFICIALS), pick(r, SAY)
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "{} dispatched teams from {} to {} after the {}.",
                    c.org, c.place2, c.place, c.event
                )
            }),
        ],
        EventKind::Conflict => vec![
            Box::new(|r, c| {
                format!(
                    "{} {} {} {} near {}.",
                    c.group, pick(r, CLASH), c.country, pick(r, FORCES), c.place
                )
            }),
            Box::new(|r, c| {
                format!(
                    "The {} spread toward {} as {} {}.",
                    c.event, c.place2, pick(r, OFFICIALS), pick(r, SAY)
                )
            }),
            Box::new(|r, c| {
                format!(
                    "Military commanders in {} {} new operations against {} in {}.",
                    c.country, pick(r, SAY), c.group, c.place
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "Thousands fled {} for {} to escape the {}.",
                    c.place, c.place2, c.event
                )
            }),
            Box::new(|r, c| {
                format!(
                    "{} {} the violence attributed to {}.",
                    c.org, pick(r, CONDEMN), c.group
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "Monitors from {} in {} warned {} about {}.",
                    c.org, c.place2, c.country, c.group
                )
            }),
        ],
        EventKind::Election => vec![
            Box::new(|r, c| {
                format!(
                    "{} {} the polls ahead of the {}, surveys in {} {}.",
                    c.person, pick(r, WIN), c.event, c.country, pick(r, SAY)
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "{} debated {} in {} before the {}.",
                    c.person, c.person2, c.place, c.event
                )
            }),
            Box::new(|r, c| {
                format!(
                    "{} in {} prepared for the {}, {} {}.",
                    capitalize(pick(r, VOTERS)), c.country, c.event, pick(r, OFFICIALS), pick(r, SAY)
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "{} campaigned across {} with rallies in {} and {}.",
                    c.person2, c.country, c.place, c.place2
                )
            }),
            Box::new(|_r, c| {
                format!(
                    "{} endorsed {} for the {}.",
                    c.org, c.person, c.event
                )
            }),
            Box::new(|r, c| {
                format!(
                    "{} polled {} in {} ahead of the {}.",
                    c.org, pick(r, VOTERS), c.place2, c.event
                )
            }),
        ],
        EventKind::Summit => vec![
            Box::new(|r, c| {
                format!(
                    "Delegations arrived in {} for the {}, {} {}.",
                    c.place, c.event, pick(r, OFFICIALS), pick(r, SAY)
                )
            }),
            Box::new(|_, c| {
                format!(
                    "Leaders of {} met counterparts at the {} to discuss trade and security.",
                    c.country, c.event
                )
            }),
            Box::new(|r, c| {
                format!(
                    "Talks at the {} in {} continued late, {} {}.",
                    c.event, c.place, pick(r, OFFICIALS), pick(r, SAY)
                )
            }),
            Box::new(|_, c| {
                format!(
                    "{} hosted a reception for delegates from {} during the {}.",
                    c.org, c.country, c.event
                )
            }),
            Box::new(|_, c| {
                format!(
                    "{} of {} addressed the {} in {}.",
                    c.person, c.org, c.event, c.place
                )
            }),
        ],
        EventKind::Championship => vec![
            Box::new(|r, c| {
                format!(
                    "{} defeated {} in the opening round of the {}, fans in {} {}.",
                    c.org, c.group, c.event, c.place, pick(r, SAY)
                )
            }),
            Box::new(|_, c| {
                format!(
                    "The {} drew crowds across {} with matches in {} and {}.",
                    c.event, c.country, c.place, c.place2
                )
            }),
            Box::new(|r, c| {
                format!(
                    "Star player {} of {} {} the tournament scoring charts.",
                    c.person, c.org, pick(r, WIN)
                )
            }),
            Box::new(|_, c| {
                format!(
                    "Supporters in {} celebrated as {} advanced in the {}.",
                    c.place, c.org, c.event
                )
            }),
            Box::new(|_, c| {
                format!(
                    "{} joined {} supporters in {} for the {}.",
                    c.person2, c.org, c.place2, c.event
                )
            }),
        ],
    };
    // Per-document shuffled template order: two documents about the same
    // event open differently, keeping them distinguishable for HIT@k.
    let mut order: Vec<usize> = (0..pool.len()).collect();
    rng.shuffle(&mut order);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = order[i % order.len()];
        out.push(pool[idx](rng, cast));
    }
    out
}

/// Boilerplate wire-copy sentences shared across ALL event kinds: the
/// wording is identical between stories about different events; only the
/// entity slots differ. These are the "partial queries with missing
/// context" of §VII-B — keyword search cannot tell the stories apart, but
/// the entities can.
pub fn generic_sentences(rng: &mut DetRng, cast: &Cast) -> Vec<String> {
    let pool: Vec<String> = vec![
        format!("Officials in {} urged calm as the situation developed.", cast.place),
        format!("Residents across {} followed the developments closely.", cast.country),
        format!("Correspondents filed reports from {} overnight.", cast.place2),
        format!("The news dominated broadcasts across {} for days.", cast.country),
        format!("Analysts in {} cautioned against early conclusions.", cast.place),
    ];
    let mut out = Vec::new();
    if rng.chance(0.65) {
        out.push(pool[rng.below(pool.len())].clone());
    }
    if rng.chance(0.35) {
        out.push(pool[rng.below(pool.len())].clone());
    }
    out
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().chain(c).collect(),
        None => String::new(),
    }
}

/// A headline for the document. Several variants per kind so same-event
/// documents stay distinguishable.
pub fn headline(rng: &mut DetRng, kind: EventKind, cast: &Cast) -> String {
    match kind {
        EventKind::Attack => match rng.below(3) {
            0 => format!(
                "{} {} {}: {} blamed",
                cast.event,
                pick(rng, &["shakes", "stuns", "hits"]),
                cast.country,
                cast.group
            ),
            1 => format!("Explosion in {}: {} under scrutiny", cast.place, cast.group),
            _ => format!("{} reels after {}", cast.country, cast.event),
        },
        EventKind::Conflict => match rng.below(3) {
            0 => format!(
                "{} escalates as {} {} {}",
                cast.event,
                cast.group,
                pick(rng, &["confronts", "battles"]),
                cast.country
            ),
            1 => format!("Fighting near {} deepens the {}", cast.place, cast.event),
            _ => format!("{} struggles to contain {}", cast.country, cast.group),
        },
        EventKind::Election => match rng.below(3) {
            0 => format!(
                "{} and {} face off in {}",
                cast.person, cast.person2, cast.event
            ),
            1 => format!("{} eyes victory in {}", cast.person, cast.event),
            _ => format!("{} braces for the {}", cast.country, cast.event),
        },
        EventKind::Summit => match rng.below(2) {
            0 => format!("{} opens in {}", cast.event, cast.place),
            _ => format!("{} hosts the {}", cast.place, cast.event),
        },
        EventKind::Championship => match rng.below(2) {
            0 => format!("{} kicks off in {}", cast.event, cast.country),
            _ => format!("{} chases glory at the {}", cast.org, cast.event),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cast() -> Cast {
        Cast {
            event: "2015 Peshawar bombing".into(),
            place: "Peshawar".into(),
            country: "Pakistan".into(),
            group: "Taliban".into(),
            person: "Asif Khan".into(),
            person2: "Bilal Shah".into(),
            org: "Pakistan Ministry of Defense".into(),
            place2: "Lahore".into(),
        }
    }

    #[test]
    fn sentences_mention_cast_entities() {
        let mut rng = DetRng::new(1);
        for kind in EventKind::ALL {
            let s = sentences(&mut rng, kind, &cast(), 5);
            assert_eq!(s.len(), 5);
            let joined = s.join(" ");
            assert!(
                joined.contains("Pakistan")
                    || joined.contains("Peshawar")
                    || joined.contains("2015 Peshawar bombing"),
                "{kind:?}: {joined}"
            );
        }
    }

    #[test]
    fn sentences_are_deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        assert_eq!(
            sentences(&mut a, EventKind::Attack, &cast(), 8),
            sentences(&mut b, EventKind::Attack, &cast(), 8)
        );
    }

    #[test]
    fn vocabulary_varies_across_documents() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let sa = sentences(&mut a, EventKind::Attack, &cast(), 5).join(" ");
        let sb = sentences(&mut b, EventKind::Attack, &cast(), 5).join(" ");
        assert_ne!(sa, sb, "different seeds must vary the phrasing");
    }

    #[test]
    fn headlines_mention_cast_entities() {
        let c = cast();
        let anchors = [
            c.event.as_str(),
            c.place.as_str(),
            c.country.as_str(),
            c.group.as_str(),
            c.person.as_str(),
            c.org.as_str(),
        ];
        let mut rng = DetRng::new(3);
        for kind in EventKind::ALL {
            for _ in 0..10 {
                let h = headline(&mut rng, kind, &c);
                assert!(
                    anchors.iter().any(|a| h.contains(a)),
                    "{kind:?} headline lacks entities: {h}"
                );
            }
        }
    }

    #[test]
    fn headlines_vary_per_document() {
        let mut rng = DetRng::new(8);
        let c = cast();
        let set: std::collections::HashSet<String> =
            (0..20).map(|_| headline(&mut rng, EventKind::Election, &c)).collect();
        assert!(set.len() >= 2, "headline variants expected");
    }

    #[test]
    fn generic_sentences_anchor_entities() {
        let mut rng = DetRng::new(11);
        let mut seen_any = false;
        for _ in 0..20 {
            for s in generic_sentences(&mut rng, &cast()) {
                seen_any = true;
                assert!(
                    s.contains("Peshawar") || s.contains("Pakistan") || s.contains("Lahore"),
                    "{s}"
                );
            }
        }
        assert!(seen_any);
    }

    #[test]
    fn sentences_end_with_period() {
        let mut rng = DetRng::new(4);
        for s in sentences(&mut rng, EventKind::Summit, &cast(), 4) {
            assert!(s.ends_with('.'), "{s}");
        }
    }
}
