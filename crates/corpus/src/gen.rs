//! Corpus generation: events → news documents.
//!
//! Substitution for the paper's CNN and Kaggle datasets (DESIGN.md §6,
//! S15). Each document reports on one world event; several documents cover
//! the same event with different templates and synonyms, so genuinely
//! similar documents exist for the retrieval task, while vocabulary
//! mismatch between them stresses pure keyword search exactly as §I
//! motivates.

use newslink_kg::synth::predicates;
use newslink_kg::{EntityType, EventInfo, NodeId, SynthWorld};
use newslink_util::DetRng;

use crate::templates::{generic_sentences, headline, sentences, Cast};

/// Which of the paper's two datasets a corpus imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusFlavor {
    /// CNN-like: longer wire stories.
    CnnLike,
    /// Kaggle "all-the-news"-like: shorter pieces with a byline.
    KaggleLike,
}

impl CorpusFlavor {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CorpusFlavor::CnnLike => "CNN",
            CorpusFlavor::KaggleLike => "Kaggle",
        }
    }
}

/// Corpus generation knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Seed for all sampling (independent of the world seed).
    pub seed: u64,
    /// Number of documents to generate.
    pub documents: usize,
    /// Dataset flavor.
    pub flavor: CorpusFlavor,
    /// Probability of planting an out-of-KG proper name in a document
    /// (drives the sub-100% entity matching ratio of Table V).
    pub oov_entity_prob: f64,
    /// Zipf exponent for event popularity (>1 ⇒ some events get many
    /// documents, guaranteeing near-duplicates for retrieval).
    pub event_skew: f64,
}

impl CorpusConfig {
    /// Defaults for a given flavor.
    pub fn new(seed: u64, documents: usize, flavor: CorpusFlavor) -> Self {
        Self {
            seed,
            documents,
            flavor,
            oov_entity_prob: 0.35,
            event_skew: 1.05,
        }
    }
}

/// One generated news document.
#[derive(Debug, Clone)]
pub struct NewsDoc {
    /// Dense id within the corpus.
    pub id: usize,
    /// Headline.
    pub title: String,
    /// Full text (headline + body sentences).
    pub text: String,
    /// Index into the world's event register (generation ground truth;
    /// never exposed to search methods).
    pub event_idx: usize,
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The documents.
    pub docs: Vec<NewsDoc>,
    /// The flavor it imitates.
    pub flavor: CorpusFlavor,
}

impl Corpus {
    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Label of a node in the world graph.
fn label(world: &SynthWorld, n: NodeId) -> String {
    world.graph.label(n).to_string()
}

/// A surface form for `n`: the primary label, or (with probability
/// `alias_prob`) one of its aliases — the acronym/full-name switching of
/// real news copy. Pure keyword search cannot bridge the two forms; the
/// knowledge graph resolves both to the same node.
fn surface(world: &SynthWorld, rng: &mut DetRng, n: NodeId, alias_prob: f64) -> String {
    if rng.chance(alias_prob) {
        let aliases: Vec<&str> = world.graph.aliases_of(n).collect();
        if !aliases.is_empty() {
            return aliases[rng.below(aliases.len())].to_string();
        }
    }
    label(world, n)
}

/// A place located in `container`, found through inverse `located in`
/// edges; falls back to `fallback` when none exists.
fn contained_place(world: &SynthWorld, rng: &mut DetRng, container: NodeId, fallback: &[NodeId]) -> NodeId {
    let g = &world.graph;
    let candidates: Vec<NodeId> = g
        .neighbors(container)
        .iter()
        .filter(|e| e.inverse && g.resolve(e.predicate) == predicates::LOCATED_IN)
        .map(|e| e.to)
        .collect();
    if candidates.is_empty() {
        *rng.pick(fallback)
    } else {
        candidates[rng.below(candidates.len())]
    }
}

/// Assemble the template cast for one event.
fn build_cast(world: &SynthWorld, rng: &mut DetRng, event: &EventInfo) -> Cast {
    let g = &world.graph;
    let country = event.places[0];
    let place = *event.places.last().expect("events have places");
    // A sibling place inside the same country (for place2).
    let prov = contained_place(world, rng, country, &world.provinces);
    let place2 = contained_place(world, rng, prov, &world.cities);

    let mut people: Vec<NodeId> = event
        .participants
        .iter()
        .copied()
        .filter(|&p| g.entity_type(p) == EntityType::Person)
        .collect();
    // Per-document shuffling: different documents about the same election
    // lead with different candidates.
    rng.shuffle(&mut people);
    if people.is_empty() {
        people.push(*rng.pick(&world.people));
    }
    let person = people[0];
    let person2 = if people.len() > 1 {
        people[1]
    } else {
        *rng.pick(&world.people)
    };

    let groups: Vec<NodeId> = event
        .participants
        .iter()
        .copied()
        .filter(|&p| matches!(g.entity_type(p), EntityType::Norp | EntityType::Organization))
        .collect();
    let group = if groups.is_empty() {
        *rng.pick(&world.organizations)
    } else {
        groups[rng.below(groups.len())]
    };
    let org = *rng.pick(&world.organizations);

    Cast {
        event: label(world, event.node),
        place: label(world, place),
        country: label(world, country),
        group: surface(world, rng, group, 0.35),
        person: label(world, person),
        person2: label(world, person2),
        org: surface(world, rng, org, 0.35),
        place2: label(world, place2),
    }
}

/// Generate a corpus over `world`.
pub fn generate_corpus(world: &SynthWorld, cfg: &CorpusConfig) -> Corpus {
    assert!(!world.events.is_empty(), "world has no events");
    let root = DetRng::new(cfg.seed);
    let mut rng = root.fork(0xC0FFEE);
    let mut docs = Vec::with_capacity(cfg.documents);
    // Recent sentences quotable as background recalls (real wire stories
    // reuse agency copy verbatim across otherwise unrelated stories; this
    // is the ambiguity that keyword search cannot resolve but entity
    // context can).
    let mut quotable: Vec<String> = Vec::new();
    // Mildly skewed popularity over an active-event pool: a handful of
    // docs per event on average, a popular head, no single event
    // dominating the corpus.
    let active = world
        .events
        .len()
        .min((cfg.documents / 4).max(10))
        .max(1);
    for id in 0..cfg.documents {
        let event_idx = if rng.chance(0.25) {
            rng.zipf(active, cfg.event_skew.max(1.05))
        } else {
            rng.below(active)
        };
        let event = &world.events[event_idx];
        let cast = build_cast(world, &mut rng, event);
        let n_sentences = match cfg.flavor {
            CorpusFlavor::CnnLike => rng.range(6, 11),
            CorpusFlavor::KaggleLike => rng.range(4, 8),
        };
        let title = headline(&mut rng, event.kind, &cast);
        let mut body = sentences(&mut rng, event.kind, &cast, n_sentences);
        body.extend(generic_sentences(&mut rng, &cast));
        if cfg.flavor == CorpusFlavor::KaggleLike {
            let reporter = newslink_kg::synth::names::person(&mut rng);
            body.push(format!("Report by {reporter} for {}.", cast.org));
        }
        if rng.chance(cfg.oov_entity_prob) {
            // An out-of-KG spokesperson: identified by NER, unmatched in
            // the KG — the source of Table V's <100% matching ratio.
            let spokesman = newslink_kg::synth::names::person(&mut rng);
            body.push(format!(
                "Spokesman {spokesman} said the situation remained tense."
            ));
        }
        if rng.chance(0.4) && world.events.len() > 1 {
            // A cross-topic brief, as real wire stories carry: adds lexical
            // noise for keyword search while contributing its own entity
            // group to the embedding.
            let other_idx = rng.below(world.events.len());
            if other_idx != event_idx {
                let other = &world.events[other_idx];
                body.push(format!(
                    "In other news, the {} drew attention across {}.",
                    label(world, other.node),
                    label(world, other.places[0]),
                ));
            }
        }
        if !quotable.is_empty() {
            // Verbatim background recalls quoted from earlier stories —
            // usually about a DIFFERENT event. Keyword search cannot tell
            // the source from the quoter; the document-level entity
            // context can.
            if rng.chance(0.55) {
                body.push(quotable[rng.below(quotable.len())].clone());
            }
            if rng.chance(0.2) {
                body.push(quotable[rng.below(quotable.len())].clone());
            }
        }
        // This document's LEAST entity-dense sentences become quotable:
        // real background recalls are narrative copy, and (crucially for
        // evaluation) a quoted sentence should rarely become the quoting
        // document's densest — i.e. query — sentence.
        let mut by_caps: Vec<&String> = body.iter().collect();
        by_caps.sort_by_key(|s| {
            s.split_whitespace()
                .filter(|w| w.chars().next().is_some_and(char::is_uppercase))
                .count()
        });
        for sent in by_caps.into_iter().take(2) {
            quotable.push(sent.clone());
        }
        if quotable.len() > 64 {
            let drop = quotable.len() - 64;
            quotable.drain(..drop);
        }
        let text = format!("{title}. {}", body.join(" "));
        docs.push(NewsDoc {
            id,
            title,
            text,
            event_idx,
        });
    }
    Corpus {
        docs,
        flavor: cfg.flavor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newslink_kg::{synth, SynthConfig};

    fn world() -> SynthWorld {
        synth::generate(&SynthConfig::small(5))
    }

    #[test]
    fn corpus_is_deterministic() {
        let w = world();
        let cfg = CorpusConfig::new(11, 30, CorpusFlavor::CnnLike);
        let a = generate_corpus(&w, &cfg);
        let b = generate_corpus(&w, &cfg);
        assert_eq!(a.len(), 30);
        for (x, y) in a.docs.iter().zip(&b.docs) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.event_idx, y.event_idx);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w = world();
        let a = generate_corpus(&w, &CorpusConfig::new(1, 10, CorpusFlavor::CnnLike));
        let b = generate_corpus(&w, &CorpusConfig::new(2, 10, CorpusFlavor::CnnLike));
        assert!(a.docs.iter().zip(&b.docs).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn documents_mention_kg_entities() {
        let w = world();
        let c = generate_corpus(&w, &CorpusConfig::new(3, 20, CorpusFlavor::CnnLike));
        for doc in &c.docs {
            let event = &w.events[doc.event_idx];
            let country = w.graph.label(event.places[0]);
            assert!(
                doc.text.contains(country) || doc.text.contains(w.graph.label(event.node)),
                "doc {} does not mention its event context: {}",
                doc.id,
                doc.text
            );
        }
    }

    #[test]
    fn event_skew_produces_popular_events() {
        let w = world();
        let c = generate_corpus(&w, &CorpusConfig::new(7, 200, CorpusFlavor::CnnLike));
        let mut counts = vec![0usize; w.events.len()];
        for d in &c.docs {
            counts[d.event_idx] += 1;
        }
        let max = counts.iter().max().copied().unwrap();
        assert!(max >= 10, "zipf skew should concentrate coverage: {max}");
    }

    #[test]
    fn kaggle_flavor_has_byline() {
        let w = world();
        let c = generate_corpus(&w, &CorpusConfig::new(9, 10, CorpusFlavor::KaggleLike));
        assert!(c.docs.iter().all(|d| d.text.contains("Report by")));
        assert_eq!(c.flavor.name(), "Kaggle");
    }

    #[test]
    fn oov_probability_zero_plants_no_spokesmen() {
        let w = world();
        let mut cfg = CorpusConfig::new(13, 20, CorpusFlavor::CnnLike);
        cfg.oov_entity_prob = 0.0;
        let c = generate_corpus(&w, &cfg);
        assert!(c.docs.iter().all(|d| !d.text.contains("Spokesman")));
        cfg.oov_entity_prob = 1.0;
        let c = generate_corpus(&w, &cfg);
        assert!(c.docs.iter().all(|d| d.text.contains("Spokesman")));
    }

    #[test]
    fn titles_are_part_of_text() {
        let w = world();
        let c = generate_corpus(&w, &CorpusConfig::new(15, 5, CorpusFlavor::CnnLike));
        for d in &c.docs {
            assert!(d.text.starts_with(&d.title));
        }
    }
}
